//! Generates all three surrogate datasets at full published scale and
//! prints their §7.1 statistics with generation timings.
//!
//! Run with: `cargo run --release -p free-gap-data --example gen_timing`

use free_gap_data::{Dataset, DatasetStats};
use std::time::Instant;

fn main() {
    println!("{}", DatasetStats::table_header());
    for ds in Dataset::ALL {
        let start = Instant::now();
        let db = ds.generate(1);
        let elapsed = start.elapsed();
        let stats = DatasetStats::compute(ds.name(), &db);
        println!("{stats}   (generated in {elapsed:.2?})");
    }
}
