//! Workload helpers used by the experiments.
//!
//! The paper's experiment protocol (§7.2, §7.3):
//!
//! * queries are per-item counts;
//! * for Sparse-Vector experiments the public threshold `T` is "randomly
//!   picked from the top 2k to top 8k in each dataset for each run" — i.e.
//!   the value at a uniformly random descending rank in `[2k, 8k]`;
//! * ground truth for precision/recall is whether the *true* count clears
//!   the threshold.

use crate::queries::ItemCounts;
use rand::Rng;

/// Picks the paper's rank-random threshold: the count value at a uniformly
/// random descending rank in `[2k, 8k]` (clamped to the query count).
///
/// # Panics
/// Panics if `counts` is empty or `k == 0`.
pub fn rank_random_threshold<R: Rng + ?Sized>(counts: &ItemCounts, k: usize, rng: &mut R) -> f64 {
    assert!(!counts.is_empty(), "empty workload");
    assert!(k > 0, "k must be positive");
    let n = counts.len();
    let lo = (2 * k).min(n - 1);
    let hi = (8 * k).min(n - 1);
    let rank = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
    counts.value_at_rank(rank).expect("rank clamped to range") as f64
}

/// True indices whose counts are at least `threshold` (the recall universe).
pub fn truly_above(counts: &ItemCounts, threshold: f64) -> Vec<usize> {
    counts
        .as_u64()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c as f64 >= threshold)
        .map(|(i, _)| i)
        .collect()
}

/// The true top-`k` set and the `k+1`-st value (useful for gap ground truth).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKTruth {
    /// Indices of the k largest counts, descending, ties by index.
    pub indices: Vec<usize>,
    /// Their true counts, aligned with `indices`.
    pub values: Vec<f64>,
    /// The (k+1)-st largest count, if it exists.
    pub runner_up: Option<f64>,
}

/// Computes the ground-truth top-`k` for a workload.
pub fn top_k_truth(counts: &ItemCounts, k: usize) -> TopKTruth {
    let indices = counts.top_k_indices(k);
    let values = indices.iter().map(|&i| counts.count(i) as f64).collect();
    let runner_up = counts.value_at_rank(k).map(|v| v as f64);
    TopKTruth {
        indices,
        values,
        runner_up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    fn counts() -> ItemCounts {
        // counts: idx 0..10 with values 100, 90, ..., 10 descending
        ItemCounts::new((0..10).map(|i| 100 - 10 * i as u64).collect())
    }

    #[test]
    fn threshold_lies_between_rank_bounds() {
        let c = counts();
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let t = rank_random_threshold(&c, 1, &mut rng);
            // ranks 2..=8 => values 80..=20
            assert!((20.0..=80.0).contains(&t), "t = {t}");
        }
    }

    #[test]
    fn threshold_clamps_for_large_k() {
        let c = counts();
        let mut rng = rng_from_seed(2);
        // 2k = 40 > n-1 = 9, so rank clamps to 9 => smallest value.
        let t = rank_random_threshold(&c, 20, &mut rng);
        assert_eq!(t, 10.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn threshold_rejects_zero_k() {
        rank_random_threshold(&counts(), 0, &mut rng_from_seed(1));
    }

    #[test]
    fn truly_above_uses_geq() {
        let c = counts();
        let above = truly_above(&c, 80.0);
        assert_eq!(above, vec![0, 1, 2]);
    }

    #[test]
    fn top_k_truth_fields() {
        let t = top_k_truth(&counts(), 3);
        assert_eq!(t.indices, vec![0, 1, 2]);
        assert_eq!(t.values, vec![100.0, 90.0, 80.0]);
        assert_eq!(t.runner_up, Some(70.0));
        let all = top_k_truth(&counts(), 10);
        assert_eq!(all.runner_up, None);
    }
}
