//! Poisson sampling for transaction lengths.
//!
//! The Quest generator draws basket sizes around a target mean (`T = 40` for
//! T40I10D100K); the surrogate models this as Poisson. Knuth's
//! multiply-uniforms method is exact and fast enough for the λ ≤ 64 range the
//! generators use (λ = 40 needs ~41 uniforms per draw; the product stays far
//! above the f64 underflow threshold `e^{-708}`).

use rand::Rng;

/// Draws one Poisson(λ) variate with Knuth's algorithm.
///
/// # Panics
/// Panics if `lambda` is not finite and positive, or is large enough
/// (`> 500`) that the multiplicative method would lose precision.
pub fn sample_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "lambda must be positive"
    );
    assert!(
        lambda <= 500.0,
        "multiplicative Poisson only supports lambda <= 500"
    );
    let limit = (-lambda).exp();
    let mut product: f64 = 1.0;
    let mut k = 0u64;
    loop {
        product *= rng.gen::<f64>();
        if product <= limit {
            return k;
        }
        k += 1;
    }
}

/// Poisson pmf `P(K = k)` computed in log space for stability.
pub fn poisson_pmf(lambda: f64, k: u64) -> f64 {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "lambda must be positive"
    );
    let mut log_p = -lambda + k as f64 * lambda.ln();
    for i in 1..=k {
        log_p -= (i as f64).ln();
    }
    log_p.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lambda() {
        sample_poisson(0.0, &mut rng_from_seed(1));
    }

    #[test]
    #[should_panic(expected = "lambda <= 500")]
    fn rejects_huge_lambda() {
        sample_poisson(1e4, &mut rng_from_seed(1));
    }

    #[test]
    fn pmf_sums_to_one() {
        for lambda in [0.5, 5.0, 40.0] {
            let total: f64 = (0..400).map(|k| poisson_pmf(lambda, k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "lambda = {lambda}");
        }
    }

    #[test]
    fn moments_match_lambda() {
        for lambda in [2.0, 40.0] {
            let mut rng = rng_from_seed(7);
            let mut m = RunningMoments::new();
            for _ in 0..100_000 {
                m.push(sample_poisson(lambda, &mut rng) as f64);
            }
            assert!(
                (m.mean() - lambda).abs() / lambda < 0.02,
                "mean for {lambda}: {}",
                m.mean()
            );
            assert!(
                (m.variance() - lambda).abs() / lambda < 0.05,
                "var for {lambda}"
            );
        }
    }

    #[test]
    fn sampler_matches_pmf_at_mode() {
        let lambda = 5.0;
        let mut rng = rng_from_seed(3);
        let n = 200_000;
        let hits = (0..n)
            .filter(|_| sample_poisson(lambda, &mut rng) == 5)
            .count() as f64;
        let p = poisson_pmf(lambda, 5);
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        assert!((hits / n as f64 - p).abs() < 5.0 * sigma);
    }
}
