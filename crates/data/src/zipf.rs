//! Zipf (power-law) sampling over a finite item universe.
//!
//! Item popularity in real transaction data (retail baskets, click streams)
//! is heavy-tailed; the surrogate generators model it with a Zipf law
//! `P(item has rank r) ∝ r^{-s}`. The sampler precomputes the cumulative
//! weight table once (`O(n)`) and draws by binary search (`O(log n)`), which
//! is fast enough for the multi-million-draw dataset builds.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s >= 0`:
/// `P(rank = r) ∝ (r + 1)^{-s}`.
///
/// `s = 0` degenerates to the uniform distribution.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r >= self.cumulative.len() {
            return 0.0;
        }
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if r == 0 { 0.0 } else { self.cumulative[r - 1] };
        (self.cumulative[r] - lo) / total
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen::<f64>() * total;
        // First index whose cumulative weight exceeds u.
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn rejects_negative_exponent() {
        Zipf::new(10, -1.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(50), 0.0);
    }

    #[test]
    fn pmf_follows_power_law() {
        let z = Zipf::new(100, 2.0);
        // p(0)/p(1) = 2^2
        assert!((z.pmf(0) / z.pmf(1) - 4.0).abs() < 1e-9);
        // p(1)/p(3) = (4/2)^2
        assert!((z.pmf(1) / z.pmf(3) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn sampler_matches_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = rng_from_seed(42);
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            let p = z.pmf(r);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!(
                (emp - p).abs() < 5.0 * sigma + 1e-9,
                "rank {r}: {emp} vs {p}"
            );
        }
    }

    proptest! {
        #[test]
        fn samples_in_range(n in 1usize..500, s in 0.0f64..3.0, seed in 0u64..100) {
            let z = Zipf::new(n, s);
            let mut rng = rng_from_seed(seed);
            for _ in 0..32 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
