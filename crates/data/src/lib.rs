//! # free-gap-data
//!
//! Dataset substrate for the `free-gap` workspace (reproduction of Ding et
//! al., *Free Gap Information from the Differentially Private Sparse Vector
//! and Noisy Max Mechanisms*, VLDB 2019).
//!
//! The paper evaluates on three transaction datasets (§7.1):
//!
//! | Dataset      | Records  | Unique items |
//! |--------------|----------|--------------|
//! | BMS-POS      | 515,597  | 1,657        |
//! | Kosarak      | 990,002  | 41,270       |
//! | T40I10D100K  | 100,000  | 942          |
//!
//! The first two are real datasets that cannot be redistributed here, and the
//! third comes from the closed-source IBM Almaden Quest generator. This crate
//! therefore provides **statistical surrogates** (see `DESIGN.md` §5): each
//! generator reproduces the record count, the unique-item count and a
//! heavy-tailed item-popularity profile. The paper's mechanisms only
//! consume the *vector of per-item counts* (monotone counting queries of
//! sensitivity 1) with thresholds chosen by rank, so matching those
//! marginals preserves the experimental behaviour.
//!
//! Contents:
//!
//! * [`transaction`] — transaction database type and add/remove-record
//!   adjacency.
//! * [`zipf`] / [`poisson`] — sampling primitives for the generators.
//! * [`generator`] — `BmsPosLike`, `KosarakLike` and the Quest-style
//!   `QuestGenerator`, plus the [`generator::Dataset`] enum tying them to the
//!   paper's names.
//! * [`queries`] — item-count query workloads (the paper's `q₁, …, qₙ`).
//! * [`workload`] — true top-k, rank-based threshold selection (§7.2 picks
//!   `T` uniformly from the top-2k..top-8k values), above-threshold ground
//!   truth.
//! * [`stats`] — the §7.1 dataset-statistics table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod poisson;
pub mod queries;
pub mod stats;
pub mod transaction;
pub mod workload;
pub mod zipf;

pub use generator::{Dataset, DatasetConfig};
pub use queries::ItemCounts;
pub use stats::DatasetStats;
pub use transaction::TransactionDb;
pub use zipf::Zipf;
