//! Surrogate generator for the Kosarak click-stream dataset.
//!
//! Published statistics: 990,002 anonymized click sessions over 41,270 page
//! ids, mean session length ≈ 8.1, extremely skewed popularity (the most
//! visited page occurs in over 60% of sessions; most pages occur a handful
//! of times).
//!
//! The surrogate uses a steeper Zipf(1.6) law over the 41,270-item universe
//! and Poisson(8.1) session lengths. The resulting descending count curve
//! has the huge-head/long-sparse-tail profile that drives the Kosarak panels
//! of Figures 2–4.

use super::{draw_distinct_items, ensure_full_support, DatasetConfig};
use crate::poisson::sample_poisson;
use crate::transaction::TransactionDb;
use crate::zipf::Zipf;
use free_gap_noise::rng::rng_from_seed;

/// Generator reproducing Kosarak's marginal statistics.
#[derive(Debug, Clone, Copy)]
pub struct KosarakLike {
    config: DatasetConfig,
}

impl Default for KosarakLike {
    fn default() -> Self {
        Self {
            config: DatasetConfig {
                records: 990_002,
                universe: 41_270,
                mean_len: 8.1,
                zipf_exponent: 1.6,
            },
        }
    }
}

impl KosarakLike {
    /// Full-scale generator (990,002 records).
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator with a custom record count (universe and popularity law
    /// unchanged), for fast tests and scaled experiments.
    pub fn with_records(records: usize) -> Self {
        let mut g = Self::default();
        g.config.records = records.max(1);
        g
    }

    /// The configuration in effect.
    pub fn config(&self) -> DatasetConfig {
        self.config
    }

    /// Generates the database deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> TransactionDb {
        let mut rng = rng_from_seed(seed ^ 0x0C05_A8AC); // domain separation
        let zipf = Zipf::new(self.config.universe as usize, self.config.zipf_exponent);
        let mut records = Vec::with_capacity(self.config.records);
        for _ in 0..self.config.records {
            let len = sample_poisson(self.config.mean_len, &mut rng).max(1) as usize;
            records.push(draw_distinct_items(
                &zipf,
                len,
                self.config.universe,
                &mut rng,
            ));
        }
        ensure_full_support(&mut records, self.config.universe, &mut rng);
        TransactionDb::from_records(self.config.universe, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_statistics() {
        // 45k records suffice to give most of the 41,270 items organic
        // support; injection patches the remainder.
        let db = KosarakLike::with_records(45_000).generate(11);
        assert_eq!(db.num_records(), 45_000);
        assert_eq!(db.num_unique_items(), 41_270);
        let mean = db.total_item_occurrences() as f64 / db.num_records() as f64;
        // Injection inflates the mean a little at this reduced scale.
        assert!((mean - 8.1).abs() < 1.5, "mean session = {mean}");
    }

    #[test]
    fn extremely_skewed_head() {
        let db = KosarakLike::with_records(20_000).generate(2);
        let sorted = db.item_counts().sorted_desc();
        let head = sorted[0] as f64;
        // Rank-100 count should be >40x smaller under Zipf(1.6).
        let r100 = sorted[100].max(1) as f64;
        assert!(head / r100 > 40.0, "head {head} vs rank100 {r100}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KosarakLike::with_records(300).generate(5);
        let b = KosarakLike::with_records(300).generate(5);
        assert_eq!(a, b);
    }
}
