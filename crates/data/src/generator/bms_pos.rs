//! Surrogate generator for the BMS-POS retail point-of-sale dataset.
//!
//! Published statistics (§7.1 plus the standard FIMI characterization):
//! 515,597 transactions over 1,657 distinct items, mean basket size ≈ 6.5,
//! item popularity close to a power law with a pronounced head (top items
//! appear in tens of thousands of baskets).
//!
//! The surrogate draws basket sizes from Poisson(6.5) conditioned on being
//! at least 1, and items from a Zipf(1.1) popularity law, then patches the
//! tail so all 1,657 items occur (see
//! [`ensure_full_support`](super::ensure_full_support)).

use super::{draw_distinct_items, ensure_full_support, DatasetConfig};
use crate::poisson::sample_poisson;
use crate::transaction::TransactionDb;
use crate::zipf::Zipf;
use free_gap_noise::rng::rng_from_seed;

/// Generator reproducing BMS-POS's marginal statistics.
#[derive(Debug, Clone, Copy)]
pub struct BmsPosLike {
    config: DatasetConfig,
}

impl Default for BmsPosLike {
    fn default() -> Self {
        Self {
            config: DatasetConfig {
                records: 515_597,
                universe: 1_657,
                mean_len: 6.5,
                zipf_exponent: 1.1,
            },
        }
    }
}

impl BmsPosLike {
    /// Full-scale generator (515,597 records).
    pub fn new() -> Self {
        Self::default()
    }

    /// Generator with a custom record count (universe and popularity law
    /// unchanged), for fast tests and scaled experiments.
    pub fn with_records(records: usize) -> Self {
        let mut g = Self::default();
        g.config.records = records.max(1);
        g
    }

    /// The configuration in effect.
    pub fn config(&self) -> DatasetConfig {
        self.config
    }

    /// Generates the database deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> TransactionDb {
        let mut rng = rng_from_seed(seed ^ 0xB35_905); // domain-separate from other generators
        let zipf = Zipf::new(self.config.universe as usize, self.config.zipf_exponent);
        let mut records = Vec::with_capacity(self.config.records);
        for _ in 0..self.config.records {
            // Baskets have at least one item.
            let len = sample_poisson(self.config.mean_len, &mut rng).max(1) as usize;
            records.push(draw_distinct_items(
                &zipf,
                len,
                self.config.universe,
                &mut rng,
            ));
        }
        ensure_full_support(&mut records, self.config.universe, &mut rng);
        TransactionDb::from_records(self.config.universe, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_statistics() {
        let db = BmsPosLike::with_records(4_000).generate(7);
        assert_eq!(db.num_records(), 4_000);
        assert_eq!(db.universe(), 1_657);
        // Full support is guaranteed by injection.
        assert_eq!(db.num_unique_items(), 1_657);
        // Mean basket length near 6.5 (injection adds < 2k/26k occurrences).
        let mean = db.total_item_occurrences() as f64 / db.num_records() as f64;
        assert!((mean - 6.5).abs() < 0.8, "mean basket = {mean}");
    }

    #[test]
    fn counts_are_heavy_tailed() {
        let db = BmsPosLike::with_records(10_000).generate(1);
        let sorted = db.item_counts().sorted_desc();
        // Head should dominate the median rank by a large factor.
        let head = sorted[0] as f64;
        let mid = sorted[sorted.len() / 2].max(1) as f64;
        assert!(head / mid > 10.0, "head {head} vs mid {mid}");
        // Descending by construction.
        assert!(sorted.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BmsPosLike::with_records(500).generate(3);
        let b = BmsPosLike::with_records(500).generate(3);
        assert_eq!(a, b);
    }
}
