//! Synthetic surrogate generators for the paper's evaluation datasets.
//!
//! See the crate docs and `DESIGN.md` §5 for the substitution rationale. All
//! generators are deterministic functions of a 64-bit seed.
//!
//! Two fidelity knobs matter for the paper's experiments:
//!
//! 1. the number of records and unique items (reported in §7.1's table), and
//! 2. the *shape* of the descending item-count curve, because thresholds are
//!    chosen by rank (top-2k..8k) and mechanisms compare counts near those
//!    ranks.
//!
//! Every generator guarantees the exact unique-item count by injecting one
//! occurrence of any item its random process missed into an existing record
//! that does not already contain it (a sub-0.1% distortion concentrated at
//! the tail ranks, far below the thresholds the experiments use).

mod bms_pos;
mod kosarak;
mod quest;

pub use bms_pos::BmsPosLike;
pub use kosarak::KosarakLike;
pub use quest::{QuestConfig, QuestGenerator};

use crate::transaction::TransactionDb;
use rand::Rng;

/// Common configuration shared by the surrogate generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetConfig {
    /// Number of transactions to generate.
    pub records: usize,
    /// Item-universe size (equals the paper's unique-item count).
    pub universe: u32,
    /// Mean transaction length.
    pub mean_len: f64,
    /// Zipf exponent of the item-popularity law.
    pub zipf_exponent: f64,
}

/// The three evaluation datasets of §7.1, at full published scale or scaled
/// down for fast tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// BMS-POS point-of-sale baskets: 515,597 records, 1,657 items.
    BmsPos,
    /// Kosarak click-stream: 990,002 records, 41,270 items.
    Kosarak,
    /// IBM Quest synthetic T40I10D100K: 100,000 records, 942 items.
    T40I10D100K,
}

impl Dataset {
    /// All three datasets in the paper's order.
    pub const ALL: [Dataset; 3] = [Dataset::BmsPos, Dataset::Kosarak, Dataset::T40I10D100K];

    /// The paper's name for the dataset.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::BmsPos => "BMS-POS",
            Dataset::Kosarak => "kosarak",
            Dataset::T40I10D100K => "T40I10D100K",
        }
    }

    /// Published record count (§7.1).
    pub fn published_records(&self) -> usize {
        match self {
            Dataset::BmsPos => 515_597,
            Dataset::Kosarak => 990_002,
            Dataset::T40I10D100K => 100_000,
        }
    }

    /// Published unique-item count (§7.1).
    pub fn published_unique_items(&self) -> usize {
        match self {
            Dataset::BmsPos => 1_657,
            Dataset::Kosarak => 41_270,
            Dataset::T40I10D100K => 942,
        }
    }

    /// Generates the surrogate at full published scale.
    pub fn generate(&self, seed: u64) -> TransactionDb {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the surrogate with record count scaled by `fraction`
    /// (universe kept at full size so rank-based thresholds stay meaningful).
    ///
    /// # Panics
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn generate_scaled(&self, fraction: f64, seed: u64) -> TransactionDb {
        assert!(
            fraction > 0.0 && fraction <= 1.0 && fraction.is_finite(),
            "fraction must be in (0, 1]"
        );
        let records = ((self.published_records() as f64 * fraction).round() as usize).max(1);
        match self {
            Dataset::BmsPos => BmsPosLike::with_records(records).generate(seed),
            Dataset::Kosarak => KosarakLike::with_records(records).generate(seed),
            Dataset::T40I10D100K => {
                let mut cfg = QuestConfig::t40i10d100k();
                cfg.records = records;
                QuestGenerator::new(cfg).generate(seed)
            }
        }
    }
}

/// Ensures every item in `0..universe` occurs at least once by inserting
/// missing items into pseudo-randomly chosen records. Returns the number of
/// injected occurrences.
pub(crate) fn ensure_full_support<R: Rng + ?Sized>(
    db: &mut [Vec<u32>],
    universe: u32,
    rng: &mut R,
) -> usize {
    let mut present = vec![false; universe as usize];
    for r in db.iter() {
        for &i in r {
            present[i as usize] = true;
        }
    }
    let mut injected = 0;
    for item in 0..universe {
        if !present[item as usize] {
            let slot = rng.gen_range(0..db.len());
            db[slot].push(item);
            injected += 1;
        }
    }
    injected
}

/// Draws a transaction of approximately `len` distinct Zipf-popular items.
///
/// Uses rejection on duplicates with a cap so pathological configs (length
/// close to the universe size) terminate; the remainder is filled with the
/// lowest-indexed absent items.
pub(crate) fn draw_distinct_items<R: Rng + ?Sized>(
    zipf: &crate::zipf::Zipf,
    len: usize,
    universe: u32,
    rng: &mut R,
) -> Vec<u32> {
    let len = len.min(universe as usize);
    let mut items: Vec<u32> = Vec::with_capacity(len);
    let mut attempts = 0usize;
    let max_attempts = len.saturating_mul(20).max(64);
    while items.len() < len && attempts < max_attempts {
        attempts += 1;
        let candidate = zipf.sample(rng) as u32;
        if !items.contains(&candidate) {
            items.push(candidate);
        }
    }
    // Deterministic fill for the (rare) rejection-cap case.
    let mut next = 0u32;
    while items.len() < len && next < universe {
        if !items.contains(&next) {
            items.push(next);
        }
        next += 1;
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zipf::Zipf;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn dataset_metadata_matches_paper_table() {
        assert_eq!(Dataset::BmsPos.published_records(), 515_597);
        assert_eq!(Dataset::BmsPos.published_unique_items(), 1_657);
        assert_eq!(Dataset::Kosarak.published_records(), 990_002);
        assert_eq!(Dataset::Kosarak.published_unique_items(), 41_270);
        assert_eq!(Dataset::T40I10D100K.published_records(), 100_000);
        assert_eq!(Dataset::T40I10D100K.published_unique_items(), 942);
    }

    #[test]
    fn scaled_generation_hits_record_count() {
        for ds in Dataset::ALL {
            let db = ds.generate_scaled(0.002, 1);
            let expect = (ds.published_records() as f64 * 0.002).round() as usize;
            assert_eq!(db.num_records(), expect.max(1), "{}", ds.name());
        }
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_zero_fraction() {
        Dataset::BmsPos.generate_scaled(0.0, 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::T40I10D100K.generate_scaled(0.01, 9);
        let b = Dataset::T40I10D100K.generate_scaled(0.01, 9);
        assert_eq!(a, b);
        let c = Dataset::T40I10D100K.generate_scaled(0.01, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn ensure_full_support_injects_missing() {
        let mut db = vec![vec![0u32], vec![1]];
        let mut rng = rng_from_seed(5);
        let injected = ensure_full_support(&mut db, 4, &mut rng);
        assert_eq!(injected, 2);
        let all: std::collections::HashSet<u32> = db.iter().flatten().copied().collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn draw_distinct_items_distinct_and_bounded() {
        let zipf = Zipf::new(10, 1.0);
        let mut rng = rng_from_seed(2);
        for len in [0, 1, 5, 10, 50] {
            let items = draw_distinct_items(&zipf, len, 10, &mut rng);
            assert_eq!(items.len(), len.min(10));
            let set: std::collections::HashSet<u32> = items.iter().copied().collect();
            assert_eq!(set.len(), items.len(), "duplicates at len {len}");
        }
    }
}
