//! Simplified IBM Quest synthetic-transaction generator (T40I10D100K).
//!
//! The paper's third dataset comes from the IBM Almaden Quest market-basket
//! generator (Agrawal & Srikant, VLDB '94) with the standard parameters
//! encoded in its name: average transaction size **T = 40**, average maximal
//! potential itemset size **I = 10**, **D = 100K** transactions. The original
//! binary is closed source; this module implements the published generation
//! process:
//!
//! 1. Build a pool of `num_patterns` *maximal potential itemsets*: sizes are
//!    Poisson(I) (at least 1), items are drawn Zipf-weighted from the
//!    universe, and successive patterns reuse a fraction of the previous
//!    pattern's items (the paper's "correlation" between patterns).
//! 2. Each pattern gets an exponential weight (normalized to a distribution)
//!    and a *corruption level* drawn from a clamped Normal(0.5, 0.1).
//! 3. Each transaction draws a Poisson(T) target size and fills it by
//!    repeatedly picking a weighted pattern and inserting each of its items
//!    with probability `1 - corruption`, until the target size is reached.
//!
//! With the `t40i10d100k` parameters the output matches the published
//! summary statistics (100,000 records, ≈942 distinct items once the
//! full-support patch runs, mean length ≈ 40).

use super::ensure_full_support;
use crate::poisson::sample_poisson;
use crate::transaction::TransactionDb;
use crate::zipf::Zipf;
use free_gap_noise::rng::rng_from_seed;
use rand::Rng;

/// Parameters of the simplified Quest process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuestConfig {
    /// Number of transactions (`D`).
    pub records: usize,
    /// Item-universe size (`N`).
    pub universe: u32,
    /// Average transaction length (`T`).
    pub avg_transaction_len: f64,
    /// Average maximal-pattern length (`I`).
    pub avg_pattern_len: f64,
    /// Size of the maximal-pattern pool (`|L|`, 2000 in the original).
    pub num_patterns: usize,
    /// Fraction of items a pattern inherits from its predecessor.
    pub correlation: f64,
    /// Zipf exponent for item popularity inside patterns.
    pub zipf_exponent: f64,
}

impl QuestConfig {
    /// The canonical T40I10D100K parameterization.
    ///
    /// `universe = 942` pins the published unique-item count directly (the
    /// original runs with N = 1000 of which 942 survive; fixing the universe
    /// plus the full-support patch is the surrogate's equivalent).
    pub fn t40i10d100k() -> Self {
        Self {
            records: 100_000,
            universe: 942,
            avg_transaction_len: 40.0,
            avg_pattern_len: 10.0,
            num_patterns: 2_000,
            correlation: 0.25,
            zipf_exponent: 0.9,
        }
    }
}

/// One maximal potential itemset with its selection weight and corruption.
#[derive(Debug, Clone)]
struct Pattern {
    items: Vec<u32>,
    corruption: f64,
}

/// Simplified Quest generator.
#[derive(Debug, Clone)]
pub struct QuestGenerator {
    config: QuestConfig,
}

impl QuestGenerator {
    /// Creates a generator from a configuration.
    ///
    /// # Panics
    /// Panics on degenerate configurations (no records, no patterns, empty
    /// universe, correlation outside `[0, 1)`).
    pub fn new(config: QuestConfig) -> Self {
        assert!(config.records > 0, "need at least one record");
        assert!(config.num_patterns > 0, "need at least one pattern");
        assert!(config.universe > 0, "need a non-empty universe");
        assert!(
            (0.0..1.0).contains(&config.correlation),
            "correlation must be in [0, 1)"
        );
        Self { config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> QuestConfig {
        self.config
    }

    fn build_patterns<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<Pattern>, Vec<f64>) {
        let zipf = Zipf::new(self.config.universe as usize, self.config.zipf_exponent);
        let mut patterns: Vec<Pattern> = Vec::with_capacity(self.config.num_patterns);
        let mut cumulative = Vec::with_capacity(self.config.num_patterns);
        let mut acc = 0.0;
        for p in 0..self.config.num_patterns {
            let len = (sample_poisson(self.config.avg_pattern_len, rng).max(1) as usize)
                .min(self.config.universe as usize);
            let mut items: Vec<u32> = Vec::with_capacity(len);
            // Inherit a fraction of the previous pattern (correlation).
            if p > 0 {
                let prev = &patterns[p - 1].items;
                for &it in prev {
                    if items.len() < len && rng.gen::<f64>() < self.config.correlation {
                        items.push(it);
                    }
                }
            }
            let mut attempts = 0;
            while items.len() < len && attempts < len * 30 + 60 {
                attempts += 1;
                let candidate = zipf.sample(rng) as u32;
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            // Exponentially distributed pattern weight (original Quest).
            let weight = -(rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln();
            acc += weight;
            cumulative.push(acc);
            // Corruption ~ clamped Normal(0.5, 0.1), via Box–Muller-free sum
            // of uniforms (Irwin–Hall with 12 terms has unit variance).
            let normalish: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            let corruption = (0.5 + 0.1 * normalish).clamp(0.0, 0.9);
            patterns.push(Pattern { items, corruption });
        }
        (patterns, cumulative)
    }

    /// Generates the database deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> TransactionDb {
        let mut rng = rng_from_seed(seed ^ QUEST_SEED_DOMAIN);
        let (patterns, cumulative) = self.build_patterns(&mut rng);
        let total_weight = *cumulative.last().expect("non-empty pool");

        let mut records = Vec::with_capacity(self.config.records);
        for _ in 0..self.config.records {
            let target = (sample_poisson(self.config.avg_transaction_len, &mut rng).max(1)
                as usize)
                .min(self.config.universe as usize);
            let mut txn: Vec<u32> = Vec::with_capacity(target + 8);
            let mut guard = 0;
            while txn.len() < target && guard < target * 40 + 100 {
                guard += 1;
                let u = rng.gen::<f64>() * total_weight;
                let pi = cumulative
                    .partition_point(|&c| c <= u)
                    .min(patterns.len() - 1);
                let pat = &patterns[pi];
                for &item in &pat.items {
                    if txn.len() >= target {
                        break;
                    }
                    if rng.gen::<f64>() >= pat.corruption && !txn.contains(&item) {
                        txn.push(item);
                    }
                }
            }
            records.push(txn);
        }
        ensure_full_support(&mut records, self.config.universe, &mut rng);
        TransactionDb::from_records(self.config.universe, records)
    }
}

/// Seed domain-separation constant (keeps Quest streams independent of the
/// other generators when callers reuse one experiment seed).
const QUEST_SEED_DOMAIN: u64 = 0x9E57_0000_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_config_statistics() {
        let mut cfg = QuestConfig::t40i10d100k();
        cfg.records = 2_000; // scaled for test speed
        let db = QuestGenerator::new(cfg).generate(13);
        assert_eq!(db.num_records(), 2_000);
        assert_eq!(db.num_unique_items(), 942);
        let mean = db.total_item_occurrences() as f64 / db.num_records() as f64;
        assert!(
            (mean - 40.0).abs() < 4.0,
            "mean transaction length = {mean}"
        );
    }

    #[test]
    fn patterns_give_clustered_counts() {
        // Quest data has correlated items: counts should not be flat.
        let mut cfg = QuestConfig::t40i10d100k();
        cfg.records = 2_000;
        let db = QuestGenerator::new(cfg).generate(1);
        let sorted = db.item_counts().sorted_desc();
        let head = sorted[0] as f64;
        let tail = sorted[sorted.len() - 1].max(1) as f64;
        assert!(head / tail > 5.0, "head {head}, tail {tail}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut cfg = QuestConfig::t40i10d100k();
        cfg.records = 200;
        let g = QuestGenerator::new(cfg);
        assert_eq!(g.generate(4), g.generate(4));
        assert_ne!(g.generate(4), g.generate(5));
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn rejects_bad_correlation() {
        let mut cfg = QuestConfig::t40i10d100k();
        cfg.correlation = 1.0;
        QuestGenerator::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn rejects_zero_records() {
        let mut cfg = QuestConfig::t40i10d100k();
        cfg.records = 0;
        QuestGenerator::new(cfg);
    }
}
