//! Dataset statistics — regenerates the §7.1 table.

use crate::transaction::TransactionDb;
use std::fmt;

/// Summary statistics of a transaction database, matching (and extending)
/// the columns of the paper's §7.1 dataset table.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset label.
    pub name: String,
    /// Number of records (transactions).
    pub records: usize,
    /// Number of distinct items that occur.
    pub unique_items: usize,
    /// Total (transaction, item) incidences.
    pub total_occurrences: usize,
    /// Mean transaction length.
    pub mean_transaction_len: f64,
    /// Largest single item count.
    pub max_item_count: u64,
    /// Median of the non-zero item counts.
    pub median_item_count: u64,
}

impl DatasetStats {
    /// Computes statistics for a database.
    pub fn compute(name: impl Into<String>, db: &TransactionDb) -> Self {
        let counts = db.item_counts();
        let mut nonzero: Vec<u64> = counts.as_u64().iter().copied().filter(|&c| c > 0).collect();
        nonzero.sort_unstable();
        let total = db.total_item_occurrences();
        Self {
            name: name.into(),
            records: db.num_records(),
            unique_items: db.num_unique_items(),
            total_occurrences: total,
            mean_transaction_len: if db.num_records() == 0 {
                0.0
            } else {
                total as f64 / db.num_records() as f64
            },
            max_item_count: nonzero.last().copied().unwrap_or(0),
            median_item_count: if nonzero.is_empty() {
                0
            } else {
                nonzero[nonzero.len() / 2]
            },
        }
    }

    /// Header row matching [`Display`](fmt::Display)'s column layout.
    pub fn table_header() -> String {
        format!(
            "{:<14} {:>10} {:>14} {:>12} {:>10} {:>10} {:>12}",
            "Dataset",
            "Records",
            "Unique Items",
            "Occurrences",
            "Mean Len",
            "Max Cnt",
            "Median Cnt"
        )
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>10} {:>14} {:>12} {:>10.2} {:>10} {:>12}",
            self.name,
            self.records,
            self.unique_items,
            self.total_occurrences,
            self.mean_transaction_len,
            self.max_item_count,
            self.median_item_count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_on_toy_db() {
        let db = TransactionDb::from_records(4, vec![vec![0, 1], vec![1], vec![1, 2]]);
        let s = DatasetStats::compute("toy", &db);
        assert_eq!(s.records, 3);
        assert_eq!(s.unique_items, 3);
        assert_eq!(s.total_occurrences, 5);
        assert!((s.mean_transaction_len - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_item_count, 3);
        assert_eq!(s.median_item_count, 1);
    }

    #[test]
    fn empty_db_is_all_zero() {
        let db = TransactionDb::new(3);
        let s = DatasetStats::compute("empty", &db);
        assert_eq!(s.records, 0);
        assert_eq!(s.mean_transaction_len, 0.0);
        assert_eq!(s.max_item_count, 0);
    }

    #[test]
    fn display_aligns_with_header() {
        let db = TransactionDb::from_records(2, vec![vec![0], vec![1]]);
        let s = DatasetStats::compute("x", &db);
        // Same number of whitespace-separated columns.
        let header_cols = DatasetStats::table_header().split_whitespace().count();
        let row_cols = s.to_string().split_whitespace().count();
        // Header has two-word columns ("Unique Items", etc.): compare widths loosely.
        assert!(header_cols >= row_cols);
        assert!(s.to_string().contains('x'));
    }
}
