//! Transaction databases and record-level adjacency.
//!
//! A record is one transaction: a sorted, de-duplicated set of item ids drawn
//! from a fixed universe `0..universe`. Differential-privacy adjacency is
//! add/remove-one-record (the Dwork'06 convention the paper cites for
//! counting queries): removing a transaction decreases the count of every
//! item it contains by exactly 1, so per-item counting queries are monotone
//! with sensitivity 1 — the paper's query model.

use crate::queries::ItemCounts;

/// A collection of transactions over the item universe `0..universe`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionDb {
    universe: u32,
    records: Vec<Vec<u32>>,
}

impl TransactionDb {
    /// Creates an empty database over `0..universe`.
    pub fn new(universe: u32) -> Self {
        Self {
            universe,
            records: Vec::new(),
        }
    }

    /// Creates a database from raw records. Each record is sorted and
    /// de-duplicated; item ids must be `< universe`.
    ///
    /// # Panics
    /// Panics if any item id is out of range.
    pub fn from_records(universe: u32, records: Vec<Vec<u32>>) -> Self {
        let mut db = Self::new(universe);
        db.records.reserve(records.len());
        for r in records {
            db.push(r);
        }
        db
    }

    /// Item-universe size (number of possible items, the paper's `n` queries).
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of records (transactions).
    pub fn num_records(&self) -> usize {
        self.records.len()
    }

    /// Returns the records.
    pub fn records(&self) -> &[Vec<u32>] {
        &self.records
    }

    /// Appends a transaction (sorted and de-duplicated on insert).
    ///
    /// # Panics
    /// Panics if an item id is `>= universe`.
    pub fn push(&mut self, mut record: Vec<u32>) {
        record.sort_unstable();
        record.dedup();
        if let Some(&max) = record.last() {
            assert!(
                max < self.universe,
                "item id {max} outside universe {}",
                self.universe
            );
        }
        self.records.push(record);
    }

    /// Total number of (transaction, item) incidences.
    pub fn total_item_occurrences(&self) -> usize {
        self.records.iter().map(Vec::len).sum()
    }

    /// Number of distinct items that actually occur.
    pub fn num_unique_items(&self) -> usize {
        let mut seen = vec![false; self.universe as usize];
        for r in &self.records {
            for &i in r {
                seen[i as usize] = true;
            }
        }
        seen.iter().filter(|&&b| b).count()
    }

    /// Per-item counting-query answers: `counts[i]` = number of transactions
    /// containing item `i`. This is the paper's query vector `q(D)`.
    pub fn item_counts(&self) -> ItemCounts {
        let mut counts = vec![0u64; self.universe as usize];
        for r in &self.records {
            for &i in r {
                counts[i as usize] += 1;
            }
        }
        ItemCounts::new(counts)
    }

    /// The adjacent database obtained by removing record `idx`
    /// (add/remove-one adjacency, `D ~ D'`).
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn neighbor_without(&self, idx: usize) -> TransactionDb {
        assert!(idx < self.records.len(), "record index out of bounds");
        let mut records = self.records.clone();
        records.remove(idx);
        Self {
            universe: self.universe,
            records,
        }
    }

    /// The adjacent database obtained by appending `record`.
    pub fn neighbor_with(&self, record: Vec<u32>) -> TransactionDb {
        let mut db = self.clone();
        db.push(record);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_db() -> TransactionDb {
        TransactionDb::from_records(
            5,
            vec![vec![0, 1, 2], vec![1, 2], vec![2], vec![4, 1], vec![]],
        )
    }

    #[test]
    fn counts_are_per_item_record_counts() {
        let db = sample_db();
        assert_eq!(db.item_counts().as_u64(), &[1, 3, 3, 0, 1]);
        assert_eq!(db.num_records(), 5);
        assert_eq!(db.total_item_occurrences(), 8);
        assert_eq!(db.num_unique_items(), 4); // item 3 never occurs
    }

    #[test]
    fn push_sorts_and_dedups() {
        let mut db = TransactionDb::new(10);
        db.push(vec![3, 1, 3, 2, 1]);
        assert_eq!(db.records()[0], vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn push_rejects_out_of_range() {
        let mut db = TransactionDb::new(3);
        db.push(vec![3]);
    }

    #[test]
    fn remove_neighbor_changes_counts_by_at_most_one_monotonically() {
        let db = sample_db();
        let counts = db.item_counts();
        for idx in 0..db.num_records() {
            let neigh = db.neighbor_without(idx);
            assert_eq!(neigh.num_records(), db.num_records() - 1);
            let nc = neigh.item_counts();
            for i in 0..5 {
                let delta = counts.as_u64()[i] as i64 - nc.as_u64()[i] as i64;
                assert!((0..=1).contains(&delta), "sensitivity violated at item {i}");
            }
        }
    }

    #[test]
    fn add_neighbor_is_inverse_of_remove() {
        let db = sample_db();
        let record = db.records()[0].clone();
        let bigger = db.neighbor_with(record);
        let back = bigger.neighbor_without(bigger.num_records() - 1);
        assert_eq!(back, db);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn neighbor_without_bounds_check() {
        sample_db().neighbor_without(99);
    }

    proptest! {
        #[test]
        fn counting_queries_are_monotone_sensitivity_one(
            records in proptest::collection::vec(
                proptest::collection::vec(0u32..20, 0..8), 1..20),
            idx_seed in 0usize..1000,
        ) {
            let db = TransactionDb::from_records(20, records);
            let idx = idx_seed % db.num_records();
            let neigh = db.neighbor_without(idx);
            let (a, b) = (db.item_counts(), neigh.item_counts());
            for i in 0..20 {
                let d = a.as_u64()[i] as i64 - b.as_u64()[i] as i64;
                // monotone: removing a record can only decrease counts, by <= 1
                prop_assert!((0..=1).contains(&d));
            }
        }
    }
}
