//! Item-count query workloads.
//!
//! The paper's experiments use one counting query per item: "how many
//! transactions contain item *i*?" (§7.1). These queries are *monotonic*
//! (Definition 7) with global sensitivity 1 under add/remove-one-record
//! adjacency, which is what makes the tighter `ε/2` analysis of Theorem 2 and
//! the `Lap(1/ε)`-noise variant of Algorithm 2 applicable.

/// The answer vector of the per-item counting queries on one database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemCounts {
    counts: Vec<u64>,
}

impl ItemCounts {
    /// Wraps a raw count vector.
    pub fn new(counts: Vec<u64>) -> Self {
        Self { counts }
    }

    /// Number of queries (items).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True if there are no queries.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The raw counts.
    pub fn as_u64(&self) -> &[u64] {
        &self.counts
    }

    /// The counts as `f64` query answers (the form mechanisms consume).
    pub fn to_f64(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Count of a single item.
    ///
    /// # Panics
    /// Panics if `item` is out of range.
    pub fn count(&self, item: usize) -> u64 {
        self.counts[item]
    }

    /// The counts sorted in descending order (used for rank-based threshold
    /// selection and ground-truth top-k).
    pub fn sorted_desc(&self) -> Vec<u64> {
        let mut v = self.counts.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// The value at descending rank `r` (0-based: `r = 0` is the maximum).
    ///
    /// Returns `None` when `r` is out of range.
    pub fn value_at_rank(&self, r: usize) -> Option<u64> {
        self.sorted_desc().get(r).copied()
    }

    /// Indices of the `k` largest counts, in descending count order.
    /// Ties are broken by smaller index first (deterministic).
    pub fn top_k_indices(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.counts.len()).collect();
        idx.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// Ground truth for precision/recall: the number of queries whose true
    /// answer is at least `threshold`. Uses `>=` to mirror the mechanisms'
    /// noisy comparisons, which are also `>=`.
    pub fn num_at_or_above(&self, threshold: f64) -> usize {
        self.counts
            .iter()
            .filter(|&&c| c as f64 >= threshold)
            .count()
    }
}

impl From<Vec<u64>> for ItemCounts {
    fn from(v: Vec<u64>) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> ItemCounts {
        ItemCounts::new(vec![5, 9, 1, 9, 3])
    }

    #[test]
    fn basic_accessors() {
        let c = counts();
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.count(1), 9);
        assert_eq!(c.to_f64(), vec![5.0, 9.0, 1.0, 9.0, 3.0]);
    }

    #[test]
    fn sorted_desc_and_ranks() {
        let c = counts();
        assert_eq!(c.sorted_desc(), vec![9, 9, 5, 3, 1]);
        assert_eq!(c.value_at_rank(0), Some(9));
        assert_eq!(c.value_at_rank(2), Some(5));
        assert_eq!(c.value_at_rank(5), None);
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let c = counts();
        assert_eq!(c.top_k_indices(3), vec![1, 3, 0]);
        assert_eq!(c.top_k_indices(0), Vec::<usize>::new());
        assert_eq!(c.top_k_indices(99).len(), 5);
    }

    #[test]
    fn above_threshold_ground_truth() {
        let c = counts();
        assert_eq!(c.num_at_or_above(9.0), 2);
        assert_eq!(c.num_at_or_above(3.5), 3);
        assert_eq!(c.num_at_or_above(0.0), 5);
    }
}
