//! Tie-probability analysis for discretized Laplace noise (Appendix A.1).
//!
//! The continuous analysis of Noisy Max assumes ties between the largest and
//! second-largest noisy queries happen with probability zero. A real
//! implementation adds [`crate::DiscreteLaplace`] noise with base `γ`, where
//! ties have positive probability. Appendix A.1 derives
//!
//! * the exact tie probability for one pair of queries at (integer) distance
//!   `m·γ` ([`pair_tie_probability`]),
//! * the distance-free pair bound `γε(1 + e^{-1})` ([`pair_tie_bound`]), and
//! * the union bound over all `n²` pairs ([`union_tie_bound`]), which is the
//!   `δ` in the `(ε, δ)`-DP guarantee of the finite-precision mechanism.
//!
//! With `γ ≈ 2^{-52}` (double-precision machine epsilon) the failure
//! probability is negligible for any realistic `n` and `ε`.

use crate::error::NoiseError;
use crate::traits::DiscreteDistribution;
use crate::DiscreteLaplace;
use rand::Rng;

fn validate(epsilon: f64, gamma: f64) -> Result<(), NoiseError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(NoiseError::InvalidScale {
            name: "epsilon",
            value: epsilon,
        });
    }
    if !(gamma.is_finite() && gamma > 0.0) {
        return Err(NoiseError::InvalidScale {
            name: "gamma",
            value: gamma,
        });
    }
    Ok(())
}

/// Exact probability that two queries whose true answers differ by `m·γ`
/// produce equal noisy values under independent discrete Laplace noise with
/// privacy parameter `epsilon` and base `gamma` (Appendix A.1):
///
/// ```text
/// P(tie) = (1-e^{-γε})²/(1+e^{-γε})² · e^{-γεm} · ((1+e^{-2γε})/(1-e^{-2γε}) + m)
/// ```
pub fn pair_tie_probability(epsilon: f64, gamma: f64, m: u64) -> Result<f64, NoiseError> {
    validate(epsilon, gamma)?;
    let a = (-gamma * epsilon).exp();
    let a2 = a * a;
    let front = (1.0 - a) * (1.0 - a) / ((1.0 + a) * (1.0 + a));
    let m = m as f64;
    Ok(front * a.powf(m) * ((1.0 + a2) / (1.0 - a2) + m))
}

/// The distance-free upper bound on the pair tie probability derived in
/// Appendix A.1: `γε(1 + e^{-1})`.
pub fn pair_tie_bound(epsilon: f64, gamma: f64) -> Result<f64, NoiseError> {
    validate(epsilon, gamma)?;
    Ok(gamma * epsilon * (1.0 + (-1.0f64).exp()))
}

/// Union bound on the probability of *any* tie among `n` queries:
/// `n² · γε(1 + e^{-1})` — the `δ` of the finite-precision `(ε, δ)` guarantee.
///
/// The paper conservatively uses `n²` pairs rather than `n(n-1)/2`.
pub fn union_tie_bound(n: usize, epsilon: f64, gamma: f64) -> Result<f64, NoiseError> {
    Ok((n * n) as f64 * pair_tie_bound(epsilon, gamma)?)
}

/// Monte-Carlo estimate of the pair tie probability, for validating the
/// closed form: draws `trials` pairs of noisy answers at distance `m·γ` and
/// returns the fraction of exact ties.
pub fn empirical_pair_tie_rate<R: Rng + ?Sized>(
    epsilon: f64,
    gamma: f64,
    m: u64,
    trials: usize,
    rng: &mut R,
) -> Result<f64, NoiseError> {
    let d = DiscreteLaplace::new(epsilon, gamma)?;
    let mut ties = 0usize;
    for _ in 0..trials {
        // Work on the integer lattice: q1 = m, q2 = 0 (units of γ).
        let n1 = d.sample_index(rng);
        let n2 = d.sample_index(rng);
        if m as i64 + n1 == n2 {
            ties += 1;
        }
    }
    Ok(ties as f64 / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_params() {
        assert!(pair_tie_probability(0.0, 1.0, 0).is_err());
        assert!(pair_tie_probability(1.0, 0.0, 0).is_err());
        assert!(pair_tie_bound(-1.0, 1.0).is_err());
        assert!(union_tie_bound(10, 1.0, f64::NAN).is_err());
    }

    /// Brute-force `P(tie) = Σ_ℓ P(η₁ = ℓ)·P(η₂ = ℓ + m)` from the pmf.
    fn brute_force_tie(epsilon: f64, gamma: f64, m: i64) -> f64 {
        let d = DiscreteLaplace::new(epsilon, gamma).unwrap();
        (-4000i64..4000).map(|l| d.pmf(l) * d.pmf(l + m)).sum()
    }

    #[test]
    fn exact_formula_matches_brute_force() {
        for (eps, m) in [(0.5, 0), (0.5, 3), (1.0, 1), (2.0, 5), (0.1, 10)] {
            let exact = pair_tie_probability(eps, 1.0, m as u64).unwrap();
            let brute = brute_force_tie(eps, 1.0, m);
            assert!(
                (exact - brute).abs() < 1e-10,
                "eps={eps}, m={m}: {exact} vs {brute}"
            );
        }
    }

    #[test]
    fn exact_below_distance_free_bound() {
        for eps in [0.1, 0.5, 1.0, 2.0] {
            for gamma in [0.001, 0.01, 0.1, 1.0] {
                let bound = pair_tie_bound(eps, gamma).unwrap();
                for m in [0u64, 1, 2, 10, 100] {
                    let p = pair_tie_probability(eps, gamma, m).unwrap();
                    // The appendix chain of inequalities needs γε modest; the
                    // final bound holds whenever γε(1+γεme^{-γεm}) ≤ γε(1+e⁻¹).
                    if gamma * eps <= 1.0 {
                        assert!(
                            p <= bound + 1e-12,
                            "eps={eps} γ={gamma} m={m}: {p} > {bound}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tie_probability_decreases_with_distance() {
        for m in 0u64..20 {
            let p0 = pair_tie_probability(1.0, 0.5, m).unwrap();
            let p1 = pair_tie_probability(1.0, 0.5, m + 1).unwrap();
            assert!(p1 <= p0, "m = {m}");
        }
    }

    #[test]
    fn union_bound_scales_quadratically() {
        let one = union_tie_bound(1, 1.0, 1e-6).unwrap();
        let ten = union_tie_bound(10, 1.0, 1e-6).unwrap();
        assert!((ten / one - 100.0).abs() < 1e-9);
    }

    #[test]
    fn machine_epsilon_delta_is_negligible() {
        // The headline claim of §5.1: with γ ≈ 2^-52, δ is tiny even for
        // millions of queries.
        let delta = union_tie_bound(1_000_000, 1.0, 2f64.powi(-52)).unwrap();
        assert!(delta < 1e-3, "delta = {delta}");
    }

    #[test]
    fn empirical_matches_exact() {
        let mut rng = rng_from_seed(99);
        let eps = 1.0;
        let gamma = 1.0;
        for m in [0u64, 2] {
            let exact = pair_tie_probability(eps, gamma, m).unwrap();
            let emp = empirical_pair_tie_rate(eps, gamma, m, 200_000, &mut rng).unwrap();
            let sigma = (exact * (1.0 - exact) / 200_000.0).sqrt();
            assert!((emp - exact).abs() < 5.0 * sigma, "m={m}: {emp} vs {exact}");
        }
    }

    proptest! {
        #[test]
        fn probabilities_in_unit_interval(eps in 0.01f64..4.0, gamma in 1e-6f64..1.0,
                                          m in 0u64..1000) {
            let p = pair_tie_probability(eps, gamma, m).unwrap();
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}
