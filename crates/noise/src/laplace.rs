//! Zero-mean Laplace distribution `Lap(b)`.
//!
//! The paper writes `Lap(b)` for the distribution with density
//! `f(x) = exp(-|x|/b) / (2b)`; e.g. Algorithm 1 adds `Lap(2k/ε)` noise and
//! Algorithm 2 adds `Lap(1/ε₀)`, `Lap(2/ε₁)`, `Lap(2/ε₂)`.
//!
//! The key analytic property used throughout the randomness-alignment proofs
//! is the *bounded log-density ratio* (Definition 6):
//! `log(f(x)/f(y)) <= |x - y| / b`, which [`Laplace::log_density_ratio_bound`]
//! exposes for cost accounting.

use crate::error::{require_open_unit, require_positive, NoiseError};
use crate::traits::{ContinuousDistribution, SingleUniform};
use rand::Rng;

/// Zero-mean Laplace distribution with scale parameter `b > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates `Lap(scale)`; `scale` must be finite and positive.
    pub fn new(scale: f64) -> Result<Self, NoiseError> {
        Ok(Self {
            scale: require_positive("scale", scale)?,
        })
    }

    /// Creates the Laplace mechanism noise `Lap(sensitivity / epsilon)`.
    pub fn for_budget(sensitivity: f64, epsilon: f64) -> Result<Self, NoiseError> {
        let s = require_positive("sensitivity", sensitivity)?;
        let e = require_positive("epsilon", epsilon)?;
        Self::new(s / e)
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Upper bound on `log(f(x)/f(y))` per unit of `|x - y|`, i.e. `1/b`.
    ///
    /// This is the `1/αᵢ` factor in the paper's Definition 6 alignment cost
    /// `Σᵢ |ηᵢ - η'ᵢ| / αᵢ`.
    pub fn log_density_ratio_bound(&self) -> f64 {
        1.0 / self.scale
    }

    /// Survival function `P(X > x)`; more accurate than `1 - cdf(x)` in the
    /// right tail.
    pub fn sf(&self, x: f64) -> f64 {
        if x >= 0.0 {
            0.5 * (-x / self.scale).exp()
        } else {
            1.0 - 0.5 * (x / self.scale).exp()
        }
    }
}

impl SingleUniform for Laplace {
    /// Inverse-CDF transform: `x = -b * sgn(u') * ln(1 - 2|u'|)` for
    /// `u' = u - 0.5 ∈ [-1/2, 1/2)`. The endpoint `u' = -1/2` (i.e.
    /// `u = 0`) maps to the extreme left tail; it stays finite because ln
    /// is clamped to `f64::MIN_POSITIVE`, not evaluated at 0.
    #[inline]
    fn sample_from_uniform(&self, u: f64) -> f64 {
        let u = u - 0.5;
        let magnitude = -self.scale * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln();
        if u < 0.0 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl ContinuousDistribution for Laplace {
    /// One uniform draw through the
    /// [`SingleUniform`] transform — the arithmetic
    /// exists exactly once, so the raw-uniform buffering paths are
    /// bit-identical by construction.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_from_uniform(rng.gen::<f64>())
    }

    /// Batch inverse-CDF sampling: one uniform draw per sample, fused into a
    /// single pass over `out`. Bit-identical to a [`sample`](Self::sample)
    /// loop on the same RNG stream (same draw order, same arithmetic).
    #[inline]
    fn fill_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample_from_uniform(rng.gen::<f64>());
        }
    }

    /// Fused offset + batch sampling (`out[i] = base[i] + Lap(b)`): the
    /// Noisy-Max hot loop, one buffer write per query.
    #[inline]
    fn fill_into_offset<R: Rng + ?Sized>(&self, rng: &mut R, base: &[f64], out: &mut [f64]) {
        // lint:allow(panic-freedom): documented panic — the mechanism core sizes both buffers before the call
        assert_eq!(base.len(), out.len(), "offset/output length mismatch");
        for (slot, b) in out.iter_mut().zip(base) {
            *slot = b + self.sample_from_uniform(rng.gen::<f64>());
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, NoiseError> {
        let p = require_open_unit("p", p)?;
        Ok(if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        })
    }

    fn mean(&self) -> f64 {
        0.0
    }

    /// `Var = 2 b²`.
    fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::stats::{ks_statistic, RunningMoments};
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_scale() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
    }

    #[test]
    fn for_budget_matches_ratio() {
        let l = Laplace::for_budget(2.0, 0.5).unwrap();
        assert_eq!(l.scale(), 4.0);
        assert!(Laplace::for_budget(1.0, 0.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_trapezoid() {
        let l = Laplace::new(1.7).unwrap();
        let (a, b, n) = (-60.0, 60.0, 400_000);
        let h = (b - a) / n as f64;
        let mut area = 0.0;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            area += 0.5 * h * (l.pdf(x0) + l.pdf(x0 + h));
        }
        assert!((area - 1.0).abs() < 1e-6, "area = {area}");
    }

    #[test]
    fn cdf_matches_numeric_integral_of_pdf() {
        let l = Laplace::new(0.8).unwrap();
        for x in [-3.0, -1.0, -0.1, 0.0, 0.1, 0.5, 2.0, 5.0] {
            // integrate pdf from -40 to x
            let (a, n) = (-40.0, 200_000);
            let h = (x - a) / n as f64;
            let mut area = 0.0;
            for i in 0..n {
                let x0 = a + i as f64 * h;
                area += 0.5 * h * (l.pdf(x0) + l.pdf(x0 + h));
            }
            assert!((area - l.cdf(x)).abs() < 1e-6, "x = {x}");
        }
    }

    #[test]
    fn cdf_symmetry() {
        let l = Laplace::new(2.5).unwrap();
        for x in [0.0, 0.3, 1.0, 4.0, 10.0] {
            assert!((l.cdf(-x) - (1.0 - l.cdf(x))).abs() < 1e-14);
        }
    }

    #[test]
    fn sf_complements_cdf() {
        let l = Laplace::new(1.0).unwrap();
        for x in [-5.0, -1.0, 0.0, 1.0, 30.0] {
            assert!((l.sf(x) + l.cdf(x) - 1.0).abs() < 1e-14);
        }
        // deep tail: sf stays meaningful where 1 - cdf loses all precision
        // (0.5*e^-700 ≈ 5e-305 is representable; beyond ~745 it underflows).
        assert!(l.sf(700.0) > 0.0);
        assert_eq!(1.0 - l.cdf(700.0), 0.0, "naive complement loses the tail");
    }

    #[test]
    fn sample_moments_match() {
        let l = Laplace::new(3.0).unwrap();
        let mut rng = rng_from_seed(11);
        let mut m = RunningMoments::new();
        for _ in 0..200_000 {
            m.push(l.sample(&mut rng));
        }
        assert!(m.mean().abs() < 0.05, "mean = {}", m.mean());
        let rel = (m.variance() - l.variance()).abs() / l.variance();
        assert!(rel < 0.03, "variance rel err = {rel}");
    }

    #[test]
    fn sample_ks_against_cdf() {
        let l = Laplace::new(1.3).unwrap();
        let mut rng = rng_from_seed(5);
        let xs = l.sample_n(&mut rng, 50_000);
        let d = ks_statistic(&xs, |x| l.cdf(x));
        // KS critical value at alpha=0.001 for n=50k is ~ 1.949/sqrt(n) ≈ 0.0087
        assert!(d < 0.009, "KS distance {d}");
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(p in 1e-6f64..1.0 - 1e-6, scale in 0.01f64..100.0) {
            let l = Laplace::new(scale).unwrap();
            let x = l.quantile(p).unwrap();
            prop_assert!((l.cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn log_density_ratio_is_bounded(x in -15.0f64..15.0, y in -15.0f64..15.0,
                                        scale in 0.05f64..20.0) {
            // Keep |x - y|/scale below ~700 so exp(-|y|/b) cannot underflow
            // to zero and produce a spuriously infinite ratio.
            let l = Laplace::new(scale).unwrap();
            let lhs = (l.pdf(x) / l.pdf(y)).ln();
            let rhs = (x - y).abs() * l.log_density_ratio_bound();
            prop_assert!(lhs <= rhs + 1e-9, "lhs {lhs} rhs {rhs}");
        }

        #[test]
        fn cdf_monotone(a in -30.0f64..30.0, b in -30.0f64..30.0, scale in 0.1f64..10.0) {
            let l = Laplace::new(scale).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(l.cdf(lo) <= l.cdf(hi) + 1e-15);
        }

        #[test]
        fn samples_are_finite(seed in 0u64..1000, scale in 0.01f64..100.0) {
            let l = Laplace::new(scale).unwrap();
            let mut rng = rng_from_seed(seed);
            for _ in 0..64 {
                prop_assert!(l.sample(&mut rng).is_finite());
            }
        }
    }
}
