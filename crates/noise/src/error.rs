//! Error type for distribution construction and evaluation.

use std::fmt;

/// Errors produced when constructing or evaluating a noise distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// A scale/rate parameter was non-positive or non-finite.
    InvalidScale {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A probability argument fell outside `(0, 1)` (or `[0, 1]` where noted).
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter fell outside its documented domain.
    OutOfDomain {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the expected domain.
        expected: &'static str,
    },
    /// An iterative solver (quantile bisection, confidence-bound search)
    /// failed to converge to the requested tolerance.
    NoConvergence {
        /// What was being solved for.
        what: &'static str,
    },
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidScale { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be positive and finite, got {value}"
                )
            }
            NoiseError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be a probability in (0, 1), got {value}"
                )
            }
            NoiseError::OutOfDomain {
                name,
                value,
                expected,
            } => {
                write!(
                    f,
                    "parameter `{name}` = {value} outside domain ({expected})"
                )
            }
            NoiseError::NoConvergence { what } => {
                write!(f, "iterative solver for {what} did not converge")
            }
        }
    }
}

impl std::error::Error for NoiseError {}

/// Validates that `value` is a finite, strictly positive scale parameter.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<f64, NoiseError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(NoiseError::InvalidScale { name, value })
    }
}

/// Validates that `value` lies strictly inside `(0, 1)`.
pub(crate) fn require_open_unit(name: &'static str, value: f64) -> Result<f64, NoiseError> {
    if value.is_finite() && value > 0.0 && value < 1.0 {
        Ok(value)
    } else {
        Err(NoiseError::InvalidProbability { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn require_positive_accepts_positive() {
        assert_eq!(require_positive("b", 1.5), Ok(1.5));
    }

    #[test]
    fn require_positive_rejects_zero_negative_nan_inf() {
        for v in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(require_positive("b", v).is_err(), "{v} should be rejected");
        }
    }

    #[test]
    fn require_open_unit_bounds() {
        assert!(require_open_unit("p", 0.5).is_ok());
        for v in [0.0, 1.0, -0.1, 1.1, f64::NAN] {
            assert!(require_open_unit("p", v).is_err(), "{v} should be rejected");
        }
    }

    #[test]
    fn display_messages_mention_parameter() {
        let e = NoiseError::InvalidScale {
            name: "scale",
            value: -3.0,
        };
        assert!(e.to_string().contains("scale"));
        let e = NoiseError::NoConvergence { what: "quantile" };
        assert!(e.to_string().contains("quantile"));
    }
}
