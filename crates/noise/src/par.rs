//! Per-block derived sub-streams: the intra-run parallel noise-fill layout.
//!
//! The workspace's fast paths fill an `n`-sized noise vector from **one**
//! sequential RNG, which caps a single request at one core. This module
//! defines the alternative layout the `free-gap-core` parallel providers
//! build on:
//!
//! * the tape is split into fixed-size blocks of [`BLOCK_LEN`] draws;
//! * block `b` of a run is filled from its own derived generator,
//!   `derive_fast_stream(run_seed, b)` (see
//!   [`derive_stream_seed`](crate::rng::derive_stream_seed) for the exact
//!   mixing) — so the value of any block is a pure function of
//!   `(run_seed, b)` and never of which thread filled it, or when;
//! * consecutive bulk fills within one run consume consecutive block
//!   indices; scalar (non-bulk) draws live on the reserved stream index
//!   [`SCALAR_STREAM`], far outside the block range.
//!
//! Because blocks are independent by construction, the parallel engines
//! ([`par_fill_offset_blocks`], [`par_fill_values_offset_blocks`]) and the
//! sequential reference engines ([`fill_offset_blocks`],
//! [`fill_values_offset_blocks`]) are **bit-identical for every thread
//! count** — the property the provider-level digest tests in
//! `free-gap-core` pin. The cost of the layout is that a blocked fill is a
//! *different stream* from the single-RNG fast paths; it is a new path
//! (`par` in the benchmark grid), not a replacement.

use crate::rng::derive_fast_stream;
use crate::traits::{ContinuousDistribution, DiscreteDistribution};

/// Draws per block: 4096 `f64`s (32 KiB per slab — a few L1-sized chunks
/// per thread at the `n = 100k` sizes the serving layer cares about).
pub const BLOCK_LEN: usize = 4096;

/// The stream index reserved for scalar (non-bulk) draws of a run. Bulk
/// fills consume block indices counting up from 0; a run would need to
/// fill 2⁶⁴ − 1 blocks before colliding with this reserved stream.
pub const SCALAR_STREAM: u64 = u64::MAX;

/// Number of consecutive block indices a bulk fill of `n` values consumes.
pub fn blocks_for(n: usize) -> u64 {
    n.div_ceil(BLOCK_LEN) as u64
}

/// Sequential reference engine for a blocked continuous fill:
/// `out[i] = base[i] + noiseᵢ`, where the noise of block `b` (relative to
/// `first_block`) is drawn from `derive_fast_stream(run_seed, first_block
/// + b)` exactly as [`ContinuousDistribution::fill_into_offset`] would.
///
/// # Panics
/// Panics if `base` and `out` have different lengths.
pub fn fill_offset_blocks<D: ContinuousDistribution>(
    dist: &D,
    run_seed: u64,
    first_block: u64,
    base: &[f64],
    out: &mut [f64],
) {
    // lint:allow(panic-freedom): documented panic — callers size both buffers before the call
    assert_eq!(base.len(), out.len(), "offset/output length mismatch");
    for (i, (b, o)) in base
        .chunks(BLOCK_LEN)
        .zip(out.chunks_mut(BLOCK_LEN))
        .enumerate()
    {
        let mut rng = derive_fast_stream(run_seed, first_block + i as u64);
        dist.fill_into_offset(&mut rng, b, o);
    }
}

/// Parallel twin of [`fill_offset_blocks`]: the same per-block streams,
/// filled by up to `threads` scoped threads over disjoint slabs.
/// Bit-identical to the sequential engine for any `threads`.
///
/// # Panics
/// Panics if `base` and `out` have different lengths.
pub fn par_fill_offset_blocks<D: ContinuousDistribution + Sync>(
    dist: &D,
    run_seed: u64,
    first_block: u64,
    threads: usize,
    base: &[f64],
    out: &mut [f64],
) {
    // lint:allow(panic-freedom): documented panic — callers size both buffers before the call
    assert_eq!(base.len(), out.len(), "offset/output length mismatch");
    if threads <= 1 || out.len() <= BLOCK_LEN {
        fill_offset_blocks(dist, run_seed, first_block, base, out);
        return;
    }
    for_each_block_sharded(threads, base, out, |blk, b, o| {
        let mut rng = derive_fast_stream(run_seed, first_block + blk);
        dist.fill_into_offset(&mut rng, b, o);
    });
}

/// Sequential reference engine for a blocked discrete fill — the
/// [`DiscreteDistribution::fill_values_into_offset`] analogue of
/// [`fill_offset_blocks`], same block-to-stream mapping.
///
/// # Panics
/// Panics if `base` and `out` have different lengths.
pub fn fill_values_offset_blocks<D: DiscreteDistribution>(
    dist: &D,
    run_seed: u64,
    first_block: u64,
    base: &[f64],
    out: &mut [f64],
) {
    // lint:allow(panic-freedom): documented panic — callers size both buffers before the call
    assert_eq!(base.len(), out.len(), "offset/output length mismatch");
    for (i, (b, o)) in base
        .chunks(BLOCK_LEN)
        .zip(out.chunks_mut(BLOCK_LEN))
        .enumerate()
    {
        let mut rng = derive_fast_stream(run_seed, first_block + i as u64);
        dist.fill_values_into_offset(&mut rng, b, o);
    }
}

/// Parallel twin of [`fill_values_offset_blocks`]; bit-identical to it for
/// any `threads`.
///
/// # Panics
/// Panics if `base` and `out` have different lengths.
pub fn par_fill_values_offset_blocks<D: DiscreteDistribution + Sync>(
    dist: &D,
    run_seed: u64,
    first_block: u64,
    threads: usize,
    base: &[f64],
    out: &mut [f64],
) {
    // lint:allow(panic-freedom): documented panic — callers size both buffers before the call
    assert_eq!(base.len(), out.len(), "offset/output length mismatch");
    if threads <= 1 || out.len() <= BLOCK_LEN {
        fill_values_offset_blocks(dist, run_seed, first_block, base, out);
        return;
    }
    for_each_block_sharded(threads, base, out, |blk, b, o| {
        let mut rng = derive_fast_stream(run_seed, first_block + blk);
        dist.fill_values_into_offset(&mut rng, b, o);
    });
}

/// One unit of a sharded fill: the block index *relative to the start of
/// the fill*, its offset slab, and its output slab.
type BlockShard<'a> = (u64, &'a [f64], &'a mut [f64]);

/// Shards the `(base, out)` block pairs round-robin over `threads` scoped
/// threads and runs `fill` on each pair. `fill` receives the block index
/// *relative to the start of this fill*.
fn for_each_block_sharded<F>(threads: usize, base: &[f64], out: &mut [f64], fill: F)
where
    F: Fn(u64, &[f64], &mut [f64]) + Sync,
{
    std::thread::scope(|scope| {
        let mut shards: Vec<Vec<BlockShard<'_>>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, (b, o)) in base
            .chunks(BLOCK_LEN)
            .zip(out.chunks_mut(BLOCK_LEN))
            .enumerate()
        {
            shards[i % threads].push((i as u64, b, o));
        }
        for shard in shards {
            let fill = &fill;
            scope.spawn(move || {
                for (blk, b, o) in shard {
                    fill(blk, b, o);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiscreteLaplace, Gumbel, Laplace};

    fn base_vec(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i % 97) as f64 - 11.0).collect()
    }

    #[test]
    fn par_matches_seq_bitwise_across_thread_counts_and_boundaries() {
        let lap = Laplace::new(1.7).unwrap();
        for n in [
            0,
            1,
            100,
            BLOCK_LEN - 1,
            BLOCK_LEN,
            BLOCK_LEN + 1,
            3 * BLOCK_LEN + 17,
        ] {
            let base = base_vec(n);
            let mut seq = vec![0.0; n];
            fill_offset_blocks(&lap, 99, 5, &base, &mut seq);
            for threads in [1, 2, 3, 4] {
                let mut par = vec![f64::NAN; n];
                par_fill_offset_blocks(&lap, 99, 5, threads, &base, &mut par);
                assert!(
                    seq.iter()
                        .zip(&par)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "n = {n}, threads = {threads} diverged"
                );
            }
        }
    }

    #[test]
    fn discrete_par_matches_seq_bitwise() {
        let dl = DiscreteLaplace::new(0.2, 1.0).unwrap();
        for n in [1, BLOCK_LEN, 2 * BLOCK_LEN + 5] {
            let base: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
            let mut seq = vec![0.0; n];
            fill_values_offset_blocks(&dl, 7, 0, &base, &mut seq);
            for threads in [2, 4] {
                let mut par = vec![f64::NAN; n];
                par_fill_values_offset_blocks(&dl, 7, 0, threads, &base, &mut par);
                assert!(
                    seq.iter()
                        .zip(&par)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "n = {n}, threads = {threads} diverged"
                );
            }
        }
    }

    #[test]
    fn block_values_depend_only_on_run_seed_and_absolute_block_index() {
        // Filling [0, 2B) as one call equals filling [0, B) and [B, 2B)
        // as two calls with consecutive first_block values.
        let gum = Gumbel::new(1.0).unwrap();
        let n = 2 * BLOCK_LEN;
        let base = base_vec(n);
        let mut whole = vec![0.0; n];
        fill_offset_blocks(&gum, 3, 10, &base, &mut whole);
        let mut halves = vec![0.0; n];
        fill_offset_blocks(&gum, 3, 10, &base[..BLOCK_LEN], &mut halves[..BLOCK_LEN]);
        fill_offset_blocks(&gum, 3, 11, &base[BLOCK_LEN..], &mut halves[BLOCK_LEN..]);
        assert_eq!(whole, halves);
        // …and a different run seed or block offset moves every value.
        let mut other = vec![0.0; n];
        fill_offset_blocks(&gum, 4, 10, &base, &mut other);
        assert_ne!(whole, other);
        fill_offset_blocks(&gum, 3, 12, &base, &mut other);
        assert_ne!(whole, other);
    }

    #[test]
    fn blocks_for_counts_partial_blocks() {
        assert_eq!(blocks_for(0), 0);
        assert_eq!(blocks_for(1), 1);
        assert_eq!(blocks_for(BLOCK_LEN), 1);
        assert_eq!(blocks_for(BLOCK_LEN + 1), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let lap = Laplace::new(1.0).unwrap();
        let mut out = vec![0.0; 3];
        par_fill_offset_blocks(&lap, 0, 0, 2, &[1.0, 2.0], &mut out);
    }
}
