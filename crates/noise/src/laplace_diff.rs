//! Distribution of the difference of two independent zero-mean Laplace
//! variables — the paper's Lemma 5.
//!
//! In (Adaptive-)Sparse-Vector-with-Gap the released gap for query `qᵢ` is
//! `qᵢ(D) + ηᵢ - T - η`, so its randomness is `ηᵢ - η` with
//! `ηᵢ ~ Lap(1/ε*)` (query noise; `ε*` is `ε₁` or `ε₂` depending on branch)
//! and `η ~ Lap(1/ε₀)` (threshold noise). Lemma 5 gives the closed-form lower
//! tail
//!
//! ```text
//! P(ηᵢ - η ≥ -t) = 1 - (ε₀²e^{-ε*t} - ε*²e^{-ε₀t}) / (2(ε₀² - ε*²))   ε₀ ≠ ε*
//! P(ηᵢ - η ≥ -t) = 1 - ((2 + ε₀t)/4)·e^{-ε₀t}                         ε₀ = ε*
//! ```
//!
//! from which §6.2 derives the free lower-confidence interval: with
//! probability `c`, the true answer is at least `(gap + T) - t_c` where
//! `t_c` solves `P(ηᵢ - η ≥ -t_c) = c` ([`LaplaceDiff::confidence_offset`]).

use crate::error::{require_open_unit, require_positive, NoiseError};
use crate::laplace::Laplace;
use crate::traits::ContinuousDistribution;
use rand::Rng;

/// Relative difference under which the two rates are treated as equal to
/// avoid catastrophic cancellation in the `ε₀ ≠ ε*` closed forms.
const EQUAL_RATE_REL_TOL: f64 = 1e-9;

/// Distribution of `X = η_query - η_threshold` with `η_query ~ Lap(1/rate_query)`
/// and `η_threshold ~ Lap(1/rate_threshold)`, independent.
///
/// The distribution is symmetric about zero with variance
/// `2/rate_query² + 2/rate_threshold²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceDiff {
    /// `ε*` in the paper: the rate (inverse scale) of the query noise.
    rate_query: f64,
    /// `ε₀` in the paper: the rate (inverse scale) of the threshold noise.
    rate_threshold: f64,
    /// `Lap(1/ε*)`, constructed once at validation time so sampling is
    /// panic-free.
    lap_query: Laplace,
    /// `Lap(1/ε₀)`, constructed once at validation time.
    lap_threshold: Laplace,
}

impl LaplaceDiff {
    /// Creates the difference distribution from the two rates
    /// (`rate = 1/scale`; the paper's `ε*` and `ε₀`).
    pub fn new(rate_query: f64, rate_threshold: f64) -> Result<Self, NoiseError> {
        let rate_query = require_positive("rate_query", rate_query)?;
        let rate_threshold = require_positive("rate_threshold", rate_threshold)?;
        Ok(Self {
            rate_query,
            rate_threshold,
            lap_query: Laplace::new(1.0 / rate_query)?,
            lap_threshold: Laplace::new(1.0 / rate_threshold)?,
        })
    }

    /// Query-noise rate `ε*`.
    pub fn rate_query(&self) -> f64 {
        self.rate_query
    }

    /// Threshold-noise rate `ε₀`.
    pub fn rate_threshold(&self) -> f64 {
        self.rate_threshold
    }

    fn rates_effectively_equal(&self) -> bool {
        let m = self.rate_query.max(self.rate_threshold);
        (self.rate_query - self.rate_threshold).abs() <= EQUAL_RATE_REL_TOL * m
    }

    /// Lemma 5: the lower-tail mass `g(t) = P(X < -t)` for `t >= 0`.
    ///
    /// `P(X ≥ -t) = 1 - g(t)`; see [`lower_tail`](Self::lower_tail).
    pub fn tail_mass(&self, t: f64) -> f64 {
        debug_assert!(t >= 0.0);
        let e0 = self.rate_threshold;
        let es = self.rate_query;
        if self.rates_effectively_equal() {
            ((2.0 + e0 * t) / 4.0) * (-e0 * t).exp()
        } else {
            (e0 * e0 * (-es * t).exp() - es * es * (-e0 * t).exp()) / (2.0 * (e0 * e0 - es * es))
        }
    }

    /// Lemma 5 exactly as stated: `P(X ≥ -t)` for `t >= 0`.
    pub fn lower_tail(&self, t: f64) -> f64 {
        1.0 - self.tail_mass(t)
    }

    /// Solves `P(X ≥ -t) = confidence` for `t` (the §6.2 interval half-width).
    ///
    /// For `confidence >= 0.5` the returned `t` is non-negative; for smaller
    /// confidences it is negative (the bound moves above the point estimate).
    /// The §6.2 usage is: with probability `confidence`, the true query answer
    /// is at least `(gap + T) - t`.
    pub fn confidence_offset(&self, confidence: f64) -> Result<f64, NoiseError> {
        let c = require_open_unit("confidence", confidence)?;
        // P(X >= -t) = 1 - F(-t)  =>  F(-t) = 1 - c  =>  t = -quantile(1 - c).
        Ok(-self.quantile(1.0 - c)?)
    }
}

impl ContinuousDistribution for LaplaceDiff {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Direct simulation keeps the sampler trivially correct; the two
        // Laplace components were constructed at validation time.
        self.lap_query.sample(rng) - self.lap_threshold.sample(rng)
    }

    fn pdf(&self, x: f64) -> f64 {
        let e0 = self.rate_threshold;
        let es = self.rate_query;
        let z = x.abs();
        if self.rates_effectively_equal() {
            (e0 / 4.0 + e0 * e0 * z / 4.0) * (-e0 * z).exp()
        } else {
            e0 * es * (e0 * (-es * z).exp() - es * (-e0 * z).exp()) / (2.0 * (e0 * e0 - es * es))
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= 0.0 {
            // P(X <= x) = P(X >= -x) by symmetry.
            self.lower_tail(x)
        } else {
            self.tail_mass(-x)
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, NoiseError> {
        let p = require_open_unit("p", p)?;
        if p == 0.5 {
            return Ok(0.0);
        }
        // Symmetric: solve on the right half and mirror.
        if p < 0.5 {
            return Ok(-self.quantile(1.0 - p)?);
        }
        let mut hi = 1.0 / self.rate_query + 1.0 / self.rate_threshold;
        let mut guard = 0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            guard += 1;
            if guard > 300 {
                return Err(NoiseError::NoConvergence {
                    what: "laplace-diff quantile",
                });
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    fn mean(&self) -> f64 {
        0.0
    }

    fn variance(&self) -> f64 {
        2.0 / (self.rate_query * self.rate_query)
            + 2.0 / (self.rate_threshold * self.rate_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::stats::{ks_statistic, RunningMoments};
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_rates() {
        assert!(LaplaceDiff::new(0.0, 1.0).is_err());
        assert!(LaplaceDiff::new(1.0, -2.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one_both_branches() {
        for d in [
            LaplaceDiff::new(1.0, 1.0).unwrap(),
            LaplaceDiff::new(2.0, 0.5).unwrap(),
        ] {
            let (a, b, n) = (-80.0, 80.0, 800_000);
            let h = (b - a) / n as f64;
            let mut area = 0.0;
            for i in 0..n {
                let x0 = a + i as f64 * h;
                area += 0.5 * h * (d.pdf(x0) + d.pdf(x0 + h));
            }
            assert!((area - 1.0).abs() < 1e-6, "area = {area}");
        }
    }

    #[test]
    fn cdf_matches_numeric_integral() {
        let d = LaplaceDiff::new(1.5, 0.7).unwrap();
        for x in [-4.0, -1.0, 0.0, 0.5, 2.0, 6.0] {
            let (a, n) = (-120.0, 600_000);
            let h = (x - a) / n as f64;
            let mut area = 0.0;
            for i in 0..n {
                let x0 = a + i as f64 * h;
                area += 0.5 * h * (d.pdf(x0) + d.pdf(x0 + h));
            }
            assert!(
                (area - d.cdf(x)).abs() < 1e-6,
                "x = {x}: {area} vs {}",
                d.cdf(x)
            );
        }
    }

    #[test]
    fn lemma5_at_zero_is_half() {
        for d in [
            LaplaceDiff::new(1.0, 1.0).unwrap(),
            LaplaceDiff::new(3.0, 0.2).unwrap(),
        ] {
            assert!((d.lower_tail(0.0) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_rate_branch_is_continuous_limit() {
        // The ε₀ ≠ ε* formula evaluated at nearly-equal rates must agree with
        // the equal-rate branch.
        let exact = LaplaceDiff::new(1.0, 1.0).unwrap();
        let near = LaplaceDiff::new(1.0, 1.0 + 1e-5).unwrap();
        for t in [0.0, 0.5, 1.0, 3.0, 7.0] {
            assert!(
                (exact.lower_tail(t) - near.lower_tail(t)).abs() < 1e-4,
                "t = {t}: {} vs {}",
                exact.lower_tail(t),
                near.lower_tail(t)
            );
        }
    }

    #[test]
    fn monte_carlo_matches_lemma5() {
        let d = LaplaceDiff::new(2.0, 0.5).unwrap();
        let mut rng = rng_from_seed(77);
        let n = 200_000;
        for t in [0.0, 1.0, 3.0] {
            let hits = (0..n).filter(|_| d.sample(&mut rng) >= -t).count() as f64;
            let p = d.lower_tail(t);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!(
                (hits / n as f64 - p).abs() < 5.0 * sigma,
                "t = {t}: emp {} vs {p}",
                hits / n as f64
            );
        }
    }

    #[test]
    fn confidence_offset_95_covers() {
        // With prob ~0.95 the noise X satisfies X >= -t95.
        let d = LaplaceDiff::new(1.0, 4.0).unwrap();
        let t95 = d.confidence_offset(0.95).unwrap();
        assert!(t95 > 0.0);
        let mut rng = rng_from_seed(123);
        let n = 200_000;
        let cover = (0..n).filter(|_| d.sample(&mut rng) >= -t95).count() as f64 / n as f64;
        assert!((cover - 0.95).abs() < 0.005, "coverage = {cover}");
    }

    #[test]
    fn confidence_offset_below_half_is_negative() {
        let d = LaplaceDiff::new(1.0, 1.0).unwrap();
        assert!(d.confidence_offset(0.25).unwrap() < 0.0);
        assert!((d.confidence_offset(0.5).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn variance_is_sum_of_parts() {
        let d = LaplaceDiff::new(2.0, 0.5).unwrap();
        assert!((d.variance() - (2.0 / 4.0 + 2.0 / 0.25)).abs() < 1e-12);
        let mut rng = rng_from_seed(4);
        let mut m = RunningMoments::new();
        for _ in 0..300_000 {
            m.push(d.sample(&mut rng));
        }
        assert!((m.variance() - d.variance()).abs() / d.variance() < 0.03);
    }

    #[test]
    fn sampler_ks() {
        let d = LaplaceDiff::new(1.0, 1.0).unwrap();
        let xs = d.sample_n(&mut rng_from_seed(15), 50_000);
        let ks = ks_statistic(&xs, |x| d.cdf(x));
        assert!(ks < 0.009, "KS = {ks}");
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(p in 0.01f64..0.99,
                                rq in 0.1f64..5.0, rt in 0.1f64..5.0) {
            let d = LaplaceDiff::new(rq, rt).unwrap();
            let x = d.quantile(p).unwrap();
            prop_assert!((d.cdf(x) - p).abs() < 1e-7);
        }

        #[test]
        fn tail_mass_decreasing(rq in 0.1f64..5.0, rt in 0.1f64..5.0, t in 0.0f64..20.0) {
            let d = LaplaceDiff::new(rq, rt).unwrap();
            prop_assert!(d.tail_mass(t) >= d.tail_mass(t + 0.5) - 1e-12);
        }

        #[test]
        fn cdf_symmetry(rq in 0.1f64..5.0, rt in 0.1f64..5.0, x in 0.0f64..20.0) {
            let d = LaplaceDiff::new(rq, rt).unwrap();
            prop_assert!((d.cdf(-x) - (1.0 - d.cdf(x))).abs() < 1e-10);
        }
    }
}
