//! One-sided geometric distribution on `{0, 1, 2, …}`.
//!
//! `P(G = g) = (1 - α) α^g` with `α = e^{-εγ}` in mechanism use. This is both
//! the Ghosh-Roughgarden-Sundararajan geometric mechanism's building block and
//! the magnitude sampler for [`crate::DiscreteLaplace`] (a difference of two
//! i.i.d. geometrics) and [`crate::Staircase`] (the layer index).

use crate::error::{require_open_unit, NoiseError};
use rand::Rng;

/// Geometric distribution on non-negative integers with success ratio `α`:
/// `P(G = g) = (1 - α) αᵍ`, `α ∈ (0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    alpha: f64,
    /// Reciprocal of `ln(α)`, precomputed so the per-draw CDF inversion is
    /// a multiply instead of a divide (the sampler is on the discrete
    /// mechanisms' hot path; every caller — sequential or batched — goes
    /// through the same reciprocal, so the streams stay bit-identical
    /// across execution paths).
    inv_ln_alpha: f64,
}

impl Geometric {
    /// Creates the distribution from the decay ratio `α ∈ (0, 1)`.
    pub fn new(alpha: f64) -> Result<Self, NoiseError> {
        let alpha = require_open_unit("alpha", alpha)?;
        Ok(Self {
            alpha,
            inv_ln_alpha: alpha.ln().recip(),
        })
    }

    /// Creates the decay used by an ε-DP integer mechanism with step `γ`:
    /// `α = exp(-ε γ)`.
    pub fn for_budget(epsilon: f64, gamma: f64) -> Result<Self, NoiseError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(NoiseError::InvalidScale {
                name: "epsilon",
                value: epsilon,
            });
        }
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(NoiseError::InvalidScale {
                name: "gamma",
                value: gamma,
            });
        }
        Self::new((-epsilon * gamma).exp())
    }

    /// The decay ratio `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The precomputed `1 / ln(α)` (for sibling samplers that invert a
    /// geometric tail with the same hoisted reciprocal).
    pub(crate) fn inv_ln_alpha(&self) -> f64 {
        self.inv_ln_alpha
    }

    /// Probability mass `P(G = g)`.
    pub fn pmf(&self, g: u64) -> f64 {
        (1.0 - self.alpha) * self.alpha.powi(g.min(i32::MAX as u64) as i32)
    }

    /// Cumulative distribution `P(G <= g) = 1 - α^{g+1}`.
    pub fn cdf(&self, g: u64) -> f64 {
        1.0 - self.alpha.powf(g as f64 + 1.0)
    }

    /// Mean `α / (1 - α)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (1.0 - self.alpha)
    }

    /// Second moment `E[G²] = α(1 + α)/(1 - α)²`.
    pub fn second_moment(&self) -> f64 {
        self.alpha * (1.0 + self.alpha) / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// Variance `α / (1 - α)²`.
    pub fn variance(&self) -> f64 {
        self.alpha / ((1.0 - self.alpha) * (1.0 - self.alpha))
    }

    /// Samples by inverting the CDF: `g = floor(ln(1-u) / ln(α))` — one
    /// uniform draw through [`index_from_uniform`](Self::index_from_uniform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.index_from_uniform(rng.gen())
    }

    /// The CDF inversion as a pure transform of one uniform `u ∈ [0, 1)`:
    /// `sample(rng) == index_from_uniform(rng.gen())`, bit for bit. This is
    /// the hook the raw-uniform buffering paths
    /// ([`crate::BlockBuffer`]) use to serve geometric-tail draws from
    /// block-filled uniforms.
    #[inline]
    pub fn index_from_uniform(&self, u: f64) -> u64 {
        // 1-u in (0, 1]; ln(1-u) in (-inf, 0]; product of negatives >= 0.
        let g = ((1.0 - u).max(f64::MIN_POSITIVE).ln() * self.inv_ln_alpha).floor();
        // Guard against pathological rounding for alpha very close to 1.
        if g.is_finite() && g >= 0.0 {
            g as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::stats::RunningMoments;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_alpha() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.0).is_err());
        assert!(Geometric::new(-0.5).is_err());
    }

    #[test]
    fn for_budget_decay() {
        let g = Geometric::for_budget(1.0, 1.0).unwrap();
        assert!((g.alpha() - (-1.0f64).exp()).abs() < 1e-15);
        assert!(Geometric::for_budget(0.0, 1.0).is_err());
        assert!(Geometric::for_budget(1.0, -1.0).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let g = Geometric::new(0.6).unwrap();
        let total: f64 = (0..200).map(|k| g.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let g = Geometric::new(0.35).unwrap();
        let mut acc = 0.0;
        for k in 0..50u64 {
            acc += g.pmf(k);
            assert!((acc - g.cdf(k)).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn closed_form_moments_match_series() {
        let g = Geometric::new(0.45).unwrap();
        let mean: f64 = (0..500).map(|k| k as f64 * g.pmf(k)).sum();
        let m2: f64 = (0..500).map(|k| (k * k) as f64 * g.pmf(k)).sum();
        assert!((mean - g.mean()).abs() < 1e-10);
        assert!((m2 - g.second_moment()).abs() < 1e-10);
        assert!((g.variance() - (g.second_moment() - g.mean() * g.mean())).abs() < 1e-12);
    }

    #[test]
    fn sample_moments() {
        let g = Geometric::new(0.7).unwrap();
        let mut rng = rng_from_seed(21);
        let mut m = RunningMoments::new();
        for _ in 0..200_000 {
            m.push(g.sample(&mut rng) as f64);
        }
        assert!(
            (m.mean() - g.mean()).abs() / g.mean() < 0.02,
            "mean = {}",
            m.mean()
        );
        assert!((m.variance() - g.variance()).abs() / g.variance() < 0.05);
    }

    proptest! {
        #[test]
        fn sample_matches_cdf_at_zero(alpha in 0.05f64..0.95, seed in 0u64..200) {
            // P(G = 0) = 1 - alpha; check empirical frequency within 5 sigma.
            let g = Geometric::new(alpha).unwrap();
            let mut rng = rng_from_seed(seed);
            let n = 20_000;
            let zeros = (0..n).filter(|_| g.sample(&mut rng) == 0).count() as f64;
            let p = 1.0 - alpha;
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            prop_assert!((zeros / n as f64 - p).abs() < 5.0 * sigma + 1e-9);
        }
    }
}
