//! Discrete (two-sided geometric) Laplace over multiples of a base `γ`.
//!
//! Appendix A.1 of the paper analyses a discretized Laplace whose support is
//! `{0, ±γ, ±2γ, …}` with mass
//!
//! ```text
//! f(kγ; ε) = (1 - e^{-εγ}) / (1 + e^{-εγ}) · e^{-εγ|k|}
//! ```
//!
//! This is the distribution a finite-precision implementation actually adds
//! (the paper expects `γ` near machine epsilon, `≈ 2^{-52}`), and it is the
//! input to the tie-probability bound in [`crate::tie`].
//!
//! Distributionally this is the classic decomposition `K = G₁ - G₂` with
//! `G₁, G₂` i.i.d. [`crate::Geometric`] with ratio `α = e^{-εγ}` (which is
//! where the moments below come from). *Sampling*, however, inverts the
//! closed-form CDF directly — one uniform and one `ln` per draw, half the
//! generator and transcendental cost of drawing the two geometric tails
//! separately. The inversion is exact (each uniform interval
//! `[F(k-1), F(k))` maps to `k`), and the statistical acceptance suite
//! (`crates/noise/tests/discrete_stats.rs`) holds it to the closed-form pmf
//! by chi-square at significance 1e-4.

use crate::error::NoiseError;
use crate::geometric::Geometric;
use crate::traits::DiscreteDistribution;
use rand::Rng;

/// Discrete Laplace distribution over `{kγ : k ∈ ℤ}` with decay `α = e^{-εγ}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteLaplace {
    geometric: Geometric,
    base: f64,
    /// Hoisted `1 + α` (the CDF normalization).
    one_plus_alpha: f64,
    /// `F(-1) = α/(1+α)`, the negative-branch threshold of the inversion.
    neg_cdf: f64,
}

impl DiscreteLaplace {
    /// Creates a discrete Laplace with privacy parameter `epsilon` (per unit
    /// of value) and support step `gamma`.
    ///
    /// The continuous analogue is `Lap(1/ε)`; as `γ → 0` this distribution
    /// converges to it.
    pub fn new(epsilon: f64, gamma: f64) -> Result<Self, NoiseError> {
        Ok(Self::from_geometric(
            Geometric::for_budget(epsilon, gamma)?,
            gamma,
        ))
    }

    /// Creates the distribution directly from the decay ratio `α ∈ (0,1)` and
    /// the support step.
    pub fn from_alpha(alpha: f64, gamma: f64) -> Result<Self, NoiseError> {
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(NoiseError::InvalidScale {
                name: "gamma",
                value: gamma,
            });
        }
        Ok(Self::from_geometric(Geometric::new(alpha)?, gamma))
    }

    fn from_geometric(geometric: Geometric, gamma: f64) -> Self {
        let alpha = geometric.alpha();
        Self {
            geometric,
            base: gamma,
            one_plus_alpha: 1.0 + alpha,
            neg_cdf: alpha / (1.0 + alpha),
        }
    }

    /// The decay ratio `α = e^{-εγ}`.
    pub fn alpha(&self) -> f64 {
        self.geometric.alpha()
    }

    /// Normalization constant `(1 - α) / (1 + α)` (the mass at zero).
    pub fn mass_at_zero(&self) -> f64 {
        (1.0 - self.alpha()) / (1.0 + self.alpha())
    }

    /// The closed-form CDF inversion as a pure transform of one uniform
    /// `u ∈ [0, 1)`: `sample_index(rng)` equals
    /// `index_from_uniform(rng.gen())`, bit for bit. This is the hook the
    /// raw-uniform buffering paths ([`crate::BlockBuffer`]) use to serve
    /// discrete draws from block-filled uniforms at any `(ε, γ)` requested
    /// at serve time.
    ///
    /// The inversion returns the smallest `k` with `F(k) ≥ u`, so each
    /// interval `[F(k-1), F(k))` (of mass exactly `pmf(k)`) maps to `k`:
    /// `u ≥ F(-1)` solves `1 - α^{k+1}/(1+α) ≥ u` over `k ≥ 0`, the
    /// negative tail solves `α^{-k}/(1+α) ≥ u`.
    #[inline]
    pub fn index_from_uniform(&self, u: f64) -> i64 {
        let inv_ln_alpha = self.geometric.inv_ln_alpha();
        if u >= self.neg_cdf {
            // α^{k+1} ≤ (1-u)(1+α)  ⟺  k ≥ ln((1-u)(1+α))/ln(α) - 1.
            let l = ((1.0 - u) * self.one_plus_alpha)
                .max(f64::MIN_POSITIVE)
                .ln()
                * inv_ln_alpha;
            let k = l.ceil() - 1.0;
            // Clamp boundary rounding (and non-finite pathologies) into the
            // branch's support, mirroring the geometric sampler's guard.
            if k.is_finite() && k > 0.0 {
                k as i64
            } else {
                0
            }
        } else {
            // α^{-k} ≥ u(1+α)  ⟺  k ≥ -ln(u(1+α))/ln(α).
            let l = (u * self.one_plus_alpha).max(f64::MIN_POSITIVE).ln() * inv_ln_alpha;
            let k = (-l).ceil();
            if k.is_finite() && k < -1.0 {
                k as i64
            } else {
                -1
            }
        }
    }

    /// Value twin of [`index_from_uniform`](Self::index_from_uniform):
    /// `k * γ` for the sampled index `k`.
    #[inline]
    pub fn value_from_uniform(&self, u: f64) -> f64 {
        self.index_from_uniform(u) as f64 * self.base
    }
}

impl DiscreteDistribution for DiscreteLaplace {
    fn base(&self) -> f64 {
        self.base
    }

    /// One uniform draw through
    /// [`index_from_uniform`](DiscreteLaplace::index_from_uniform) — the
    /// arithmetic exists exactly once, so the raw-uniform buffering paths
    /// are bit-identical by construction.
    fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        self.index_from_uniform(rng.gen())
    }

    fn pmf(&self, k: i64) -> f64 {
        let a = self.alpha();
        self.mass_at_zero() * a.powf(k.unsigned_abs() as f64)
    }

    /// Closed-form CDF:
    /// `F(k) = 1 - α^{k+1}/(1+α)` for `k >= 0`; `F(k) = α^{-k}/(1+α)` for `k < 0`.
    fn cdf(&self, k: i64) -> f64 {
        let a = self.alpha();
        if k >= 0 {
            1.0 - a.powf(k as f64 + 1.0) / (1.0 + a)
        } else {
            a.powf(-k as f64) / (1.0 + a)
        }
    }

    fn mean_index(&self) -> f64 {
        0.0
    }

    /// Chunked batch sampling: uniforms are pulled from the RNG in one
    /// tight loop per chunk and transformed in a second (the generator's
    /// block refills and the scalar `ln` calls pipeline better apart than
    /// interleaved). Consumption order is unchanged — one uniform per
    /// value, in value order — so the output is bit-identical to a
    /// [`sample_value`](DiscreteDistribution::sample_value) loop on the
    /// same RNG stream.
    fn fill_values_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        const CHUNK: usize = 512;
        let mut uniforms = [0.0f64; CHUNK];
        let mut start = 0;
        while start < out.len() {
            let n = CHUNK.min(out.len() - start);
            for slot in &mut uniforms[..n] {
                *slot = rng.gen();
            }
            for (slot, &u) in out[start..start + n].iter_mut().zip(&uniforms[..n]) {
                *slot = self.value_from_uniform(u);
            }
            start += n;
        }
    }

    /// Fused offset twin of [`fill_values_into`](Self::fill_values_into)
    /// (`out[i] = base[i] + draw`), same chunked layout and the same
    /// bit-identity contract.
    fn fill_values_into_offset<R: Rng + ?Sized>(&self, rng: &mut R, base: &[f64], out: &mut [f64]) {
        // lint:allow(panic-freedom): documented panic — the mechanism core sizes both buffers before the call
        assert_eq!(base.len(), out.len(), "offset/output length mismatch");
        const CHUNK: usize = 512;
        let mut uniforms = [0.0f64; CHUNK];
        let mut start = 0;
        while start < out.len() {
            let n = CHUNK.min(out.len() - start);
            for slot in &mut uniforms[..n] {
                *slot = rng.gen();
            }
            for ((slot, b), &u) in out[start..start + n]
                .iter_mut()
                .zip(&base[start..start + n])
                .zip(&uniforms[..n])
            {
                *slot = b + self.value_from_uniform(u);
            }
            start += n;
        }
    }

    /// `Var(K) = 2α / (1 - α)²` (difference of two independent geometrics).
    fn variance_index(&self) -> f64 {
        2.0 * self.geometric.variance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::stats::RunningMoments;
    use proptest::prelude::*;

    fn dl(eps: f64, gamma: f64) -> DiscreteLaplace {
        DiscreteLaplace::new(eps, gamma).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(DiscreteLaplace::new(0.0, 1.0).is_err());
        assert!(DiscreteLaplace::new(1.0, 0.0).is_err());
        assert!(DiscreteLaplace::from_alpha(1.0, 1.0).is_err());
        assert!(DiscreteLaplace::from_alpha(0.5, -1.0).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = dl(0.8, 1.0);
        let total: f64 = (-200..=200).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total = {total}");
    }

    #[test]
    fn pmf_symmetric() {
        let d = dl(0.5, 0.25);
        for k in 0..30 {
            assert!((d.pmf(k) - d.pmf(-k)).abs() < 1e-15);
        }
    }

    #[test]
    fn cdf_matches_partial_sums() {
        let d = dl(1.2, 1.0);
        let mut acc = 0.0;
        for k in -40..=40 {
            acc += d.pmf(k);
            assert!(
                (acc - d.cdf(k)).abs() < 1e-12,
                "k = {k}: acc {acc} vs {}",
                d.cdf(k)
            );
        }
    }

    #[test]
    fn cdf_consistent_at_origin() {
        let d = dl(0.9, 1.0);
        assert!((d.cdf(0) - d.cdf(-1) - d.pmf(0)).abs() < 1e-14);
        // Median at 0 for a symmetric distribution: F(-1) + pmf(0)/... = ...
        assert!(d.cdf(-1) < 0.5 && d.cdf(0) > 0.5);
    }

    #[test]
    fn variance_matches_series() {
        let d = dl(0.6, 1.0);
        let var: f64 = (-400i64..=400).map(|k| (k * k) as f64 * d.pmf(k)).sum();
        assert!(
            (var - d.variance_index()).abs() < 1e-9,
            "{var} vs {}",
            d.variance_index()
        );
    }

    #[test]
    fn sampler_matches_pmf() {
        let d = dl(1.0, 1.0);
        let mut rng = rng_from_seed(33);
        let n = 300_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(d.sample_index(&mut rng)).or_insert(0usize) += 1;
        }
        for k in -3..=3 {
            let emp = *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
            let p = d.pmf(k);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!(
                (emp - p).abs() < 5.0 * sigma,
                "k = {k}: emp {emp} vs pmf {p}"
            );
        }
    }

    #[test]
    fn sample_value_scales_by_base() {
        let d = dl(1.0, 0.5);
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            let v = d.sample_value(&mut rng);
            let k = (v / 0.5).round();
            assert!((v - k * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_to_continuous_laplace_variance() {
        // With eps=1 and gamma small, Var(value) -> 2 (the Lap(1) variance).
        let d = dl(1.0, 1e-3);
        assert!(
            (d.variance_value() - 2.0).abs() < 1e-2,
            "{}",
            d.variance_value()
        );
    }

    #[test]
    fn sample_mean_near_zero() {
        let d = dl(0.7, 1.0);
        let mut rng = rng_from_seed(17);
        let mut m = RunningMoments::new();
        for _ in 0..200_000 {
            m.push(d.sample_index(&mut rng) as f64);
        }
        assert!(m.mean().abs() < 0.05, "mean = {}", m.mean());
        let rel = (m.variance() - d.variance_index()).abs() / d.variance_index();
        assert!(rel < 0.05, "rel var err = {rel}");
    }

    proptest! {
        #[test]
        fn cdf_monotone(eps in 0.05f64..3.0, k in -50i64..50) {
            let d = dl(eps, 1.0);
            prop_assert!(d.cdf(k) <= d.cdf(k + 1) + 1e-15);
        }

        #[test]
        fn log_pmf_ratio_bounded_by_eps_gamma(eps in 0.05f64..3.0, k in -30i64..30) {
            // DP property of the discrete mechanism: adjacent outputs differ by
            // one support step, so pmf ratio <= e^{eps*gamma}.
            let d = dl(eps, 1.0);
            let ratio = d.pmf(k) / d.pmf(k + 1);
            prop_assert!(ratio.ln().abs() <= eps * 1.0 + 1e-10);
        }
    }
}
