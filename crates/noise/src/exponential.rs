//! One-sided exponential distribution `Exp(β)`.
//!
//! Used directly as a one-sided noise primitive and internally by the
//! [`crate::Staircase`] sampler (its geometric layer index is a discretized
//! exponential). Density `f(x) = exp(-x/β)/β` on `x >= 0`.

use crate::error::{require_open_unit, require_positive, NoiseError};
use crate::traits::{ContinuousDistribution, SingleUniform};
use rand::Rng;

/// Exponential distribution with scale `β > 0` (rate `1/β`), support `[0, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    scale: f64,
}

impl Exponential {
    /// Creates `Exp(scale)`; `scale` must be finite and positive.
    pub fn new(scale: f64) -> Result<Self, NoiseError> {
        Ok(Self {
            scale: require_positive("scale", scale)?,
        })
    }

    /// The scale parameter `β` (the mean).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Survival function `P(X > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-x / self.scale).exp()
        }
    }
}

impl SingleUniform for Exponential {
    /// Inverse CDF on the survival side, `x = -β·ln(1 - u)`, under the
    /// workspace's endpoint-guard convention (see [`crate::Laplace`]): the
    /// `ln` argument is clamped below by `f64::MIN_POSITIVE`, so the output
    /// is finite for all of `[0, 1]` — for `u ∈ [0, 1)` the argument already
    /// lies in `(0, 1]` and the clamp only protects the out-of-contract
    /// endpoint `u = 1`.
    #[inline]
    fn sample_from_uniform(&self, u: f64) -> f64 {
        -self.scale * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }
}

impl ContinuousDistribution for Exponential {
    /// One uniform draw through the [`SingleUniform`] transform — the
    /// arithmetic exists exactly once, so the raw-uniform tape paths (and
    /// the trait's default batch fills) are bit-identical by construction.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_from_uniform(rng.gen::<f64>())
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            (-x / self.scale).exp() / self.scale
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-x / self.scale).exp()
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, NoiseError> {
        let p = require_open_unit("p", p)?;
        Ok(-self.scale * (1.0 - p).ln())
    }

    fn mean(&self) -> f64 {
        self.scale
    }

    fn variance(&self) -> f64 {
        self.scale * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::stats::{ks_statistic, RunningMoments};
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_scale() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn moments() {
        let e = Exponential::new(2.0).unwrap();
        assert_eq!(e.mean(), 2.0);
        assert_eq!(e.variance(), 4.0);
    }

    #[test]
    fn samples_nonnegative_and_match_moments() {
        let e = Exponential::new(0.7).unwrap();
        let mut rng = rng_from_seed(9);
        let mut m = RunningMoments::new();
        for _ in 0..100_000 {
            let x = e.sample(&mut rng);
            assert!(x >= 0.0);
            m.push(x);
        }
        assert!((m.mean() - 0.7).abs() < 0.01);
        assert!((m.variance() - 0.49).abs() < 0.02);
    }

    #[test]
    fn ks_distance_small() {
        let e = Exponential::new(1.0).unwrap();
        let xs = e.sample_n(&mut rng_from_seed(1), 50_000);
        let d = ks_statistic(&xs, |x| e.cdf(x));
        assert!(d < 0.009, "KS = {d}");
    }

    #[test]
    fn transform_is_finite_and_nonnegative_at_both_endpoints() {
        let e = Exponential::new(3.0).unwrap();
        for u in [
            0.0,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            0.5,
            1.0 - f64::EPSILON / 2.0,
            1.0,
        ] {
            let x = e.sample_from_uniform(u);
            assert!(x.is_finite() && x >= 0.0, "u = {u:e} gave {x}");
        }
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(p in 1e-6f64..1.0-1e-6, scale in 0.01f64..50.0) {
            let e = Exponential::new(scale).unwrap();
            let x = e.quantile(p).unwrap();
            prop_assert!((e.cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn transform_never_returns_non_finite(u in 0.0f64..1.0, scale in 0.01f64..100.0) {
            let e = Exponential::new(scale).unwrap();
            let x = e.sample_from_uniform(u);
            prop_assert!(x.is_finite() && x >= 0.0, "u = {u} gave {x}");
        }

        #[test]
        fn sample_matches_transform_bitwise(seed in 0u64..10_000, scale in 0.01f64..50.0) {
            let e = Exponential::new(scale).unwrap();
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            for _ in 0..32 {
                use rand::Rng;
                let direct = e.sample(&mut a);
                let via_u = e.sample_from_uniform(b.gen::<f64>());
                prop_assert!(direct.to_bits() == via_u.to_bits());
            }
        }

        #[test]
        fn sf_complements_cdf(x in -5.0f64..100.0, scale in 0.1f64..10.0) {
            let e = Exponential::new(scale).unwrap();
            prop_assert!((e.sf(x) + e.cdf(x) - 1.0).abs() < 1e-12);
        }
    }
}
