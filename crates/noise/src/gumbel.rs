//! Standard Gumbel distribution — the sampling engine behind the
//! exponential mechanism (the Gumbel-max trick: `argmaxᵢ(sᵢ + Gᵢ)` is a
//! softmax sample of the scores `sᵢ`).
//!
//! Density `f(x) = e^{-(x + e^{-x})}`, CDF `F(x) = e^{-e^{-x}}`,
//! mean `γ_EM` (Euler–Mascheroni), variance `π²/6`.

use crate::error::{require_open_unit, require_positive, NoiseError};
use crate::traits::{ContinuousDistribution, SingleUniform};
use rand::Rng;

/// Euler–Mascheroni constant (mean of the standard Gumbel).
pub const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;

/// Gumbel distribution with location 0 and scale `β`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    scale: f64,
}

impl Gumbel {
    /// Creates a Gumbel with the given scale (`β = 1` is the standard form).
    pub fn new(scale: f64) -> Result<Self, NoiseError> {
        Ok(Self {
            scale: require_positive("scale", scale)?,
        })
    }

    /// The standard Gumbel (`β = 1`).
    pub fn standard() -> Self {
        Self { scale: 1.0 }
    }

    /// The scale parameter `β`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl SingleUniform for Gumbel {
    /// Inverse-CDF transform `x = -β·ln(-ln u)` under the workspace's
    /// endpoint-guard convention (see [`crate::Laplace`]): every `ln`
    /// argument is clamped below by `f64::MIN_POSITIVE`, so the output is
    /// finite for all of `[0, 1]` — `u = 0` maps deep into the left tail
    /// instead of `-∞`, and even the out-of-contract `u = 1` stays finite
    /// rather than overflowing through `ln 0`.
    #[inline]
    fn sample_from_uniform(&self, u: f64) -> f64 {
        let e = -(u.max(f64::MIN_POSITIVE).ln());
        -self.scale * e.max(f64::MIN_POSITIVE).ln()
    }
}

impl ContinuousDistribution for Gumbel {
    /// One uniform draw through the [`SingleUniform`] transform — the
    /// arithmetic exists exactly once, so the raw-uniform tape paths (and
    /// the trait's default batch fills) are bit-identical by construction.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_from_uniform(rng.gen::<f64>())
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = x / self.scale;
        ((-z - (-z).exp()).exp()) / self.scale
    }

    fn cdf(&self, x: f64) -> f64 {
        (-(-x / self.scale).exp()).exp()
    }

    fn quantile(&self, p: f64) -> Result<f64, NoiseError> {
        let p = require_open_unit("p", p)?;
        Ok(-self.scale * (-(p.ln())).ln())
    }

    fn mean(&self) -> f64 {
        EULER_MASCHERONI * self.scale
    }

    /// `Var = π²β²/6`.
    fn variance(&self) -> f64 {
        std::f64::consts::PI * std::f64::consts::PI * self.scale * self.scale / 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::stats::{ks_statistic, RunningMoments};
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_scale() {
        assert!(Gumbel::new(0.0).is_err());
        assert!(Gumbel::new(f64::NAN).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gumbel::standard();
        let (a, b, n) = (-15.0, 40.0, 400_000);
        let h = (b - a) / n as f64;
        let mut area = 0.0;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            area += 0.5 * h * (g.pdf(x0) + g.pdf(x0 + h));
        }
        assert!((area - 1.0).abs() < 1e-6, "area = {area}");
    }

    #[test]
    fn moments_match_samples() {
        let g = Gumbel::new(2.0).unwrap();
        let mut rng = rng_from_seed(1);
        let mut m = RunningMoments::new();
        for _ in 0..200_000 {
            m.push(g.sample(&mut rng));
        }
        assert!((m.mean() - g.mean()).abs() < 0.02, "mean {}", m.mean());
        assert!((m.variance() - g.variance()).abs() / g.variance() < 0.03);
    }

    #[test]
    fn sampler_ks() {
        let g = Gumbel::standard();
        let xs = g.sample_n(&mut rng_from_seed(2), 50_000);
        let d = ks_statistic(&xs, |x| g.cdf(x));
        assert!(d < 0.009, "KS = {d}");
    }

    #[test]
    fn gumbel_max_equals_softmax() {
        // The property the exponential mechanism relies on.
        let scores = [1.0f64, 0.0, -0.5];
        let g = Gumbel::standard();
        let mut rng = rng_from_seed(3);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let winner = (0..3)
                .map(|i| (scores[i] + g.sample(&mut rng), i))
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
                .unwrap()
                .1;
            counts[winner] += 1;
        }
        let z: f64 = scores.iter().map(|s| s.exp()).sum();
        for i in 0..3 {
            let p = scores[i].exp() / z;
            let emp = counts[i] as f64 / n as f64;
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!((emp - p).abs() < 5.0 * sigma, "i={i}: {emp} vs {p}");
        }
    }

    #[test]
    fn transform_is_finite_at_both_endpoints() {
        // The endpoint-guard convention: finite output on the whole closed
        // unit interval, including the out-of-contract u = 1.
        let g = Gumbel::new(2.0).unwrap();
        for u in [
            0.0,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            0.5,
            1.0 - f64::EPSILON / 2.0,
            1.0,
        ] {
            let x = g.sample_from_uniform(u);
            assert!(x.is_finite(), "u = {u:e} gave {x}");
        }
    }

    proptest! {
        #[test]
        fn quantile_inverts_cdf(p in 1e-6f64..1.0-1e-6, scale in 0.1f64..10.0) {
            let g = Gumbel::new(scale).unwrap();
            let x = g.quantile(p).unwrap();
            prop_assert!((g.cdf(x) - p).abs() < 1e-9);
        }

        #[test]
        fn transform_never_returns_non_finite(u in 0.0f64..1.0, scale in 0.01f64..100.0) {
            let g = Gumbel::new(scale).unwrap();
            let x = g.sample_from_uniform(u);
            prop_assert!(x.is_finite(), "u = {u} gave {x}");
        }

        #[test]
        fn sample_matches_transform_bitwise(seed in 0u64..10_000, scale in 0.01f64..50.0) {
            // The SingleUniform law: `sample(rng)` IS the one-uniform
            // transform of `rng.gen()`, same bits.
            let g = Gumbel::new(scale).unwrap();
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            for _ in 0..32 {
                use rand::Rng;
                let direct = g.sample(&mut a);
                let via_u = g.sample_from_uniform(b.gen::<f64>());
                prop_assert!(direct.to_bits() == via_u.to_bits());
            }
        }

        #[test]
        fn unit_gumbel_scales_exactly(seed in 0u64..10_000, scale in 0.01f64..100.0) {
            // The transform is a single `scale × f(u)` product, so serving
            // unit draws and rescaling is bit-identical to sampling at the
            // target scale — the property the scaled tape paths rely on.
            let unit = Gumbel::standard();
            let direct = Gumbel::new(scale).unwrap();
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            for _ in 0..32 {
                prop_assert!(unit.sample(&mut a) * scale == direct.sample(&mut b));
            }
        }
    }
}
