//! # free-gap-noise
//!
//! Noise-distribution substrate for the `free-gap` workspace, which reproduces
//! *"Free Gap Information from the Differentially Private Sparse Vector and
//! Noisy Max Mechanisms"* (Ding, Wang, Zhang, Kifer; VLDB 2019).
//!
//! Every differentially private mechanism in the paper draws additive noise
//! from one of a small family of distributions. This crate implements that
//! family from scratch:
//!
//! * [`Laplace`] — the workhorse continuous distribution (Theorem 1 of the
//!   paper). Sampling, pdf, cdf, quantile, moments.
//! * [`Exponential`] — one-sided building block (also used by [`Staircase`]).
//! * [`DiscreteLaplace`] — the discretized Laplace over multiples of a base
//!   `γ` discussed in the paper's "implementation issues" (§5.1) and
//!   Appendix A.1.
//! * [`Geometric`] — the one-sided geometric distribution on `{0, 1, 2, …}`,
//!   both a mechanism in its own right (Ghosh et al.) and the sampling
//!   primitive behind [`DiscreteLaplace`] and [`Staircase`].
//! * [`Staircase`] — the optimal additive-noise distribution of Geng &
//!   Viswanath, cited by the paper as a drop-in replacement for Laplace.
//! * [`LaplaceDiff`] — the distribution of the difference of two independent
//!   zero-mean Laplace variables (Lemma 5), which drives the free
//!   lower-confidence intervals of §6.2.
//!
//! It also ships the supporting analysis the paper relies on:
//!
//! * [`block`] — the chunked noise-fill discipline ([`BlockBuffer`]): raw
//!   uniforms are pulled in bounded blocks and served as continuous
//!   ([`SingleUniform`]) or discrete-Laplace draws one draw (or one m-tuple)
//!   at a time, preserving the sequential draw order bit-for-bit. This is
//!   the substrate of the scratch and streaming fast paths in
//!   `free-gap-core`, where the stream length is unknown up front.
//! * [`tie`] — the probability-of-tie bounds for discretized noise
//!   (Appendix A.1) that justify treating the continuous analysis as
//!   `(ε, δ)`-DP with negligible `δ`.
//! * [`stats`] — Welford moments, empirical CDFs and Kolmogorov–Smirnov
//!   distances used by the statistical test-suite and the experiment harness.
//!
//! All distributions are deterministic given an [`rand::Rng`]; the workspace
//! convention is a seeded [`rand::rngs::StdRng`] (see [`rng`]).
//!
//! ## Example
//!
//! ```
//! use free_gap_noise::{Laplace, ContinuousDistribution, rng::rng_from_seed};
//!
//! let lap = Laplace::new(2.0).unwrap(); // scale b = 2 (Lap(2k/ε) style)
//! let mut rng = rng_from_seed(7);
//! let x = lap.sample(&mut rng);
//! assert!(lap.pdf(x) > 0.0);
//! assert!((lap.cdf(lap.quantile(0.25).unwrap()) - 0.25).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// R3 (panic-freedom) surfaced in the compiler too: every non-test unwrap/expect
// in the two privacy-critical crates must carry a per-site justification.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod block;
pub mod discrete_laplace;
pub mod error;
pub mod exponential;
pub mod geometric;
pub mod gumbel;
pub mod laplace;
pub mod laplace_diff;
pub mod par;
pub mod rng;
pub mod staircase;
pub mod stats;
pub mod tie;
pub mod traits;

pub use block::BlockBuffer;
pub use discrete_laplace::DiscreteLaplace;
pub use error::NoiseError;
pub use exponential::Exponential;
pub use geometric::Geometric;
pub use gumbel::Gumbel;
pub use laplace::Laplace;
pub use laplace_diff::LaplaceDiff;
pub use staircase::Staircase;
pub use traits::{ContinuousDistribution, DiscreteDistribution, SingleUniform};
