//! Chunked noise-fill over fixed-size blocks: the buffering discipline
//! behind the mechanisms' batched and streaming fast paths.
//!
//! SVT-family mechanisms stop after a *data-dependent* number of draws, and
//! the streaming entry points do not even know the stream length up front —
//! so noise cannot be pre-generated in one run-sized pass. A [`BlockBuffer`]
//! instead pulls draws from the RNG in bounded blocks via
//! [`ContinuousDistribution::fill_into`] and serves them out one draw (or
//! one fixed-arity tuple) at a time.
//!
//! The load-bearing invariant is **draw-order preservation**: however the
//! buffer is refilled, the sequence of draws served is bit-identical to a
//! sequential [`ContinuousDistribution::sample`] loop on the same RNG
//! stream. The buffer may pull *more* from the RNG than it serves (block
//! lookahead), which is why consumers derive a fresh stream per run — see
//! the stream-discipline notes on `free_gap_core::scratch`.
//!
//! Block sizes adapt: the first block of a run is sized by the previous
//! run's consumption (consecutive Monte-Carlo runs of one mechanism consume
//! near-identical draw counts), later blocks taper toward the prediction and
//! are clamped to a cache-friendly maximum, so both short runs (little
//! overdraw) and unboundedly long streams (hot, L1-resident refills) are
//! served well.

use crate::traits::ContinuousDistribution;
use rand::Rng;

/// A reusable buffer of pre-drawn noise, refilled in fixed-size blocks.
///
/// Generic over the distribution at call time (the distribution is passed to
/// each draw/refill method, not stored) so one buffer type serves every
/// noise family; callers must pass the *same* distribution for the lifetime
/// of a run or the served stream is meaningless.
#[derive(Debug, Clone)]
pub struct BlockBuffer {
    buf: Vec<f64>,
    cursor: usize,
    /// Fresh draws pulled from the RNG since the last [`begin`](Self::begin)
    /// (served = `filled - (buf.len() - cursor)`; tracked at refill time so
    /// the per-draw hot path carries no extra bookkeeping).
    filled: usize,
    /// Predicted consumption of the next run (last run's served count).
    predicted: usize,
}

impl BlockBuffer {
    /// Smallest block ever drawn (also the first-ever prediction).
    pub const MIN_CHUNK: usize = 16;
    /// Largest block: 4096 doubles = 32 KiB, comfortably L1-resident, so
    /// long runs stream through a hot buffer instead of round-tripping one
    /// run-sized buffer through DRAM.
    pub const CACHE_CHUNK: usize = 4096;

    /// Creates an empty buffer (grows on first use).
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            cursor: 0,
            filled: 0,
            predicted: Self::MIN_CHUNK,
        }
    }

    /// Starts a new run: discards draws buffered from the previous RNG
    /// stream and predicts this run's consumption from the last one.
    pub fn begin(&mut self) {
        let served = self.filled - (self.buf.len() - self.cursor);
        if served > 0 {
            self.predicted = served.max(Self::MIN_CHUNK);
        }
        self.buf.clear();
        self.cursor = 0;
        self.filled = 0;
    }

    /// Next draw from `dist`, refilling the buffer in blocks as needed.
    #[inline]
    pub fn next<D: ContinuousDistribution, R: Rng + ?Sized>(
        &mut self,
        dist: &D,
        rng: &mut R,
    ) -> f64 {
        if self.cursor == self.buf.len() {
            self.refill(dist, rng);
        }
        let v = self.buf[self.cursor];
        self.cursor += 1;
        v
    }

    /// Predicted draw consumption of the current run (last run's usage) —
    /// used by mechanisms to pre-size their output buffers.
    pub fn predicted_draws(&self) -> usize {
        self.predicted
    }

    /// The buffered draws ahead of the cursor, truncated to whole `m`-tuples,
    /// refilling first if fewer than one tuple is available. Callers iterate
    /// the slice (e.g. `chunks_exact(m)`) with zero per-tuple cursor
    /// arithmetic, then commit consumption with [`consume`](Self::consume).
    /// Draw order is identical to sequential [`next`](Self::next) draws.
    #[inline]
    pub fn peek_tuples<D: ContinuousDistribution, R: Rng + ?Sized>(
        &mut self,
        dist: &D,
        rng: &mut R,
        m: usize,
    ) -> &[f64] {
        assert!(m >= 1, "tuple arity must be at least 1");
        if self.cursor + m > self.buf.len() {
            self.refill_keeping_leftover(dist, rng, m);
        }
        let avail = self.buf.len() - self.cursor;
        let whole = avail - avail % m;
        &self.buf[self.cursor..self.cursor + whole]
    }

    /// Scaled twin of [`peek_tuples`](Self::peek_tuples), the draw-provider
    /// hook behind the mechanisms' blocked fast paths: writes
    /// `unit[i] * scales[i % m]` into `out` for every buffered draw ahead of
    /// the cursor (whole `scales.len()`-tuples only, refilling first if fewer
    /// than one tuple is available).
    ///
    /// Slot `b` of each tuple is then distributed `scale[b] ×` the base
    /// distribution — for distributions whose sampler is a single
    /// `scale * f(u)` product (Laplace), bit-identical to sampling at
    /// `scales[b]` directly. Consumption is still committed with
    /// [`consume`](Self::consume) in raw draw counts.
    ///
    /// The whole buffered slab is rescaled per peek, including a tail the
    /// run may never consume. That extra pass is bounded: blocks taper
    /// toward the predicted per-run consumption, so the unconsumed tail is
    /// at most one block's overshoot (measured cost ≲ 10% on the
    /// shortest-decision mechanisms, vs. fusing the multiply into every
    /// consumer loop — `repro bench-compare` guards the trade-off).
    #[inline]
    pub fn peek_tuples_scaled<D: ContinuousDistribution, R: Rng + ?Sized>(
        &mut self,
        dist: &D,
        rng: &mut R,
        scales: &[f64],
        out: &mut Vec<f64>,
    ) {
        let units = self.peek_tuples(dist, rng, scales.len());
        out.clear();
        out.extend(units.iter().zip(scales.iter().cycle()).map(|(u, s)| u * s));
    }

    /// Advances the cursor past `draws` previously obtained from
    /// [`peek_tuples`](Self::peek_tuples).
    ///
    /// # Panics
    /// Panics if `draws` exceeds the buffered draws ahead of the cursor
    /// (checked once per block, so the guard costs nothing per draw).
    #[inline]
    pub fn consume(&mut self, draws: usize) {
        assert!(
            self.cursor + draws <= self.buf.len(),
            "consumed more draws than were peeked"
        );
        self.cursor += draws;
    }

    /// Size of the next block: the predicted remainder of this run, clamped
    /// to `[MIN_CHUNK, CACHE_CHUNK]` — tapering toward the prediction keeps
    /// end-of-run overdraw small while the cap keeps every block hot in L1.
    fn next_block_size(&self) -> usize {
        self.predicted
            .saturating_sub(self.filled)
            .clamp(Self::MIN_CHUNK, Self::CACHE_CHUNK)
    }

    #[cold]
    fn refill<D: ContinuousDistribution, R: Rng + ?Sized>(&mut self, dist: &D, rng: &mut R) {
        let size = self.next_block_size();
        self.buf.resize(size, 0.0);
        dist.fill_into(rng, &mut self.buf);
        self.cursor = 0;
        self.filled += size;
    }

    /// Refill for [`peek_tuples`](Self::peek_tuples): the up-to-`m - 1`
    /// already-drawn buffered leftovers move to the front so the stream
    /// order stays identical to sequential draws, and fresh draws fill the
    /// rest of the block.
    #[cold]
    fn refill_keeping_leftover<D: ContinuousDistribution, R: Rng + ?Sized>(
        &mut self,
        dist: &D,
        rng: &mut R,
        m: usize,
    ) {
        let leftover = self.buf.len() - self.cursor;
        debug_assert!(leftover < m);
        self.buf.copy_within(self.cursor.., 0);
        let size = self.next_block_size().max(m);
        self.buf.resize(size, 0.0);
        dist.fill_into(rng, &mut self.buf[leftover..]);
        self.filled += size - leftover;
        self.cursor = 0;
    }
}

impl Default for BlockBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::Laplace;

    #[test]
    fn next_replays_the_sequential_stream() {
        let unit = Laplace::new(1.0).unwrap();
        let mut expect_rng = rng_from_seed(3);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(3);
        block.begin();
        for i in 0..1000 {
            let got = block.next(&unit, &mut rng);
            let want = unit.sample(&mut expect_rng);
            assert_eq!(got, want, "draw {i}");
        }
    }

    #[test]
    fn begin_discards_stale_buffered_draws() {
        let unit = Laplace::new(1.0).unwrap();
        let mut block = BlockBuffer::new();
        block.begin();
        let first = block.next(&unit, &mut rng_from_seed(4));
        // New run, new stream: must not serve leftovers from seed 4.
        block.begin();
        let fresh = block.next(&unit, &mut rng_from_seed(5));
        let want = unit.sample(&mut rng_from_seed(5));
        assert_eq!(fresh, want);
        assert_ne!(first, fresh);
    }

    #[test]
    fn peek_tuples_preserve_sequential_order_across_refills() {
        let unit = Laplace::new(1.0).unwrap();
        // Tuple arities covering pairs, the multi-branch m-tuples, and one
        // above MIN_CHUNK alignment oddness.
        for m in [1usize, 2, 3, 5, 7] {
            let mut expect_rng = rng_from_seed(7);
            let mut block = BlockBuffer::new();
            let mut rng = rng_from_seed(7);
            block.begin();
            // Odd leading draw forces the tuple path to carry leftovers
            // across refill boundaries for every m > 1.
            let first = block.next(&unit, &mut rng);
            assert_eq!(first, unit.sample(&mut expect_rng));
            let mut tuples_seen = 0usize;
            while tuples_seen < 500 {
                let slab = block.peek_tuples(&unit, &mut rng, m);
                assert!(slab.len() >= m && slab.len().is_multiple_of(m), "m = {m}");
                // Consume only part of some slabs to exercise partial commits.
                let take = (slab.len() / m).min(3) * m;
                for tuple in slab[..take].chunks_exact(m) {
                    for (j, &v) in tuple.iter().enumerate() {
                        assert_eq!(
                            v,
                            unit.sample(&mut expect_rng),
                            "m = {m}, tuple {tuples_seen}, slot {j}"
                        );
                    }
                    tuples_seen += 1;
                }
                block.consume(take);
            }
        }
    }

    #[test]
    fn peek_tuples_scaled_matches_scaled_sequential_draws() {
        let unit = Laplace::new(1.0).unwrap();
        let scales = [3.0f64, 0.25, 17.5];
        let mut expect_rng = rng_from_seed(9);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(9);
        let mut scaled = Vec::new();
        block.begin();
        let mut tuples_seen = 0usize;
        while tuples_seen < 300 {
            block.peek_tuples_scaled(&unit, &mut rng, &scales, &mut scaled);
            assert!(scaled.len() >= scales.len() && scaled.len().is_multiple_of(scales.len()));
            let take = (scaled.len() / scales.len()).min(4) * scales.len();
            for tuple in scaled[..take].chunks_exact(scales.len()) {
                for (j, &v) in tuple.iter().enumerate() {
                    // unit * scale is bit-identical to sampling at the scale
                    // directly (the sampler is a single scale * f(u) product).
                    let want = Laplace::new(scales[j]).unwrap().sample(&mut expect_rng);
                    assert_eq!(v.to_bits(), want.to_bits(), "tuple {tuples_seen} slot {j}");
                }
                tuples_seen += 1;
            }
            block.consume(take);
        }
    }

    #[test]
    fn prediction_tracks_previous_consumption() {
        let unit = Laplace::new(1.0).unwrap();
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(6);
        block.begin();
        for _ in 0..1000 {
            block.next(&unit, &mut rng);
        }
        // Next run's first block should be sized like the last run...
        block.begin();
        assert_eq!(block.predicted_draws(), 1000);
        block.next(&unit, &mut rng);
        assert_eq!(block.buf.len(), 1000);
        // ...and a run that uses almost none leaves only marginal waste.
        block.begin();
        block.next(&unit, &mut rng);
        block.begin();
        assert_eq!(block.predicted_draws(), BlockBuffer::MIN_CHUNK);
    }

    #[test]
    fn blocks_are_clamped_to_the_cache_chunk() {
        let unit = Laplace::new(1.0).unwrap();
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(8);
        block.begin();
        for _ in 0..(3 * BlockBuffer::CACHE_CHUNK) {
            block.next(&unit, &mut rng);
        }
        block.begin();
        assert_eq!(block.predicted_draws(), 3 * BlockBuffer::CACHE_CHUNK);
        block.next(&unit, &mut rng);
        // Even with a huge prediction, one block never exceeds the cap.
        assert!(block.buf.len() <= BlockBuffer::CACHE_CHUNK);
    }
}
