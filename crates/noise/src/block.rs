//! Chunked noise-fill over fixed-size blocks: the buffering discipline
//! behind the mechanisms' batched and streaming fast paths.
//!
//! SVT-family mechanisms stop after a *data-dependent* number of draws, and
//! the streaming entry points do not even know the stream length up front —
//! so noise cannot be pre-generated in one run-sized pass. A [`BlockBuffer`]
//! instead pulls **raw uniforms** from the RNG in bounded blocks and applies
//! the distribution transform at serve time:
//!
//! * continuous draws go through [`SingleUniform::sample_from_uniform`]
//!   (one uniform per draw — Laplace, Gumbel, Exponential), cached behind a
//!   lazy watermark so each uniform is transformed at most once even when
//!   `peek` slabs overlap; a second, uncached per-draw path
//!   ([`BlockBuffer::next_uncached`]) serves transforms whose distribution
//!   varies per call alongside the run's cached one;
//! * discrete Laplace draws go through
//!   [`DiscreteLaplace::value_from_uniform`] (one uniform per draw — the
//!   closed-form geometric-tail inversion), evaluated block-at-a-time with
//!   the distribution's normalization hoisted out of the loop;
//! * staircase draws go through [`Staircase::sample_from_uniforms`] (four
//!   uniforms per draw, the Geng–Viswanath four-variable representation).
//!
//! Buffering *uniforms* rather than transformed values is what lets the two
//! families share one tape: a mechanism (or a random interleaving in the
//! stream-discipline proptest) can alternate continuous and discrete draws
//! and still serve exactly the sequence a sequential sampling loop would
//! produce on the same RNG stream, because every serve is a pure function of
//! the uniforms at the cursor.
//!
//! The load-bearing invariant is that **draw-order preservation**: however
//! the buffer is refilled, the sequence of draws served is bit-identical to
//! a sequential [`sample`](crate::ContinuousDistribution::sample) /
//! [`DiscreteDistribution::sample_value`](crate::DiscreteDistribution::sample_value)
//! loop on the same RNG stream. The buffer may pull *more* from the RNG
//! than it serves (block lookahead), which is why consumers derive a fresh
//! stream per run — see the stream-discipline notes on
//! `free_gap_core::scratch`.
//!
//! Block sizes adapt: the first block of a run is sized by the previous
//! run's consumption (consecutive Monte-Carlo runs of one mechanism consume
//! near-identical draw counts), later blocks taper toward the prediction and
//! are clamped to a cache-friendly maximum, so both short runs (little
//! overdraw) and unboundedly long streams (hot, L1-resident refills) are
//! served well.

use crate::discrete_laplace::DiscreteLaplace;
use crate::staircase::Staircase;
use crate::traits::SingleUniform;
use rand::Rng;

/// A reusable tape of pre-drawn raw uniforms, refilled in fixed-size blocks
/// and served as continuous or discrete draws.
///
/// Generic over the distribution at call time (the distribution is passed to
/// each draw method, not stored) so one buffer type serves every noise
/// family; callers must pass the *same* continuous distribution for the
/// lifetime of a run (the transform cache assumes it), while discrete
/// parameters may vary per draw — each discrete serve re-derives its value
/// from the raw uniforms.
#[derive(Debug, Clone)]
pub struct BlockBuffer {
    /// Raw uniforms; `raw[cursor..]` are buffered ahead of consumption.
    raw: Vec<f64>,
    /// Continuous-transform cache: `vals[i]` holds the run distribution's
    /// `sample_from_uniform(raw[i])` for `i < transformed` (stale garbage
    /// beyond the watermark; kept the same length as `raw`).
    vals: Vec<f64>,
    /// Transform watermark into `vals`.
    transformed: usize,
    cursor: usize,
    /// Fresh uniforms pulled from the RNG since the last
    /// [`begin`](Self::begin) (served = `filled - (raw.len() - cursor)`;
    /// tracked at refill time so the per-draw hot path carries no extra
    /// bookkeeping).
    filled: usize,
    /// Predicted consumption of the next run (last run's served count), in
    /// uniforms.
    predicted: usize,
}

impl BlockBuffer {
    /// Smallest block ever drawn (also the first-ever prediction).
    pub const MIN_CHUNK: usize = 16;
    /// Largest block: 4096 doubles = 32 KiB, comfortably L1-resident, so
    /// long runs stream through a hot buffer instead of round-tripping one
    /// run-sized buffer through DRAM.
    pub const CACHE_CHUNK: usize = 4096;

    /// Creates an empty buffer (grows on first use).
    pub fn new() -> Self {
        Self {
            raw: Vec::new(),
            vals: Vec::new(),
            transformed: 0,
            cursor: 0,
            filled: 0,
            predicted: Self::MIN_CHUNK,
        }
    }

    /// Starts a new run: discards uniforms buffered from the previous RNG
    /// stream and predicts this run's consumption from the last one.
    pub fn begin(&mut self) {
        let served = self.filled - (self.raw.len() - self.cursor);
        if served > 0 {
            self.predicted = served.max(Self::MIN_CHUNK);
        }
        self.raw.clear();
        self.vals.clear();
        self.transformed = 0;
        self.cursor = 0;
        self.filled = 0;
    }

    /// Next draw from `dist`, refilling the buffer in blocks as needed.
    #[inline]
    pub fn next<D: SingleUniform, R: Rng + ?Sized>(&mut self, dist: &D, rng: &mut R) -> f64 {
        if self.cursor == self.raw.len() {
            self.refill(rng);
        }
        let v = if self.cursor < self.transformed {
            self.vals[self.cursor]
        } else {
            dist.sample_from_uniform(self.raw[self.cursor])
        };
        self.cursor += 1;
        v
    }

    /// Next raw uniform at the cursor, refilling in blocks as needed — the
    /// shared serving step behind every per-draw transform below.
    #[inline]
    fn next_raw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.cursor == self.raw.len() {
            self.refill(rng);
        }
        let u = self.raw[self.cursor];
        self.cursor += 1;
        u
    }

    /// Next discrete Laplace draw (one buffered uniform through the
    /// closed-form tail inversion), bit-identical to
    /// [`sample_value`](crate::DiscreteDistribution::sample_value) at the
    /// same stream position. Unlike the continuous transform cache, the
    /// discrete parameters may differ per call — each serve re-derives from
    /// the raw uniform.
    #[inline]
    pub fn next_discrete<R: Rng + ?Sized>(&mut self, dist: &DiscreteLaplace, rng: &mut R) -> f64 {
        let u = self.next_raw(rng);
        dist.value_from_uniform(u)
    }

    /// Next draw from `dist`, transformed directly from the raw uniform at
    /// the cursor — no watermark cache, so unlike [`next`](Self::next) the
    /// distribution may vary per call and may differ from the run's cached
    /// continuous distribution (the Gumbel/Exponential provider shapes
    /// interleave with Laplace draws this way). Bit-identical to
    /// [`sample`](crate::ContinuousDistribution::sample) at the same stream
    /// position.
    #[inline]
    pub fn next_uncached<D: SingleUniform, R: Rng + ?Sized>(
        &mut self,
        dist: &D,
        rng: &mut R,
    ) -> f64 {
        let u = self.next_raw(rng);
        dist.sample_from_uniform(u)
    }

    /// Next staircase draw: four buffered uniforms through
    /// [`Staircase::sample_from_uniforms`], bit-identical to a
    /// [`sample`](crate::ContinuousDistribution::sample) call at the same
    /// stream position (the four-variable representation consumes exactly
    /// four uniforms in draw order; refills preserve the partial tuple's
    /// order because a refill only happens when the buffer is drained).
    #[inline]
    pub fn next_staircase<R: Rng + ?Sized>(&mut self, dist: &Staircase, rng: &mut R) -> f64 {
        let u = [
            self.next_raw(rng),
            self.next_raw(rng),
            self.next_raw(rng),
            self.next_raw(rng),
        ];
        dist.sample_from_uniforms(u)
    }

    /// Predicted draw consumption of the current run (last run's usage; one
    /// uniform per draw in both noise families) — used by mechanisms to
    /// pre-size their output buffers.
    pub fn predicted_draws(&self) -> usize {
        self.predicted
    }

    /// The buffered draws ahead of the cursor, truncated to whole `m`-tuples,
    /// refilling first if fewer than one tuple is available. Callers iterate
    /// the slice (e.g. `chunks_exact(m)`) with zero per-tuple cursor
    /// arithmetic, then commit consumption with [`consume`](Self::consume).
    /// Draw order is identical to sequential [`next`](Self::next) draws.
    #[inline]
    pub fn peek_tuples<D: SingleUniform, R: Rng + ?Sized>(
        &mut self,
        dist: &D,
        rng: &mut R,
        m: usize,
    ) -> &[f64] {
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(m >= 1, "tuple arity must be at least 1");
        if self.cursor + m > self.raw.len() {
            self.refill_keeping_leftover(rng, m);
        }
        let avail = self.raw.len() - self.cursor;
        let whole = avail - avail % m;
        self.ensure_transformed(dist, self.cursor + whole);
        &self.vals[self.cursor..self.cursor + whole]
    }

    /// Scaled twin of [`peek_tuples`](Self::peek_tuples), the draw-provider
    /// hook behind the mechanisms' blocked fast paths: writes
    /// `value[i] * scales[i % m]` into `out` for every buffered draw ahead
    /// of the cursor (whole `scales.len()`-tuples only, refilling first if
    /// fewer than one tuple is available).
    ///
    /// Slot `b` of each tuple is then distributed `scale[b] ×` the base
    /// distribution — for distributions whose sampler is a single
    /// `scale * f(u)` product (Laplace), bit-identical to sampling at
    /// `scales[b]` directly. Consumption is still committed with
    /// [`consume`](Self::consume) in raw draw counts.
    ///
    /// The whole buffered slab is rescaled per peek, including a tail the
    /// run may never consume (the underlying transform runs at most once
    /// per uniform thanks to the watermark cache). That extra pass is
    /// bounded: blocks taper toward the predicted per-run consumption, so
    /// the unconsumed tail is at most one block's overshoot (measured cost
    /// ≲ 10% on the shortest-decision mechanisms, vs. fusing the multiply
    /// into every consumer loop — `repro bench-compare` guards the
    /// trade-off).
    #[inline]
    pub fn peek_tuples_scaled<D: SingleUniform, R: Rng + ?Sized>(
        &mut self,
        dist: &D,
        rng: &mut R,
        scales: &[f64],
        out: &mut Vec<f64>,
    ) {
        let units = self.peek_tuples(dist, rng, scales.len());
        out.clear();
        out.extend(units.iter().zip(scales.iter().cycle()).map(|(u, s)| u * s));
    }

    /// Discrete twin of [`peek_tuples`](Self::peek_tuples): writes whole
    /// `dists.len()`-tuples into `out`, slot `b` of each tuple drawn from
    /// `dists[b]` (refilling first if fewer than one tuple's worth of
    /// uniforms is available). Each served value consumes one raw uniform;
    /// commit consumption with [`consume`](Self::consume) in served values.
    /// Draw order is identical to sequential
    /// [`next_discrete`](Self::next_discrete) draws.
    #[inline]
    pub fn discrete_peek_tuples<R: Rng + ?Sized>(
        &mut self,
        dists: &[DiscreteLaplace],
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        let m = dists.len();
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(m >= 1, "tuple arity must be at least 1");
        if self.cursor + m > self.raw.len() {
            self.refill_keeping_leftover(rng, m);
        }
        let tuples = (self.raw.len() - self.cursor) / m;
        let raw = &self.raw[self.cursor..self.cursor + tuples * m];
        out.clear();
        out.reserve(tuples * m);
        for tuple in raw.chunks_exact(m) {
            for (dist, &u) in dists.iter().zip(tuple) {
                out.push(dist.value_from_uniform(u));
            }
        }
    }

    /// Advances the cursor past `draws` raw uniforms previously obtained
    /// from [`peek_tuples`](Self::peek_tuples) or
    /// [`discrete_peek_tuples`](Self::discrete_peek_tuples) (one uniform
    /// per served value in both families).
    ///
    /// # Panics
    /// Panics if `draws` exceeds the buffered uniforms ahead of the cursor
    /// (checked once per block, so the guard costs nothing per draw).
    #[inline]
    pub fn consume(&mut self, draws: usize) {
        // lint:allow(panic-freedom): tape-serving invariant — over-consuming is a provider bug, not user data
        assert!(
            self.cursor + draws <= self.raw.len(),
            "consumed more draws than were peeked"
        );
        self.cursor += draws;
    }

    /// Applies the continuous transform to `raw[max(transformed, cursor)..
    /// upto)` so each uniform is transformed at most once per run.
    fn ensure_transformed<D: SingleUniform>(&mut self, dist: &D, upto: usize) {
        // Slots behind the cursor are never served again: skipping them
        // (after discrete serves advanced past the watermark) is safe even
        // though the watermark then claims them.
        let start = self.transformed.max(self.cursor);
        for i in start..upto {
            self.vals[i] = dist.sample_from_uniform(self.raw[i]);
        }
        self.transformed = self.transformed.max(upto);
    }

    /// Size of the next block: the predicted remainder of this run, clamped
    /// to `[MIN_CHUNK, CACHE_CHUNK]` — tapering toward the prediction keeps
    /// end-of-run overdraw small while the cap keeps every block hot in L1.
    fn next_block_size(&self) -> usize {
        self.predicted
            .saturating_sub(self.filled)
            .clamp(Self::MIN_CHUNK, Self::CACHE_CHUNK)
    }

    #[cold]
    fn refill<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let size = self.next_block_size();
        self.raw.resize(size, 0.0);
        for slot in &mut self.raw {
            *slot = rng.gen();
        }
        self.vals.resize(size, 0.0);
        self.transformed = 0;
        self.cursor = 0;
        self.filled += size;
    }

    /// Refill for the peek/tuple paths: the up-to-`m - 1` already-drawn
    /// buffered leftovers move to the front (transform cache included) so
    /// the stream order stays identical to sequential draws, and fresh
    /// uniforms fill the rest of the block.
    #[cold]
    fn refill_keeping_leftover<R: Rng + ?Sized>(&mut self, rng: &mut R, m: usize) {
        let leftover = self.raw.len() - self.cursor;
        debug_assert!(leftover < m);
        self.raw.copy_within(self.cursor.., 0);
        self.vals.copy_within(self.cursor.., 0);
        self.transformed = self.transformed.saturating_sub(self.cursor).min(leftover);
        let size = self.next_block_size().max(m);
        self.raw.resize(size, 0.0);
        for slot in &mut self.raw[leftover..] {
            *slot = rng.gen();
        }
        self.vals.resize(size, 0.0);
        self.filled += size - leftover;
        self.cursor = 0;
    }
}

impl Default for BlockBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::traits::{ContinuousDistribution, DiscreteDistribution};
    use crate::Laplace;

    #[test]
    fn next_replays_the_sequential_stream() {
        let unit = Laplace::new(1.0).unwrap();
        let mut expect_rng = rng_from_seed(3);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(3);
        block.begin();
        for i in 0..1000 {
            let got = block.next(&unit, &mut rng);
            let want = unit.sample(&mut expect_rng);
            assert_eq!(got, want, "draw {i}");
        }
    }

    #[test]
    fn next_discrete_replays_the_sequential_stream() {
        let dl = DiscreteLaplace::new(0.8, 0.5).unwrap();
        let mut expect_rng = rng_from_seed(13);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(13);
        block.begin();
        for i in 0..1000 {
            let got = block.next_discrete(&dl, &mut rng);
            let want = dl.sample_value(&mut expect_rng);
            assert_eq!(got.to_bits(), want.to_bits(), "draw {i}");
        }
    }

    #[test]
    fn mixed_families_share_one_sequential_stream() {
        // The point of buffering raw uniforms: alternating continuous and
        // discrete draws (at varying parameters) still replays exactly the
        // sequential sampling loop, including across refill boundaries.
        let unit = Laplace::new(1.0).unwrap();
        let mut expect_rng = rng_from_seed(29);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(29);
        block.begin();
        for i in 0..2000 {
            match i % 4 {
                0 | 2 => {
                    let got = block.next(&unit, &mut rng);
                    let want = unit.sample(&mut expect_rng);
                    assert_eq!(got.to_bits(), want.to_bits(), "draw {i} (continuous)");
                }
                1 => {
                    let dl = DiscreteLaplace::new(1.0, 1.0).unwrap();
                    let got = block.next_discrete(&dl, &mut rng);
                    let want = dl.sample_value(&mut expect_rng);
                    assert_eq!(got.to_bits(), want.to_bits(), "draw {i} (discrete)");
                }
                _ => {
                    let dl = DiscreteLaplace::new(0.3, 0.25).unwrap();
                    let got = block.next_discrete(&dl, &mut rng);
                    let want = dl.sample_value(&mut expect_rng);
                    assert_eq!(got.to_bits(), want.to_bits(), "draw {i} (discrete fine)");
                }
            }
        }
    }

    #[test]
    fn next_replays_gumbel_and_exponential_sequential_streams() {
        // Gumbel/Exponential as the run's cached continuous distribution:
        // the watermark-cached serving path is generic over SingleUniform.
        let gum = crate::Gumbel::new(1.7).unwrap();
        let mut expect_rng = rng_from_seed(31);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(31);
        block.begin();
        for i in 0..1000 {
            let got = block.next(&gum, &mut rng);
            let want = gum.sample(&mut expect_rng);
            assert_eq!(got.to_bits(), want.to_bits(), "gumbel draw {i}");
        }
        let exp = crate::Exponential::new(0.4).unwrap();
        let mut expect_rng = rng_from_seed(32);
        let mut rng = rng_from_seed(32);
        block.begin();
        for i in 0..1000 {
            let got = block.next(&exp, &mut rng);
            let want = exp.sample(&mut expect_rng);
            assert_eq!(got.to_bits(), want.to_bits(), "exponential draw {i}");
        }
    }

    #[test]
    fn uncached_draws_interleave_with_cached_peeks() {
        // A Gumbel/Exponential draw served through the uncached path must
        // come from the raw uniform even when an earlier Laplace peek
        // already transformed that slot under the watermark cache.
        let unit = Laplace::new(1.0).unwrap();
        let gum = crate::Gumbel::standard();
        let exp = crate::Exponential::new(2.0).unwrap();
        let mut expect_rng = rng_from_seed(33);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(33);
        block.begin();
        for round in 0..300 {
            // Peek a pair (transforms a slab with Laplace), consume it...
            let pair = block.peek_tuples(&unit, &mut rng, 2)[..2].to_vec();
            block.consume(2);
            for (j, v) in pair.iter().enumerate() {
                let want = unit.sample(&mut expect_rng);
                assert_eq!(v.to_bits(), want.to_bits(), "round {round} pair {j}");
            }
            // ...then serve Gumbel and Exponential draws from slots the
            // watermark may already claim.
            let g = block.next_uncached(&gum, &mut rng);
            assert_eq!(g.to_bits(), gum.sample(&mut expect_rng).to_bits());
            let e = block.next_uncached(&exp, &mut rng);
            assert_eq!(e.to_bits(), exp.sample(&mut expect_rng).to_bits());
        }
    }

    #[test]
    fn staircase_serving_replays_the_sequential_stream() {
        let stair = Staircase::new(0.9, 1.0, 0.35).unwrap();
        let unit = Laplace::new(1.0).unwrap();
        let mut expect_rng = rng_from_seed(34);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(34);
        block.begin();
        for i in 0..500 {
            // Odd interleaving so staircase tuples straddle refills.
            if i % 3 == 0 {
                let got = block.next(&unit, &mut rng);
                let want = unit.sample(&mut expect_rng);
                assert_eq!(got.to_bits(), want.to_bits(), "draw {i} (laplace)");
            }
            let got = block.next_staircase(&stair, &mut rng);
            let want = stair.sample(&mut expect_rng);
            assert_eq!(got.to_bits(), want.to_bits(), "draw {i} (staircase)");
        }
    }

    #[test]
    fn begin_discards_stale_buffered_draws() {
        let unit = Laplace::new(1.0).unwrap();
        let mut block = BlockBuffer::new();
        block.begin();
        let first = block.next(&unit, &mut rng_from_seed(4));
        // New run, new stream: must not serve leftovers from seed 4.
        block.begin();
        let fresh = block.next(&unit, &mut rng_from_seed(5));
        let want = unit.sample(&mut rng_from_seed(5));
        assert_eq!(fresh, want);
        assert_ne!(first, fresh);
    }

    #[test]
    fn peek_tuples_preserve_sequential_order_across_refills() {
        let unit = Laplace::new(1.0).unwrap();
        // Tuple arities covering pairs, the multi-branch m-tuples, and one
        // above MIN_CHUNK alignment oddness.
        for m in [1usize, 2, 3, 5, 7] {
            let mut expect_rng = rng_from_seed(7);
            let mut block = BlockBuffer::new();
            let mut rng = rng_from_seed(7);
            block.begin();
            // Odd leading draw forces the tuple path to carry leftovers
            // across refill boundaries for every m > 1.
            let first = block.next(&unit, &mut rng);
            assert_eq!(first, unit.sample(&mut expect_rng));
            let mut tuples_seen = 0usize;
            while tuples_seen < 500 {
                let slab = block.peek_tuples(&unit, &mut rng, m);
                assert!(slab.len() >= m && slab.len().is_multiple_of(m), "m = {m}");
                // Consume only part of some slabs to exercise partial commits.
                let take = (slab.len() / m).min(3) * m;
                for tuple in slab[..take].chunks_exact(m) {
                    for (j, &v) in tuple.iter().enumerate() {
                        assert_eq!(
                            v,
                            unit.sample(&mut expect_rng),
                            "m = {m}, tuple {tuples_seen}, slot {j}"
                        );
                    }
                    tuples_seen += 1;
                }
                block.consume(take);
            }
        }
    }

    #[test]
    fn peek_tuples_scaled_matches_scaled_sequential_draws() {
        let unit = Laplace::new(1.0).unwrap();
        let scales = [3.0f64, 0.25, 17.5];
        let mut expect_rng = rng_from_seed(9);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(9);
        let mut scaled = Vec::new();
        block.begin();
        let mut tuples_seen = 0usize;
        while tuples_seen < 300 {
            block.peek_tuples_scaled(&unit, &mut rng, &scales, &mut scaled);
            assert!(scaled.len() >= scales.len() && scaled.len().is_multiple_of(scales.len()));
            let take = (scaled.len() / scales.len()).min(4) * scales.len();
            for tuple in scaled[..take].chunks_exact(scales.len()) {
                for (j, &v) in tuple.iter().enumerate() {
                    // unit * scale is bit-identical to sampling at the scale
                    // directly (the sampler is a single scale * f(u) product).
                    let want = Laplace::new(scales[j]).unwrap().sample(&mut expect_rng);
                    assert_eq!(v.to_bits(), want.to_bits(), "tuple {tuples_seen} slot {j}");
                }
                tuples_seen += 1;
            }
            block.consume(take);
        }
    }

    #[test]
    fn discrete_peek_tuples_match_sequential_draws_at_per_slot_rates() {
        let dists = [
            DiscreteLaplace::new(0.9, 1.0).unwrap(),
            DiscreteLaplace::new(0.2, 1.0).unwrap(),
        ];
        let m = dists.len();
        let mut expect_rng = rng_from_seed(17);
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(17);
        let mut out = Vec::new();
        block.begin();
        // Odd leading continuous draw forces the discrete tuple path to
        // carry a lone leftover uniform across a refill boundary.
        let unit = Laplace::new(1.0).unwrap();
        let first = block.next(&unit, &mut rng);
        assert_eq!(first, unit.sample(&mut expect_rng));
        let mut tuples_seen = 0usize;
        while tuples_seen < 400 {
            block.discrete_peek_tuples(&dists, &mut rng, &mut out);
            assert!(out.len() >= m && out.len().is_multiple_of(m));
            let take = (out.len() / m).min(3) * m;
            for tuple in out[..take].chunks_exact(m) {
                for (j, &v) in tuple.iter().enumerate() {
                    let want = dists[j].sample_value(&mut expect_rng);
                    assert_eq!(v.to_bits(), want.to_bits(), "tuple {tuples_seen} slot {j}");
                }
                tuples_seen += 1;
            }
            block.consume(take);
        }
    }

    #[test]
    fn prediction_tracks_previous_consumption() {
        let unit = Laplace::new(1.0).unwrap();
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(6);
        block.begin();
        for _ in 0..1000 {
            block.next(&unit, &mut rng);
        }
        // Next run's first block should be sized like the last run...
        block.begin();
        assert_eq!(block.predicted_draws(), 1000);
        block.next(&unit, &mut rng);
        assert_eq!(block.raw.len(), 1000);
        // ...and a run that uses almost none leaves only marginal waste.
        block.begin();
        block.next(&unit, &mut rng);
        block.begin();
        assert_eq!(block.predicted_draws(), BlockBuffer::MIN_CHUNK);
    }

    #[test]
    fn blocks_are_clamped_to_the_cache_chunk() {
        let unit = Laplace::new(1.0).unwrap();
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(8);
        block.begin();
        for _ in 0..(3 * BlockBuffer::CACHE_CHUNK) {
            block.next(&unit, &mut rng);
        }
        block.begin();
        assert_eq!(block.predicted_draws(), 3 * BlockBuffer::CACHE_CHUNK);
        block.next(&unit, &mut rng);
        // Even with a huge prediction, one block never exceeds the cap.
        assert!(block.raw.len() <= BlockBuffer::CACHE_CHUNK);
    }
}
