//! Distribution traits shared by the noise family.

use rand::Rng;

/// A continuous real-valued distribution with closed-form density and CDF.
///
/// All implementations in this crate are symmetric about their mean unless
/// documented otherwise (the [`crate::Exponential`] is one-sided).
pub trait ContinuousDistribution {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p in (0, 1)`.
    ///
    /// Returns an error if `p` is outside the open unit interval or the
    /// solver fails to converge.
    fn quantile(&self, p: f64) -> Result<f64, crate::NoiseError>;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Standard deviation (square root of [`variance`](Self::variance)).
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Draws `n` samples into a fresh vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// A discrete distribution over integer multiples of a base step.
///
/// The support is `{ k * base : k in Z }` (or a sub-range for one-sided
/// distributions); methods are indexed by the *integer* `k`, while
/// [`sample_value`](Self::sample_value) returns `k * base` directly.
pub trait DiscreteDistribution {
    /// The spacing between support points (the paper's `γ`).
    fn base(&self) -> f64;

    /// Draws one sample, returned as the integer index `k`.
    fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> i64;

    /// Draws one sample, returned as the real value `k * base`.
    fn sample_value<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_index(rng) as f64 * self.base()
    }

    /// Probability mass at index `k`.
    fn pmf(&self, k: i64) -> f64;

    /// Cumulative distribution `P(K <= k)`.
    fn cdf(&self, k: i64) -> f64;

    /// Mean of the *index* variable `K` (multiply by `base` for the value).
    fn mean_index(&self) -> f64;

    /// Variance of the *index* variable `K`.
    fn variance_index(&self) -> f64;

    /// Variance of the value variable `K * base`.
    fn variance_value(&self) -> f64 {
        self.variance_index() * self.base() * self.base()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::Laplace;

    #[test]
    fn sample_n_len_and_determinism() {
        let lap = Laplace::new(1.0).unwrap();
        let xs = lap.sample_n(&mut rng_from_seed(3), 100);
        let ys = lap.sample_n(&mut rng_from_seed(3), 100);
        assert_eq!(xs.len(), 100);
        assert_eq!(xs, ys);
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let lap = Laplace::new(2.0).unwrap();
        assert!((lap.std_dev() - lap.variance().sqrt()).abs() < 1e-15);
    }
}
