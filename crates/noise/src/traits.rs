//! Distribution traits shared by the noise family.

use rand::Rng;

/// A continuous real-valued distribution with closed-form density and CDF.
///
/// All implementations in this crate are symmetric about their mean unless
/// documented otherwise (the [`crate::Exponential`] is one-sided).
pub trait ContinuousDistribution {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF) for `p in (0, 1)`.
    ///
    /// Returns an error if `p` is outside the open unit interval or the
    /// solver fails to converge.
    fn quantile(&self, p: f64) -> Result<f64, crate::NoiseError>;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Variance of the distribution.
    fn variance(&self) -> f64;

    /// Standard deviation (square root of [`variance`](Self::variance)).
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Fills `out` with independent samples — the batch entry point of the
    /// workspace's Monte-Carlo hot paths.
    ///
    /// The default implementation loops [`sample`](Self::sample);
    /// distributions with a tight inverse-CDF (e.g. [`crate::Laplace`])
    /// override it with a fused loop. Implementations must consume the RNG
    /// exactly as repeated `sample` calls would, so `fill_into` and a
    /// `sample` loop produce **bit-identical** streams from the same RNG
    /// state — the scratch-buffer mechanism paths in `free-gap-core` rely on
    /// this to stay equivalent to the allocating paths.
    fn fill_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// Fills `out[i] = base[i] + sampleᵢ` in one fused pass — the
    /// noise-a-query-vector primitive of the mechanism fast paths, writing
    /// the output buffer exactly once.
    ///
    /// Same RNG-consumption contract as [`fill_into`](Self::fill_into):
    /// bit-identical to `base[i] + self.sample(rng)` in a loop.
    ///
    /// # Panics
    /// Panics if `base` and `out` have different lengths.
    fn fill_into_offset<R: Rng + ?Sized>(&self, rng: &mut R, base: &[f64], out: &mut [f64]) {
        // lint:allow(panic-freedom): documented panic — the mechanism core sizes both buffers before the call
        assert_eq!(base.len(), out.len(), "offset/output length mismatch");
        for (slot, b) in out.iter_mut().zip(base) {
            *slot = b + self.sample(rng);
        }
    }

    /// Draws `n` samples into a fresh vector (delegates to
    /// [`fill_into`](Self::fill_into)).
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        self.fill_into(rng, &mut out);
        out
    }
}

/// A continuous distribution whose sampler consumes **exactly one** uniform
/// draw and is a pure function of it.
///
/// The law: `sample(rng)` must be exactly
/// `sample_from_uniform(rng.gen::<f64>())` — same arithmetic, same bits.
/// This is the contract behind [`crate::BlockBuffer`]'s raw-uniform tape:
/// the buffer pulls uniforms from the RNG in blocks and applies the
/// transform at serve time, so continuous and discrete draws can share one
/// buffered stream without breaking the sequential draw order.
///
/// Distributions whose sampler needs more than one uniform cannot implement
/// this trait: [`crate::LaplaceDiff`] stays off the tape entirely, while
/// [`crate::Staircase`] rides it through its own fixed-arity transform
/// ([`crate::Staircase::sample_from_uniforms`], four uniforms per draw,
/// served by [`crate::BlockBuffer::next_staircase`]).
pub trait SingleUniform: ContinuousDistribution {
    /// The sampler as a pure transform of one uniform `u ∈ [0, 1)`.
    fn sample_from_uniform(&self, u: f64) -> f64;
}

/// A discrete distribution over integer multiples of a base step.
///
/// The support is `{ k * base : k in Z }` (or a sub-range for one-sided
/// distributions); methods are indexed by the *integer* `k`, while
/// [`sample_value`](Self::sample_value) returns `k * base` directly.
pub trait DiscreteDistribution {
    /// The spacing between support points (the paper's `γ`).
    fn base(&self) -> f64;

    /// Draws one sample, returned as the integer index `k`.
    fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> i64;

    /// Draws one sample, returned as the real value `k * base`.
    fn sample_value<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_index(rng) as f64 * self.base()
    }

    /// Probability mass at index `k`.
    fn pmf(&self, k: i64) -> f64;

    /// Cumulative distribution `P(K <= k)`.
    fn cdf(&self, k: i64) -> f64;

    /// Mean of the *index* variable `K` (multiply by `base` for the value).
    fn mean_index(&self) -> f64;

    /// Variance of the *index* variable `K`.
    fn variance_index(&self) -> f64;

    /// Variance of the value variable `K * base`.
    fn variance_value(&self) -> f64 {
        self.variance_index() * self.base() * self.base()
    }

    /// Fills `out` with independent value samples — the batch entry point of
    /// the finite-precision mechanisms' fast paths. The win over a caller
    /// loop is that the distribution (and its `exp`/`ln` normalization) is
    /// constructed once for the whole batch.
    ///
    /// Same RNG-consumption contract as
    /// [`ContinuousDistribution::fill_into`]: bit-identical to a
    /// [`sample_value`](Self::sample_value) loop on the same RNG stream.
    fn fill_values_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample_value(rng);
        }
    }

    /// Fills `out[i] = base[i] + sampleᵢ` in one fused pass — the
    /// discrete Noisy-Max shape, writing the output buffer exactly once.
    ///
    /// Bit-identical to `base[i] + self.sample_value(rng)` in a loop.
    ///
    /// # Panics
    /// Panics if `base` and `out` have different lengths.
    fn fill_values_into_offset<R: Rng + ?Sized>(&self, rng: &mut R, base: &[f64], out: &mut [f64]) {
        // lint:allow(panic-freedom): documented panic — the mechanism core sizes both buffers before the call
        assert_eq!(base.len(), out.len(), "offset/output length mismatch");
        for (slot, b) in out.iter_mut().zip(base) {
            *slot = b + self.sample_value(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::Laplace;
    use proptest::prelude::*;

    #[test]
    fn sample_n_len_and_determinism() {
        let lap = Laplace::new(1.0).unwrap();
        let xs = lap.sample_n(&mut rng_from_seed(3), 100);
        let ys = lap.sample_n(&mut rng_from_seed(3), 100);
        assert_eq!(xs.len(), 100);
        assert_eq!(xs, ys);
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let lap = Laplace::new(2.0).unwrap();
        assert!((lap.std_dev() - lap.variance().sqrt()).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn fill_into_matches_sample_loop_bitwise(
            seed in 0u64..10_000,
            scale in 0.01f64..50.0,
            n in 0usize..300,
        ) {
            // The batched path must consume the RNG exactly like repeated
            // `sample` calls: same stream position, same bits out.
            let lap = Laplace::new(scale).unwrap();
            let mut batched = vec![0.0; n];
            lap.fill_into(&mut rng_from_seed(seed), &mut batched);
            let mut rng = rng_from_seed(seed);
            for (i, &b) in batched.iter().enumerate() {
                let s = lap.sample(&mut rng);
                prop_assert!(s == b, "draw {i}: sequential {s} vs batched {b}");
            }
        }

        #[test]
        fn fill_into_offset_matches_sample_loop_bitwise(
            seed in 0u64..10_000,
            scale in 0.01f64..50.0,
            n in 0usize..300,
        ) {
            let lap = Laplace::new(scale).unwrap();
            let base: Vec<f64> = (0..n).map(|i| i as f64 * 0.7 - 3.0).collect();
            let mut fused = vec![0.0; n];
            lap.fill_into_offset(&mut rng_from_seed(seed), &base, &mut fused);
            let mut rng = rng_from_seed(seed);
            for i in 0..n {
                let expect = base[i] + lap.sample(&mut rng);
                prop_assert!(expect == fused[i], "slot {i}: {expect} vs {}", fused[i]);
            }
        }

        #[test]
        fn sample_n_matches_fill_into(seed in 0u64..10_000, n in 0usize..200) {
            let lap = Laplace::new(1.5).unwrap();
            let via_n = lap.sample_n(&mut rng_from_seed(seed), n);
            let mut via_fill = vec![0.0; n];
            lap.fill_into(&mut rng_from_seed(seed), &mut via_fill);
            prop_assert_eq!(via_n, via_fill);
        }

        #[test]
        fn unit_laplace_scales_exactly(seed in 0u64..10_000, scale in 0.01f64..100.0) {
            // The SVT scratch path draws unit Laplace noise and multiplies by
            // the per-draw scale; IEEE multiplication keeps that bit-identical
            // to drawing at the target scale directly.
            let unit = Laplace::new(1.0).unwrap();
            let direct = Laplace::new(scale).unwrap();
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            for _ in 0..32 {
                prop_assert!(unit.sample(&mut a) * scale == direct.sample(&mut b));
            }
        }
    }
}
