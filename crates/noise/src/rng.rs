//! Seeded RNG conventions for the workspace.
//!
//! Everything in `free-gap` is Monte-Carlo; reproducibility therefore hinges
//! on disciplined seeding. The convention is:
//!
//! * experiments and tests construct a root [`StdRng`] via [`rng_from_seed`];
//! * independent parallel streams are derived with [`derive_stream`], which
//!   mixes the root seed with a stream index through SplitMix64 so streams
//!   are decorrelated even for adjacent indices.
//!
//! ## The fast path
//!
//! [`StdRng`] is ChaCha-based: cryptographic-quality and the right default
//! for anything privacy-adjacent, but several times more expensive per draw
//! than necessary for throughput benchmarking. Monte-Carlo inner loops that
//! only need statistical quality can opt into [`FastRng`]
//! (Xoshiro256++-family) via [`fast_rng_from_seed`] / [`derive_fast_stream`],
//! which mirror the `StdRng` constructors seed-for-seed. The two generator
//! families produce **different streams** — results are deterministic per
//! generator, and the workspace's published experiment numbers always use
//! the `StdRng` convention; `FastRng` is for the perf harness.

use rand::rngs::{SmallRng, StdRng};
use rand::SeedableRng;

/// The fast non-cryptographic generator used by Monte-Carlo benchmarks.
pub type FastRng = SmallRng;

/// Builds a deterministic [`StdRng`] from a 64-bit seed.
///
/// The seed is expanded with SplitMix64 into the full 256-bit state so that
/// small seeds (0, 1, 2, …) still produce well-mixed initial states — this
/// is exactly `SeedableRng::seed_from_u64`'s documented expansion, so the
/// function delegates rather than duplicating it.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The 64-bit seed a `(seed, stream)` pair derives to — the mixing step
/// shared by [`derive_stream`] and [`derive_fast_stream`].
///
/// Exposed on its own so layered stream layouts (e.g. the per-block
/// parallel fill in `free-gap-core`, which derives a run seed per request
/// and then a sub-stream per block) can name the intermediate seed instead
/// of an RNG.
pub fn derive_stream_seed(seed: u64, stream: u64) -> u64 {
    // Golden-ratio increment separates (seed, stream) pairs before mixing.
    seed ^ splitmix64(&mut (stream.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// Derives the RNG for an independent stream (e.g. one Monte-Carlo worker).
///
/// `derive_stream(seed, i)` and `derive_stream(seed, j)` are decorrelated for
/// `i != j`, and the mapping is stable across runs and platforms.
pub fn derive_stream(seed: u64, stream: u64) -> StdRng {
    rng_from_seed(derive_stream_seed(seed, stream))
}

/// Builds a deterministic [`FastRng`] from a 64-bit seed (the fast-path
/// analogue of [`rng_from_seed`]; same SplitMix64 seed expansion).
pub fn fast_rng_from_seed(seed: u64) -> FastRng {
    FastRng::seed_from_u64(seed)
}

/// Derives an independent [`FastRng`] stream (the fast-path analogue of
/// [`derive_stream`]; same `(seed, stream)` mixing).
pub fn derive_fast_stream(seed: u64, stream: u64) -> FastRng {
    fast_rng_from_seed(derive_stream_seed(seed, stream))
}

/// SplitMix64 step: advances `state` and returns a mixed 64-bit output.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the standard seed-expansion mixer).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let mut s0 = derive_stream(7, 0);
        let mut s0b = derive_stream(7, 0);
        let mut s1 = derive_stream(7, 1);
        let x0: u64 = s0.gen();
        assert_eq!(x0, s0b.gen::<u64>());
        assert_ne!(x0, s1.gen::<u64>());
    }

    #[test]
    fn derive_stream_seed_is_the_shared_mixing_step() {
        // Both derive functions must expand exactly the seed
        // derive_stream_seed names; this pins the refactor so the
        // per-block sub-stream layout (which uses the seed directly)
        // cannot drift from the RNG constructors.
        for (seed, stream) in [(0u64, 0u64), (7, 3), (u64::MAX, u64::MAX), (42, 1 << 40)] {
            let derived = derive_stream_seed(seed, stream);
            let mut via_seed = fast_rng_from_seed(derived);
            let mut via_stream = derive_fast_stream(seed, stream);
            assert_eq!(via_seed.gen::<u64>(), via_stream.gen::<u64>());
            let mut std_via_seed = rng_from_seed(derived);
            let mut std_via_stream = derive_stream(seed, stream);
            assert_eq!(std_via_seed.gen::<u64>(), std_via_stream.gen::<u64>());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // First output for state 0 (published SplitMix64 test vector).
        let mut st = 0u64;
        assert_eq!(splitmix64(&mut st), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn seed_expansion_matches_documented_splitmix_convention() {
        // rng_from_seed delegates to seed_from_u64; this pins the documented
        // convention (SplitMix64 per 8-byte chunk) so a change to either
        // implementation cannot silently fork the workspace's streams.
        let mut state = 42u64;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        let mut manual = StdRng::from_seed(key);
        let mut derived = rng_from_seed(42);
        for _ in 0..8 {
            assert_eq!(manual.gen::<u64>(), derived.gen::<u64>());
        }
        let mut fast_manual = FastRng::from_seed(key);
        let mut fast_derived = fast_rng_from_seed(42);
        for _ in 0..8 {
            assert_eq!(fast_manual.gen::<u64>(), fast_derived.gen::<u64>());
        }
    }

    #[test]
    fn fast_streams_are_deterministic_and_distinct() {
        let mut a = fast_rng_from_seed(42);
        let mut b = fast_rng_from_seed(42);
        let mut c = fast_rng_from_seed(43);
        let x: u64 = a.gen();
        assert_eq!(x, b.gen::<u64>());
        assert_ne!(x, c.gen::<u64>());
        let mut s0 = derive_fast_stream(7, 0);
        let mut s1 = derive_fast_stream(7, 1);
        assert_ne!(s0.gen::<u64>(), s1.gen::<u64>());
    }

    #[test]
    fn small_seeds_are_well_mixed() {
        // Seeds 0 and 1 must not produce correlated first outputs.
        let mut a = rng_from_seed(0);
        let mut b = rng_from_seed(1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
        // Hamming distance should be near 32 for well-mixed states.
        let hd = (xa ^ xb).count_ones();
        assert!(hd > 10, "suspiciously close outputs: hamming distance {hd}");
    }
}
