//! Seeded RNG conventions for the workspace.
//!
//! Everything in `free-gap` is Monte-Carlo; reproducibility therefore hinges
//! on disciplined seeding. The convention is:
//!
//! * experiments and tests construct a root [`StdRng`] via [`rng_from_seed`];
//! * independent parallel streams are derived with [`derive_stream`], which
//!   mixes the root seed with a stream index through SplitMix64 so streams
//!   are decorrelated even for adjacent indices.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a deterministic [`StdRng`] from a 64-bit seed.
///
/// The seed is expanded with SplitMix64 into the full 256-bit state so that
/// small seeds (0, 1, 2, …) still produce well-mixed initial states.
pub fn rng_from_seed(seed: u64) -> StdRng {
    let mut state = seed;
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    StdRng::from_seed(key)
}

/// Derives the RNG for an independent stream (e.g. one Monte-Carlo worker).
///
/// `derive_stream(seed, i)` and `derive_stream(seed, j)` are decorrelated for
/// `i != j`, and the mapping is stable across runs and platforms.
pub fn derive_stream(seed: u64, stream: u64) -> StdRng {
    // Golden-ratio increment separates (seed, stream) pairs before mixing.
    rng_from_seed(seed ^ splitmix64(&mut (stream.wrapping_add(0x9E37_79B9_7F4A_7C15))))
}

/// SplitMix64 step: advances `state` and returns a mixed 64-bit output.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (the standard seed-expansion mixer).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let mut s0 = derive_stream(7, 0);
        let mut s0b = derive_stream(7, 0);
        let mut s1 = derive_stream(7, 1);
        let x0: u64 = s0.gen();
        assert_eq!(x0, s0b.gen::<u64>());
        assert_ne!(x0, s1.gen::<u64>());
    }

    #[test]
    fn splitmix_known_vector() {
        // First output for state 0 (published SplitMix64 test vector).
        let mut st = 0u64;
        assert_eq!(splitmix64(&mut st), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn small_seeds_are_well_mixed() {
        // Seeds 0 and 1 must not produce correlated first outputs.
        let mut a = rng_from_seed(0);
        let mut b = rng_from_seed(1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
        // Hamming distance should be near 32 for well-mixed states.
        let hd = (xa ^ xb).count_ones();
        assert!(hd > 10, "suspiciously close outputs: hamming distance {hd}");
    }
}
