//! Streaming and batch statistics used by the test-suite and the experiment
//! harness: Welford moments, empirical CDFs, Kolmogorov–Smirnov distances,
//! mean-squared error and simple percentiles.

/// Numerically stable streaming mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `M2 / n` (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance `M2 / (n-1)`.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard error of the mean, `sqrt(sample_variance / n)`.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// Empirical CDF built from a sample (sorted internally once).
#[derive(Debug, Clone)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the empirical CDF; non-finite values are rejected by panic in
    /// debug builds and filtered in release (they carry no order).
    pub fn new(mut samples: Vec<f64>) -> Self {
        debug_assert!(samples.iter().all(|x| x.is_finite()), "non-finite sample");
        samples.retain(|x| x.is_finite());
        samples.sort_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)` = fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: number of elements <= x.
        let k = self.sorted.partition_point(|&s| s <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// Order-statistic percentile (`q` in `[0, 1]`, nearest-rank).
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let idx =
            ((q * (self.sorted.len() - 1) as f64).round() as usize).min(self.sorted.len() - 1);
        Some(self.sorted[idx])
    }
}

/// Two-sided Kolmogorov–Smirnov statistic between `samples` and a reference
/// CDF: `sup_x |F̂(x) - F(x)|`, evaluated at the jump points.
pub fn ks_statistic<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        // empirical CDF jumps from i/n to (i+1)/n at x
        let lo = (f - i as f64 / n).abs();
        let hi = ((i + 1) as f64 / n - f).abs();
        d = d.max(lo).max(hi);
    }
    d
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Mean squared error between paired estimates and truths.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mean_squared_error(estimates: &[f64], truths: &[f64]) -> f64 {
    // lint:allow(panic-freedom): documented panic on mismatched pair lengths — a caller bug, not data
    assert_eq!(estimates.len(), truths.len(), "paired slices must match");
    if estimates.is_empty() {
        return 0.0;
    }
    estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / estimates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0, -3.0];
        let mut m = RunningMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mu = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - mu).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert!(
            (m.sample_variance() - var * xs.len() as f64 / (xs.len() - 1) as f64).abs() < 1e-12
        );
    }

    #[test]
    fn welford_empty_and_single() {
        let mut m = RunningMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        m.push(5.0);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.standard_error(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut seq = RunningMoments::new();
        for &x in &xs {
            seq.push(x);
        }
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningMoments::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningMoments::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
        let mut e = RunningMoments::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_cdf_basics() {
        let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(10.0), 1.0);
        assert_eq!(cdf.percentile(0.0), Some(1.0));
        assert_eq!(cdf.percentile(1.0), Some(3.0));
        assert_eq!(cdf.percentile(1.5), None);
    }

    #[test]
    fn empirical_cdf_empty() {
        let cdf = EmpiricalCdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.eval(1.0), 0.0);
        assert_eq!(cdf.percentile(0.5), None);
    }

    #[test]
    fn ks_of_perfect_uniform_grid() {
        // Points at (i+0.5)/n have KS = 0.5/n against U[0,1].
        let n = 100;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&xs, |x| x.clamp(0.0, 1.0));
        assert!((d - 0.5 / n as f64).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn ks_detects_wrong_distribution() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        // Compare uniform samples against a very skewed CDF.
        let d = ks_statistic(&xs, |x| x.clamp(0.0, 1.0).powi(4));
        assert!(d > 0.3, "d = {d}");
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mean_squared_error(&[], &[]), 0.0);
        assert_eq!(mean_squared_error(&[1.0, 3.0], &[0.0, 0.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "paired slices")]
    fn mse_length_mismatch_panics() {
        mean_squared_error(&[1.0], &[]);
    }

    proptest! {
        #[test]
        fn welford_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let mut m = RunningMoments::new();
            for x in &xs { m.push(*x); }
            prop_assert!(m.variance() >= -1e-9);
        }

        #[test]
        fn ecdf_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..100),
                         a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let cdf = EmpiricalCdf::new(xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.eval(lo) <= cdf.eval(hi));
        }
    }
}
