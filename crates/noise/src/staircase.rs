//! Staircase distribution of Geng & Viswanath ("The optimal mechanism in
//! differential privacy", ISIT 2014), cited by the paper (§3.1, §5.1) as an
//! alternative to Laplace noise satisfying the same bounded log-density-ratio
//! property required by Definition 6.
//!
//! The density is a symmetric geometric mixture of uniform "stairs" of width
//! `Δ` (the sensitivity), each stair split at `γΔ`:
//!
//! ```text
//! f(x) = a(γ)·e^{-kε}           x ∈ [kΔ, kΔ + γΔ)
//! f(x) = a(γ)·e^{-(k+1)ε}       x ∈ [kΔ + γΔ, (k+1)Δ)
//! f(-x) = f(x)
//! a(γ) = (1 - e^{-ε}) / (2Δ(γ + e^{-ε}(1 - γ)))
//! ```
//!
//! Sampling follows the authors' four-variable representation
//! `X = S·((1-B)(G + γU) + B(G + γ + (1-γ)U))·Δ` with `S` a random sign, `G`
//! geometric with ratio `e^{-ε}`, `U` uniform, and `B` the within-stair side.

use crate::error::{require_open_unit, require_positive, NoiseError};
use crate::geometric::Geometric;
use crate::traits::ContinuousDistribution;
use rand::Rng;

/// Staircase distribution with privacy parameter `ε`, sensitivity `Δ`, and
/// stair-split parameter `γ ∈ (0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Staircase {
    epsilon: f64,
    delta: f64,
    gamma: f64,
    /// Decay per stair, `b = e^{-ε}`.
    b: f64,
    geometric: Geometric,
}

impl Staircase {
    /// Creates a staircase distribution. `gamma` must lie in `(0, 1)`.
    pub fn new(epsilon: f64, sensitivity: f64, gamma: f64) -> Result<Self, NoiseError> {
        let epsilon = require_positive("epsilon", epsilon)?;
        let delta = require_positive("sensitivity", sensitivity)?;
        let gamma = require_open_unit("gamma", gamma)?;
        let b = (-epsilon).exp();
        Ok(Self {
            epsilon,
            delta,
            gamma,
            b,
            geometric: Geometric::new(b)?,
        })
    }

    /// Creates the distribution with the variance-optimal split
    /// `γ* = 1 / (1 + e^{ε/2})`.
    pub fn optimal(epsilon: f64, sensitivity: f64) -> Result<Self, NoiseError> {
        let e = require_positive("epsilon", epsilon)?;
        Self::new(e, sensitivity, 1.0 / (1.0 + (e / 2.0).exp()))
    }

    /// The privacy parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The sensitivity `Δ` (stair width).
    pub fn sensitivity(&self) -> f64 {
        self.delta
    }

    /// The stair-split parameter `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Normalization constant `a(γ)`.
    pub fn height(&self) -> f64 {
        (1.0 - self.b) / (2.0 * self.delta * (self.gamma + self.b * (1.0 - self.gamma)))
    }

    /// Probability that a sample falls on the inner (cheaper) side of a stair,
    /// `P(B = 0) = γ / (γ + (1-γ)e^{-ε})`.
    pub fn inner_side_probability(&self) -> f64 {
        self.gamma / (self.gamma + (1.0 - self.gamma) * self.b)
    }

    /// The sampler as a pure transform of four uniforms `u ∈ [0, 1)` —
    /// sign, geometric layer (one-uniform CDF inversion, see
    /// [`crate::Geometric::index_from_uniform`]), within-stair position,
    /// and stair side, in draw order.
    ///
    /// The law mirrors [`SingleUniform`](crate::SingleUniform) with arity
    /// four: `sample(rng)` is exactly
    /// `sample_from_uniforms([rng.gen(); 4])` — same arithmetic, same bits.
    /// This is the hook the raw-uniform tape uses to serve staircase draws
    /// ([`crate::BlockBuffer::next_staircase`]), which is what lets the
    /// staircase measurement mechanism share one buffered stream with the
    /// Laplace/Gumbel/discrete families.
    #[inline]
    pub fn sample_from_uniforms(&self, u: [f64; Self::URANDS]) -> f64 {
        let sign = if u[0] < 0.5 { 1.0 } else { -1.0 };
        let g = self.geometric.index_from_uniform(u[1]) as f64;
        let inner = u[3] < self.inner_side_probability();
        let magnitude = if inner {
            (g + self.gamma * u[2]) * self.delta
        } else {
            (g + self.gamma + (1.0 - self.gamma) * u[2]) * self.delta
        };
        sign * magnitude
    }

    /// Uniform draws one staircase sample consumes (the Geng–Viswanath
    /// four-variable representation).
    pub const URANDS: usize = 4;
}

impl ContinuousDistribution for Staircase {
    /// Four uniform draws through
    /// [`sample_from_uniforms`](Self::sample_from_uniforms) — the arithmetic
    /// exists exactly once, so the raw-uniform tape path is bit-identical by
    /// construction.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_from_uniforms([rng.gen(), rng.gen(), rng.gen(), rng.gen()])
    }

    fn pdf(&self, x: f64) -> f64 {
        let t = x.abs() / self.delta;
        let k = t.floor();
        let frac = t - k;
        let decay = self.b.powf(if frac < self.gamma { k } else { k + 1.0 });
        self.height() * decay
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 1.0 - self.cdf(-x);
        }
        let t = x / self.delta;
        let m = t.floor();
        let frac = t - m;
        // Mass of the complete stairs [0, mΔ): half of (1 - b^m).
        let complete = 0.5 * (1.0 - self.b.powf(m));
        let a = self.height() * self.delta; // height per unit of `frac`
        let within = if frac < self.gamma {
            a * self.b.powf(m) * frac
        } else {
            a * self.b.powf(m) * self.gamma + a * self.b.powf(m + 1.0) * (frac - self.gamma)
        };
        0.5 + complete + within
    }

    fn quantile(&self, p: f64) -> Result<f64, NoiseError> {
        let p = require_open_unit("p", p)?;
        // Symmetric: solve for p >= 0.5 and mirror.
        if p < 0.5 {
            return Ok(-self.quantile(1.0 - p)?);
        }
        // Bisection over [0, hi]; expand hi until cdf(hi) > p.
        let mut hi = self.delta;
        let mut guard = 0;
        while self.cdf(hi) < p {
            hi *= 2.0;
            guard += 1;
            if guard > 200 {
                return Err(NoiseError::NoConvergence {
                    what: "staircase quantile",
                });
            }
        }
        let mut lo = 0.0;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    fn mean(&self) -> f64 {
        0.0
    }

    /// Closed-form variance via the sampling representation:
    /// `Var = Δ²·E[M²]` with `M` the (unit-width) magnitude mixture.
    fn variance(&self) -> f64 {
        let g1 = self.geometric.mean();
        let g2 = self.geometric.second_moment();
        let c = self.gamma;
        let w = 1.0 - c;
        // Inner side: M = G + γU.
        let inner = g2 + c * g1 + c * c / 3.0;
        // Outer side: M = G + γ + (1-γ)U.
        let outer = g2 + 2.0 * g1 * (c + w / 2.0) + c * c + c * w + w * w / 3.0;
        let p0 = self.inner_side_probability();
        (p0 * inner + (1.0 - p0) * outer) * self.delta * self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::stats::{ks_statistic, RunningMoments};
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Staircase::new(0.0, 1.0, 0.5).is_err());
        assert!(Staircase::new(1.0, 0.0, 0.5).is_err());
        assert!(Staircase::new(1.0, 1.0, 0.0).is_err());
        assert!(Staircase::new(1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn optimal_gamma_formula() {
        let s = Staircase::optimal(2.0, 1.0).unwrap();
        assert!((s.gamma() - 1.0 / (1.0 + 1.0f64.exp())).abs() < 1e-15);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let s = Staircase::new(1.0, 1.0, 0.3).unwrap();
        let (a, b, n) = (-40.0, 40.0, 800_000);
        let h = (b - a) / n as f64;
        let mut area = 0.0;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            area += 0.5 * h * (s.pdf(x0) + s.pdf(x0 + h));
        }
        assert!((area - 1.0).abs() < 1e-4, "area = {area}");
    }

    #[test]
    fn pdf_is_a_staircase() {
        let s = Staircase::new(1.0, 2.0, 0.5).unwrap();
        let a = s.height();
        let b = (-1.0f64).exp();
        // Inner region of stair 0: [0, 1)
        assert!((s.pdf(0.5) - a).abs() < 1e-12);
        // Outer region of stair 0: [1, 2)
        assert!((s.pdf(1.5) - a * b).abs() < 1e-12);
        // Inner region of stair 1: [2, 3)
        assert!((s.pdf(2.5) - a * b).abs() < 1e-12);
        // Outer region of stair 1: [3, 4)
        assert!((s.pdf(3.5) - a * b * b).abs() < 1e-12);
        // Symmetry
        assert!((s.pdf(-1.5) - s.pdf(1.5)).abs() < 1e-15);
    }

    #[test]
    fn dp_log_ratio_bounded_for_unit_shift() {
        // The staircase guarantees f(x)/f(x + Δ') <= e^ε for |Δ'| <= Δ.
        let s = Staircase::new(0.8, 1.0, 0.25).unwrap();
        for i in 0..400 {
            let x = -10.0 + i as f64 * 0.05;
            let ratio = (s.pdf(x) / s.pdf(x + 1.0)).ln().abs();
            assert!(ratio <= 0.8 + 1e-9, "x = {x}, ratio = {ratio}");
        }
    }

    #[test]
    fn cdf_matches_numeric_integral() {
        let s = Staircase::new(1.3, 1.0, 0.4).unwrap();
        for x in [-2.7, -1.0, -0.2, 0.0, 0.35, 0.9, 1.4, 3.2] {
            let (a, n) = (-35.0, 400_000);
            let h = (x - a) / n as f64;
            let mut area = 0.0;
            for i in 0..n {
                let x0 = a + i as f64 * h;
                area += 0.5 * h * (s.pdf(x0) + s.pdf(x0 + h));
            }
            assert!(
                (area - s.cdf(x)).abs() < 1e-4,
                "x = {x}: {area} vs {}",
                s.cdf(x)
            );
        }
    }

    #[test]
    fn sampler_matches_cdf_ks() {
        let s = Staircase::new(1.0, 1.0, 0.35).unwrap();
        let xs = s.sample_n(&mut rng_from_seed(8), 50_000);
        let d = ks_statistic(&xs, |x| s.cdf(x));
        assert!(d < 0.009, "KS = {d}");
    }

    #[test]
    fn closed_form_variance_matches_samples() {
        let s = Staircase::new(0.7, 2.0, 0.3).unwrap();
        let mut rng = rng_from_seed(10);
        let mut m = RunningMoments::new();
        for _ in 0..300_000 {
            m.push(s.sample(&mut rng));
        }
        let rel = (m.variance() - s.variance()).abs() / s.variance();
        assert!(
            rel < 0.03,
            "rel var err = {rel}: {} vs {}",
            m.variance(),
            s.variance()
        );
    }

    #[test]
    fn staircase_beats_laplace_variance_at_high_eps() {
        // Geng-Viswanath: staircase strictly dominates Laplace for large ε.
        let eps = 4.0;
        let stair = Staircase::optimal(eps, 1.0).unwrap();
        let lap_var = 2.0 / (eps * eps);
        assert!(
            stair.variance() < lap_var,
            "{} !< {lap_var}",
            stair.variance()
        );
    }

    #[test]
    fn transform_is_finite_at_uniform_endpoints() {
        let s = Staircase::new(1.0, 1.0, 0.3).unwrap();
        let edge = [0.0, f64::MIN_POSITIVE, 0.5, 1.0 - f64::EPSILON / 2.0, 1.0];
        for &a in &edge {
            for &b in &edge {
                let x = s.sample_from_uniforms([a, b, a, b]);
                assert!(x.is_finite(), "u = [{a:e}, {b:e}, ..] gave {x}");
            }
        }
    }

    proptest! {
        #[test]
        fn sample_matches_transform_bitwise(seed in 0u64..10_000, eps in 0.1f64..4.0) {
            // The four-uniform law behind the tape serving path.
            let s = Staircase::new(eps, 1.5, 0.35).unwrap();
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            for _ in 0..16 {
                let direct = s.sample(&mut a);
                let via_u = s.sample_from_uniforms([b.gen(), b.gen(), b.gen(), b.gen()]);
                prop_assert!(direct.to_bits() == via_u.to_bits());
            }
        }

        #[test]
        fn quantile_inverts_cdf(p in 0.01f64..0.99, eps in 0.2f64..4.0, gamma in 0.05f64..0.95) {
            let s = Staircase::new(eps, 1.0, gamma).unwrap();
            let x = s.quantile(p).unwrap();
            prop_assert!((s.cdf(x) - p).abs() < 1e-6);
        }

        #[test]
        fn cdf_monotone(eps in 0.2f64..4.0, x in -10.0f64..10.0) {
            let s = Staircase::new(eps, 1.0, 0.5).unwrap();
            prop_assert!(s.cdf(x) <= s.cdf(x + 0.1) + 1e-12);
        }
    }
}
