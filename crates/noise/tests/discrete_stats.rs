//! Statistical acceptance tests for the batched discrete Laplace sampler.
//!
//! The Chen–Machanavajjhala lesson (see PAPERS.md) is that SVT-style privacy
//! claims die quietly when the *sampling* is subtly wrong, so the batched
//! discrete fast path ships with two layers of evidence:
//!
//! 1. **Distribution-level**: chi-square goodness-of-fit of
//!    [`DiscreteLaplace::fill_values_into`]'s batched output against the
//!    closed-form pmf, at significance 1e-4 — a change to the tail
//!    inversion that shifts mass between lattice points fails here even if
//!    every moment test still passes.
//! 2. **Bit-level**: proptests asserting the batched fills and the
//!    [`BlockBuffer`] serving path are *bit-identical* to a sequential
//!    [`sample_value`](DiscreteDistribution::sample_value) loop on the same
//!    RNG stream — the stream-discipline contract that keeps every
//!    execution path one mechanism.

use free_gap_noise::rng::rng_from_seed;
use free_gap_noise::{BlockBuffer, DiscreteDistribution, DiscreteLaplace};
use proptest::prelude::*;

/// Standard-normal quantile of `1 - 1e-4` (one-sided).
const Z_1E4: f64 = 3.719_016_485_455_68;

/// Chi-square quantile at upper-tail probability 1e-4 for `df` degrees of
/// freedom, by the Wilson–Hilferty cube approximation (accurate to a few
/// permille for `df ≥ 5`, which every test below satisfies).
fn chi2_crit_1e4(df: usize) -> f64 {
    let k = df as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + Z_1E4 * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Chi-square statistic of `n` batched draws from `dist` against its pmf,
/// with per-index bins over `-max_k..=max_k` plus two aggregated tail bins.
/// Returns `(statistic, bins)`.
fn chi2_against_pmf(dist: &DiscreteLaplace, n: usize, max_k: i64, seed: u64) -> (f64, usize) {
    let mut values = vec![0.0f64; n];
    dist.fill_values_into(&mut rng_from_seed(seed), &mut values);
    // Bins: [-max_k ..= max_k] at offsets 0..2K, left tail, right tail.
    let mut observed = vec![0u64; 2 * max_k as usize + 3];
    let (left, right) = (observed.len() - 2, observed.len() - 1);
    for v in values {
        let k = (v / dist.base()).round() as i64;
        if k < -max_k {
            observed[left] += 1;
        } else if k > max_k {
            observed[right] += 1;
        } else {
            observed[(k + max_k) as usize] += 1;
        }
    }
    let mut stat = 0.0;
    for k in -max_k..=max_k {
        let expect = n as f64 * dist.pmf(k);
        assert!(
            expect >= 5.0,
            "bin k = {k} under-filled (expected {expect:.1}); shrink max_k"
        );
        let diff = observed[(k + max_k) as usize] as f64 - expect;
        stat += diff * diff / expect;
    }
    // Tails: P(K < -max_k) = F(-max_k - 1), P(K > max_k) = 1 - F(max_k).
    let tail = dist.cdf(-max_k - 1) * n as f64;
    assert!(tail >= 5.0, "tail bins under-filled (expected {tail:.1})");
    for &obs in &[observed[left], observed[right]] {
        let diff = obs as f64 - tail;
        stat += diff * diff / tail;
    }
    (stat, 2 * max_k as usize + 3)
}

#[test]
fn batched_fill_matches_closed_form_pmf_chi_square() {
    // (epsilon, gamma, max_k): rates spanning heavy-tailed (εγ = 0.05,
    // mean |k| ≈ 20) through concentrated (εγ = 2), on unit and sub-unit
    // lattices. 400k draws per config.
    let configs = [
        (0.05f64, 1.0f64, 40i64),
        (0.3, 1.0, 18),
        (1.0, 1.0, 7),
        (2.0, 0.5, 7),
        (0.8, 0.25, 9),
    ];
    for (i, &(eps, gamma, max_k)) in configs.iter().enumerate() {
        let dist = DiscreteLaplace::new(eps, gamma).unwrap();
        let (stat, bins) = chi2_against_pmf(&dist, 400_000, max_k, 0xD15C + i as u64);
        let crit = chi2_crit_1e4(bins - 1);
        assert!(
            stat < crit,
            "ε = {eps}, γ = {gamma}: chi² = {stat:.1} ≥ {crit:.1} at significance 1e-4 \
             ({bins} bins)"
        );
    }
}

#[test]
fn chi_square_detects_a_corrupted_sampler() {
    // Power check so the acceptance test cannot rot into a tautology: the
    // same statistic against a *wrong* reference pmf (neighboring rate)
    // must blow past the same critical value.
    let dist = DiscreteLaplace::new(0.3, 1.0).unwrap();
    let wrong = DiscreteLaplace::new(0.35, 1.0).unwrap();
    let n = 400_000;
    let max_k = 18i64;
    let mut values = vec![0.0f64; n];
    dist.fill_values_into(&mut rng_from_seed(0xBAD), &mut values);
    let mut stat = 0.0;
    for k in -max_k..=max_k {
        let observed = values
            .iter()
            .filter(|v| (**v / dist.base()).round() as i64 == k)
            .count() as f64;
        let expect = n as f64 * wrong.pmf(k);
        stat += (observed - expect) * (observed - expect) / expect;
    }
    let crit = chi2_crit_1e4(2 * max_k as usize);
    assert!(
        stat > crit,
        "the test has no power: chi² = {stat:.1} vs crit {crit:.1}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched fill consumes the RNG exactly like a sequential
    /// `sample_value` loop: same stream position, same bits out — across
    /// chunk boundaries (n spans multiples of the 512-draw chunk).
    #[test]
    fn batched_fill_is_bit_identical_to_sequential_draws(
        seed in 0u64..50_000,
        eps in 0.05f64..3.0,
        gamma_idx in 0usize..3,
        n in 0usize..1400,
    ) {
        let gamma = [0.25f64, 0.5, 1.0][gamma_idx];
        let dist = DiscreteLaplace::new(eps, gamma).unwrap();
        let mut batched = vec![0.0f64; n];
        dist.fill_values_into(&mut rng_from_seed(seed), &mut batched);
        let mut rng = rng_from_seed(seed);
        for (i, &b) in batched.iter().enumerate() {
            let s = dist.sample_value(&mut rng);
            prop_assert!(s.to_bits() == b.to_bits(), "draw {i}: sequential {s} vs batched {b}");
        }
    }

    /// Offset-fused twin: `fill_values_into_offset` equals
    /// `base[i] + sample_value` in a loop, bit for bit.
    #[test]
    fn batched_offset_fill_is_bit_identical(
        seed in 0u64..50_000,
        eps in 0.05f64..3.0,
        n in 0usize..700,
    ) {
        let dist = DiscreteLaplace::new(eps, 1.0).unwrap();
        let base: Vec<f64> = (0..n).map(|i| (i as f64) * 3.0 - 50.0).collect();
        let mut fused = vec![0.0f64; n];
        dist.fill_values_into_offset(&mut rng_from_seed(seed), &base, &mut fused);
        let mut rng = rng_from_seed(seed);
        for i in 0..n {
            let expect = base[i] + dist.sample_value(&mut rng);
            prop_assert!(expect.to_bits() == fused[i].to_bits(), "slot {i}");
        }
    }

    /// The block-buffered serving path (the scratch providers' substrate)
    /// replays the sequential stream bit-for-bit at any rate mix.
    #[test]
    fn block_buffer_discrete_serving_is_bit_identical(
        seed in 0u64..50_000,
        eps_a in 0.05f64..3.0,
        eps_b in 0.05f64..3.0,
        n in 1usize..600,
    ) {
        let a = DiscreteLaplace::new(eps_a, 1.0).unwrap();
        let b = DiscreteLaplace::new(eps_b, 0.5).unwrap();
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(seed);
        let mut expect_rng = rng_from_seed(seed);
        block.begin();
        for i in 0..n {
            let dist = if i % 3 == 0 { &b } else { &a };
            let got = block.next_discrete(dist, &mut rng);
            let want = dist.sample_value(&mut expect_rng);
            prop_assert!(got.to_bits() == want.to_bits(), "draw {i}");
        }
    }
}
