//! Statistical acceptance tests for the tape-served Gumbel and Exponential
//! samplers — the continuous counterpart of `discrete_stats.rs`.
//!
//! The exponential mechanism and the staircase baseline now draw through
//! the raw-uniform [`BlockBuffer`] tape; bit-equality across execution
//! paths says nothing if the one shared transform is wrong, so the tape
//! path ships with two layers of evidence:
//!
//! 1. **Distribution-level**: chi-square goodness-of-fit of tape-served
//!    fills against the closed-form CDFs at significance 1e-4, over
//!    equiprobable quantile bins (a shift of the endpoint-guard convention
//!    that moved tail mass fails here even if every moment test passes),
//!    plus a power check against a corrupted reference.
//! 2. **Bit-level**: proptests asserting the tape-served draws — cached
//!    watermark path, uncached per-draw path, and `peek` slabs — are
//!    bit-identical to a sequential `sample` loop on the same RNG stream.

use free_gap_noise::rng::rng_from_seed;
use free_gap_noise::{
    BlockBuffer, ContinuousDistribution, Exponential, Gumbel, Laplace, SingleUniform,
};
use proptest::prelude::*;

/// Standard-normal quantile of `1 - 1e-4` (one-sided).
const Z_1E4: f64 = 3.719_016_485_455_68;

/// Chi-square quantile at upper-tail probability 1e-4 for `df` degrees of
/// freedom (Wilson–Hilferty cube approximation, as in `discrete_stats.rs`).
fn chi2_crit_1e4(df: usize) -> f64 {
    let k = df as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + Z_1E4 * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Draws `n` values from `dist` through the tape (the watermark-cached
/// `next` serving path, `dist` as the run's continuous distribution).
fn tape_served<D: SingleUniform>(dist: &D, n: usize, seed: u64) -> Vec<f64> {
    let mut block = BlockBuffer::new();
    let mut rng = rng_from_seed(seed);
    block.begin();
    (0..n).map(|_| block.next(dist, &mut rng)).collect()
}

/// Chi-square statistic of `values` against `dist`'s closed form over
/// `bins` equiprobable quantile bins. Returns `(statistic, bins)`.
fn chi2_equiprobable<D: ContinuousDistribution>(
    dist: &D,
    values: &[f64],
    bins: usize,
) -> (f64, usize) {
    // Bin edges at the i/bins quantiles: every bin expects n/bins draws.
    let edges: Vec<f64> = (1..bins)
        .map(|i| {
            dist.quantile(i as f64 / bins as f64)
                .expect("quantile in (0, 1)")
        })
        .collect();
    let mut observed = vec![0u64; bins];
    for &v in values {
        let bin = edges.partition_point(|e| *e < v);
        observed[bin] += 1;
    }
    let expect = values.len() as f64 / bins as f64;
    assert!(expect >= 5.0, "bins too fine for the sample size");
    let stat = observed
        .iter()
        .map(|&o| {
            let d = o as f64 - expect;
            d * d / expect
        })
        .sum();
    (stat, bins)
}

#[test]
fn tape_served_gumbel_matches_closed_form_chi_square() {
    // Scales spanning sub-unit through wide; 200k tape-served draws each.
    for (i, &scale) in [0.25f64, 1.0, 7.5].iter().enumerate() {
        let g = Gumbel::new(scale).unwrap();
        let values = tape_served(&g, 200_000, 0x6B31 + i as u64);
        let (stat, bins) = chi2_equiprobable(&g, &values, 64);
        let crit = chi2_crit_1e4(bins - 1);
        assert!(
            stat < crit,
            "β = {scale}: chi² = {stat:.1} ≥ {crit:.1} at significance 1e-4"
        );
    }
}

#[test]
fn tape_served_exponential_matches_closed_form_chi_square() {
    for (i, &scale) in [0.1f64, 1.0, 12.0].iter().enumerate() {
        let e = Exponential::new(scale).unwrap();
        let values = tape_served(&e, 200_000, 0xE4B + i as u64);
        let (stat, bins) = chi2_equiprobable(&e, &values, 64);
        let crit = chi2_crit_1e4(bins - 1);
        assert!(
            stat < crit,
            "β = {scale}: chi² = {stat:.1} ≥ {crit:.1} at significance 1e-4"
        );
    }
}

#[test]
fn chi_square_detects_a_corrupted_sampler() {
    // Power check so the acceptance tests cannot rot into tautologies: the
    // same statistic against a *wrong* reference (neighboring scale) must
    // blow past the same critical value, for both families.
    let values = tape_served(&Gumbel::new(1.0).unwrap(), 200_000, 0xBAD6);
    let (stat, bins) = chi2_equiprobable(&Gumbel::new(1.08).unwrap(), &values, 64);
    assert!(
        stat > chi2_crit_1e4(bins - 1),
        "no power against a wrong Gumbel scale: chi² = {stat:.1}"
    );
    let values = tape_served(&Exponential::new(1.0).unwrap(), 200_000, 0xBADE);
    let (stat, bins) = chi2_equiprobable(&Exponential::new(1.08).unwrap(), &values, 64);
    assert!(
        stat > chi2_crit_1e4(bins - 1),
        "no power against a wrong Exponential scale: chi² = {stat:.1}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cached tape path serves Gumbel/Exponential draws bit-identically
    /// to a sequential `sample` loop, across refill boundaries.
    #[test]
    fn tape_serving_is_bit_identical_to_sequential_draws(
        seed in 0u64..50_000,
        scale in 0.01f64..50.0,
        n in 1usize..600,
    ) {
        let g = Gumbel::new(scale).unwrap();
        let served = tape_served(&g, n, seed);
        let mut rng = rng_from_seed(seed);
        for (i, &v) in served.iter().enumerate() {
            let want = g.sample(&mut rng);
            prop_assert!(v.to_bits() == want.to_bits(), "gumbel draw {i}");
        }
        let e = Exponential::new(scale).unwrap();
        let served = tape_served(&e, n, seed);
        let mut rng = rng_from_seed(seed);
        for (i, &v) in served.iter().enumerate() {
            let want = e.sample(&mut rng);
            prop_assert!(v.to_bits() == want.to_bits(), "exponential draw {i}");
        }
    }

    /// Peek slabs with Gumbel/Exponential as the run distribution exercise
    /// the lazy per-block transform watermark — served values still replay
    /// the sequential stream, and partial consumption commits correctly.
    #[test]
    fn tape_peek_slabs_replay_the_sequential_stream(
        seed in 0u64..50_000,
        scale in 0.05f64..20.0,
        m in 1usize..5,
        rounds in 1usize..40,
    ) {
        let g = Gumbel::new(scale).unwrap();
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(seed);
        let mut expect_rng = rng_from_seed(seed);
        block.begin();
        for round in 0..rounds {
            let slab = block.peek_tuples(&g, &mut rng, m);
            prop_assert!(slab.len() >= m && slab.len().is_multiple_of(m));
            let take = (slab.len() / m).min(2) * m;
            for (j, &v) in slab[..take].iter().enumerate() {
                let want = g.sample(&mut expect_rng);
                prop_assert!(
                    v.to_bits() == want.to_bits(),
                    "round {round}, slot {j}"
                );
            }
            block.consume(take);
        }
    }

    /// The uncached per-draw path (the draw-provider serving shape) mixes
    /// Gumbel, Exponential and cached Laplace draws on one tape without
    /// breaking the sequential order.
    #[test]
    fn uncached_mixed_families_share_one_sequential_stream(
        seed in 0u64..50_000,
        beta_g in 0.1f64..10.0,
        beta_e in 0.1f64..10.0,
        n in 1usize..400,
    ) {
        let unit = Laplace::new(1.0).unwrap();
        let g = Gumbel::new(beta_g).unwrap();
        let e = Exponential::new(beta_e).unwrap();
        let mut block = BlockBuffer::new();
        let mut rng = rng_from_seed(seed);
        let mut expect_rng = rng_from_seed(seed);
        block.begin();
        for i in 0..n {
            let (got, want) = match i % 3 {
                0 => (block.next(&unit, &mut rng), unit.sample(&mut expect_rng)),
                1 => (block.next_uncached(&g, &mut rng), g.sample(&mut expect_rng)),
                _ => (block.next_uncached(&e, &mut rng), e.sample(&mut expect_rng)),
            };
            prop_assert!(got.to_bits() == want.to_bits(), "draw {i}");
        }
    }
}
