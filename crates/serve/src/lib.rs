//! # free-gap-serve
//!
//! The long-lived multi-tenant serving layer over the `free-gap-core`
//! mechanism library — the "data curator answering a stream of analyst
//! queries" deployment the paper's interactive mechanisms assume (Ding,
//! Wang, Zhang, Kifer; VLDB 2019), rather than one-shot Monte-Carlo
//! batches.
//!
//! One server process holds many tenants. Each tenant owns:
//!
//! * a [`BudgetLedger`] — its total privacy budget ε behind an atomic
//!   debit-or-reject gate, so no interleaving of concurrent requests can
//!   oversubscribe it (rejections are typed:
//!   [`server::RejectReason::Budget`] carries the requested/remaining ε);
//! * a family of derived noise sub-streams — request `s` of tenant `t`
//!   draws from `derive_fast_stream(tenant_seed, s)`, the same
//!   sharded-generator convention as `examples/streaming_svt.rs`, which
//!   makes every response bit-reproducible per server seed regardless of
//!   worker count or thread interleaving;
//! * open streaming-SVT [`sessions`](SvtSession) — resumable
//!   sparse-vector runs driven incrementally across requests, with their
//!   unspent budget share returned on close or idle eviction, exactly
//!   once.
//!
//! Requests speak the unified call surface from `free_gap_core::api`:
//! a [`server::MechanismRequest`] carries an
//! [`AnyMechanism`](free_gap_core::AnyMechanism) (or a session verb) and
//! [`QueryServer::handle`] answers with a
//! [`server::MechanismResponse`]. Each serving thread reuses one
//! [`server::WorkerScratch`] across requests, so the steady state runs on
//! the same warm-buffer fast paths as the Monte-Carlo harness.
//!
//! The [`mod@bench`] module is the `repro serve-bench` closed-loop load
//! generator: p50/p95/p99 latency, rejection counts and a reproducibility
//! digest into `BENCH_serve.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Serving code must not take the process down: recover or reject instead
// of panicking (free-gap-lint's panic-freedom rule checks this crate too).
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bench;
pub mod ledger;
pub mod server;
pub mod session;

pub use bench::{ServeBenchConfig, ServeBenchReport};
pub use ledger::BudgetLedger;
pub use server::{MechanismRequest, MechanismResponse, QueryServer, RequestBody, WorkerScratch};
pub use session::SvtSession;
