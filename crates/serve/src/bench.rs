//! `repro serve-bench`: a closed-loop load generator over [`QueryServer`].
//!
//! Unlike the `repro bench` throughput grid — which times bare mechanism
//! loops — this benchmark measures the *serving layer*: per-request latency
//! through the tenant lock, ledger debit, derived sub-stream setup and
//! mechanism dispatch, plus the rejection counts a budget-enforcing server
//! actually produces (tenants are provisioned with less ε than their
//! request script wants, so the tail of every script is budget-rejected by
//! design). Reported as p50/p95/p99 latency, not just runs/sec.
//!
//! ## Determinism
//!
//! Each tenant's request script is a pure function of `(tenant, request
//! index)`, tenants are partitioned across workers in contiguous runs by
//! the quotient rule `worker(t) = t × workers / tenants` (after clamping
//! the worker count to the tenant count, so no spawned worker ever idles),
//! and every worker drives its tenants round-robin in index order — so the
//! per-tenant request order is identical for any worker count. Combined
//! with the server's per-tenant derived noise sub-streams, the fold of
//! every response digest per tenant (XORed across tenants into
//! [`ServeBenchReport::digest`]) is bit-identical for 1 and 4 workers on
//! the same seed (`tests/serve.rs` pins this). Latencies are the only
//! numbers that vary run to run.
//!
//! Degenerate configurations (zero tenants, a zero/non-finite duration
//! cap, a non-positive QPS target) are rejected up front with
//! [`MechanismError::InvalidBenchConfig`] instead of silently clamped,
//! and a worker thread that panics mid-run surfaces as
//! [`MechanismError::WorkerPanicked`] after every sibling is joined —
//! never a hang or an opaque propagated unwind.
//!
//! ## `BENCH_serve.json` protocol
//!
//! A single flat JSON object, schema `free-gap-serve/bench/v1`:
//! configuration echo (`seed`, `tenants`, `workers`,
//! `requests_per_tenant`, `epsilon_per_tenant`, `par_threshold` — `null`
//! when the parallel path is off), outcome counts
//! (`completed`, `rejected`, `budget_rejected`, `evictions`), the latency
//! quantiles in microseconds (`p50_us`/`p95_us`/`p99_us`), wall-clock
//! `elapsed_secs` with `requests_per_sec`, and the reproducibility
//! `digest` (hex). `truncated` records whether a `--duration` cap stopped
//! the script early (a truncated digest is only comparable to runs
//! truncated at the same point, so CI leaves the cap off).

use crate::server::{MechanismRequest, QueryServer, RequestBody, WorkerScratch};
use free_gap_core::api::AnyMechanism;
use free_gap_core::exponential_mech::ExponentialMechanism;
use free_gap_core::noisy_max::{ClassicNoisyTopK, DiscreteNoisyTopKWithGap, NoisyTopKWithGap};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, ClassicSparseVector, DiscreteSparseVectorWithGap,
    MultiBranchAdaptiveSparseVector, SparseVectorWithGap,
};
use free_gap_core::staircase_mech::StaircaseMechanism;
use free_gap_core::{ExponentialTopK, MechanismError};
use free_gap_noise::rng::{derive_fast_stream, splitmix64};
use rand::Rng;
use std::time::{Duration, Instant};

/// Configuration of one serve-bench run.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Root seed: workload, thresholds and every tenant noise stream
    /// derive from it.
    pub seed: u64,
    /// Number of registered tenants.
    pub tenants: usize,
    /// Serving threads; tenants are partitioned by `tenant % workers`.
    pub workers: usize,
    /// Script length per tenant.
    pub requests_per_tenant: usize,
    /// Total privacy budget each tenant is provisioned with. The defaults
    /// cover roughly 60% of the script's demand, so budget rejections are
    /// exercised on every run.
    pub epsilon_per_tenant: f64,
    /// Optional wall-clock cap (`--duration`): workers stop issuing new
    /// requests once it elapses and the report is marked `truncated`.
    pub duration_cap_secs: Option<f64>,
    /// Optional aggregate request-rate target (`--qps`): workers pace
    /// themselves to `qps / workers` each. Affects timing only, never the
    /// per-tenant request order or digest.
    pub qps: Option<f64>,
    /// Optional opt-in (`--par-threshold`) to the server's intra-run
    /// parallel call path for one-shot calls with at least this many
    /// queries (see [`QueryServer::with_par_threshold`]). Changes the
    /// noise stream those calls draw, so the digest is only comparable
    /// between runs with the same setting.
    pub par_threshold: Option<usize>,
}

impl ServeBenchConfig {
    /// The full configuration: 8 tenants × 2000 requests over 4 workers.
    pub fn full(seed: u64) -> Self {
        Self::sized(seed, 8, 2000)
    }

    /// The CI smoke configuration (`--quick`): 4 tenants × 300 requests,
    /// same script shape and invariants, a fraction of the wall time.
    pub fn quick(seed: u64) -> Self {
        Self::sized(seed, 4, 300)
    }

    fn sized(seed: u64, tenants: usize, requests_per_tenant: usize) -> Self {
        Self {
            seed,
            tenants,
            workers: 4,
            requests_per_tenant,
            // The script demands ~0.72ε per request (see `script_request`);
            // provisioning 0.45 exhausts tenants ~60% through.
            epsilon_per_tenant: 0.45 * requests_per_tenant as f64,
            duration_cap_secs: None,
            qps: None,
            par_threshold: None,
        }
    }

    fn planned_requests(&self) -> usize {
        self.tenants * self.requests_per_tenant
    }

    /// Rejects degenerate configurations with a typed error before any
    /// tenant is registered or thread spawned: zero tenants would serve
    /// nothing, and a zero or non-finite duration cap / QPS target is
    /// always a mistyped flag, not a meaningful run.
    pub fn validate(&self) -> Result<(), MechanismError> {
        if self.tenants == 0 {
            return Err(MechanismError::InvalidBenchConfig {
                name: "tenants",
                requirement: "must be at least 1",
            });
        }
        if let Some(d) = self.duration_cap_secs {
            if !(d.is_finite() && d > 0.0) {
                return Err(MechanismError::InvalidBenchConfig {
                    name: "duration",
                    requirement: "must be a positive, finite number of seconds",
                });
            }
        }
        if let Some(q) = self.qps {
            if !(q.is_finite() && q > 0.0) {
                return Err(MechanismError::InvalidBenchConfig {
                    name: "qps",
                    requirement: "must be a positive, finite requests-per-second rate",
                });
            }
        }
        Ok(())
    }
}

/// The tenants worker `worker` owns under the contiguous quotient
/// partition `worker(t) = t × workers / tenants`. With `workers ≤
/// tenants` (the caller clamps) every worker owns at least one tenant —
/// unlike the old `tenant % workers` rule, which left workers idle
/// whenever there were fewer tenants than workers.
fn tenants_for_worker(tenants: usize, workers: usize, worker: usize) -> Vec<u64> {
    (0..tenants as u64)
        .filter(|&t| (t as usize).wrapping_mul(workers) / tenants == worker)
        .collect()
}

/// Spawns `workers` scoped threads over `body` and joins **every** handle
/// before returning, mapping the first panic to
/// [`MechanismError::WorkerPanicked`]. Joining each handle in a plain
/// loop matters: short-circuiting on the first failure would drop the
/// remaining handles back to the scope, which re-raises the captured
/// panic instead of returning the typed error.
fn run_partitioned<T, F>(workers: usize, body: F) -> Result<Vec<T>, MechanismError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    std::thread::scope(|scope| {
        let body = &body;
        let handles: Vec<_> = (0..workers).map(|w| scope.spawn(move || body(w))).collect();
        let mut out = Vec::with_capacity(workers);
        let mut panicked = None;
        for (worker, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(v) => out.push(v),
                Err(_) => {
                    panicked.get_or_insert(worker);
                }
            }
        }
        match panicked {
            None => Ok(out),
            Some(worker) => Err(MechanismError::WorkerPanicked { worker }),
        }
    })
}

/// The outcome of one serve-bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// Requests the script planned (`tenants × requests_per_tenant`).
    pub planned: usize,
    /// Requests actually served (less than `planned` only when a
    /// `--duration` cap truncated the run).
    pub completed: usize,
    /// Responses that were rejections of any kind.
    pub rejected: usize,
    /// The subset rejected specifically for budget exhaustion.
    pub budget_rejected: usize,
    /// Idle sessions the server evicted during the run.
    pub evictions: u64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile request latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Wall-clock duration of the serving phase.
    pub elapsed_secs: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// XOR over tenants of each tenant's ordered response-digest fold —
    /// bit-identical across worker counts for a fixed seed and untruncated
    /// run.
    pub digest: u64,
    /// Whether a `--duration` cap stopped the script early.
    pub truncated: bool,
}

/// The per-call mechanism grid the script cycles through: the same ten
/// mechanisms as the throughput grid, at `k = 5`, over the shared
/// integer-valued workload (so the finite-precision mechanisms accept it).
fn script_grid(threshold: f64) -> Result<Vec<AnyMechanism>, free_gap_core::MechanismError> {
    let k = 5;
    Ok(vec![
        NoisyTopKWithGap::new(k, 0.7, true)?.into(),
        ClassicNoisyTopK::new(k, 0.7, true)?.into(),
        DiscreteNoisyTopKWithGap::new(k, 0.7, true)?.into(),
        ExponentialTopK::new(ExponentialMechanism::new(0.7, true)?, k)?.into(),
        StaircaseMechanism::new(0.7)?.into(),
        SparseVectorWithGap::new(k, 0.7, threshold, true)?.into(),
        ClassicSparseVector::new(k, 0.7, threshold, true)?.into(),
        AdaptiveSparseVector::new(k, 0.7, threshold, true)?.into(),
        MultiBranchAdaptiveSparseVector::new(k, 0.7, threshold, true, 3)?.into(),
        DiscreteSparseVectorWithGap::new(k, 0.7, threshold, true)?.into(),
    ])
}

/// Integer-valued Zipf-like counting workload shared by every call
/// (deterministic in the seed; integer so the discrete mechanisms accept
/// it without a parallel lattice copy).
fn synthetic_workload(seed: u64) -> Vec<f64> {
    let mut rng = derive_fast_stream(seed, 0x10AD);
    (0..64u64)
        .map(|j| (100_000.0 / (j + 1) as f64 + rng.gen_range(0.0..50.0)).round())
        .collect()
}

/// Mid-range threshold: descending rank 12 (≈ 2.4k for the script's
/// k = 5), on the integer lattice because the workload is.
fn rank_threshold(workload: &[f64]) -> f64 {
    let mut sorted = workload.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.reverse();
    sorted[12.min(sorted.len() - 1)]
}

/// Request `i` of tenant `t` — a pure function of `(t, i)`, which is what
/// makes the per-tenant response stream independent of worker count. Each
/// 13-request block mixes one-shot calls with a session lifecycle
/// (open → 3 feeds → close), and every 4th block leaks its session
/// unclosed so idle eviction is exercised too.
fn script_request(
    grid: &[AnyMechanism],
    svt: SparseVectorWithGap,
    workload: &[f64],
    t: u64,
    i: usize,
) -> MechanismRequest {
    let slot = i % 13;
    let body = match slot {
        5 => RequestBody::OpenSession {
            session: i as u64,
            svt,
        },
        6..=8 => RequestBody::Feed {
            session: (i - (slot - 5)) as u64,
            queries: feed_slice(workload, i),
        },
        9 if (i / 13) % 4 != 3 => RequestBody::CloseSession {
            session: (i - 4) as u64,
        },
        _ => RequestBody::Call {
            mechanism: grid[(t as usize + i) % grid.len()],
            queries: workload.to_vec(),
        },
    };
    MechanismRequest { tenant: t, body }
}

fn feed_slice(workload: &[f64], i: usize) -> Vec<f64> {
    let start = (i * 3) % (workload.len() - 4);
    workload[start..start + 4].to_vec()
}

#[derive(Debug, Default)]
struct WorkerStats {
    /// `(tenant, ordered digest fold)` for each tenant this worker owns.
    digests: Vec<(u64, u64)>,
    latencies_us: Vec<f64>,
    completed: usize,
    rejected: usize,
    budget_rejected: usize,
    truncated: bool,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    config: &ServeBenchConfig,
    server: &QueryServer,
    grid: &[AnyMechanism],
    svt: SparseVectorWithGap,
    workload: &[f64],
    worker: usize,
    workers: usize,
    start: Instant,
    deadline: Option<Instant>,
) -> WorkerStats {
    let mut scratch = WorkerScratch::new();
    let my_tenants = tenants_for_worker(config.tenants, workers, worker);
    let mut stats = WorkerStats {
        digests: my_tenants
            .iter()
            .map(|&t| {
                let mut s = t ^ 0xD16E_57ED;
                (t, splitmix64(&mut s))
            })
            .collect(),
        latencies_us: Vec::with_capacity(my_tenants.len() * config.requests_per_tenant),
        ..WorkerStats::default()
    };
    // The rate was validated up front; each of the `workers` live threads
    // paces itself to an equal share of it.
    let pace = config.qps.map(|q| workers as f64 / q);
    let mut issued = 0u64;
    'script: for i in 0..config.requests_per_tenant {
        for (slot, &t) in my_tenants.iter().enumerate() {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    stats.truncated = true;
                    break 'script;
                }
            }
            if let Some(interval) = pace {
                let due = start + Duration::from_secs_f64(interval * issued as f64);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
            let req = script_request(grid, svt, workload, t, i);
            let begun = Instant::now();
            let resp = server.handle(&req, &mut scratch);
            stats.latencies_us.push(begun.elapsed().as_secs_f64() * 1e6);
            issued += 1;
            stats.completed += 1;
            if resp.is_rejected() {
                stats.rejected += 1;
                if resp.is_budget_rejected() {
                    stats.budget_rejected += 1;
                }
            }
            stats.digests[slot].1 = resp.digest(stats.digests[slot].1);
        }
    }
    stats
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Runs the closed-loop load generator: registers the tenants, serves each
/// tenant's deterministic request script from `config.workers` threads,
/// and aggregates latency quantiles, rejection counts and the
/// reproducibility digest.
pub fn run(config: &ServeBenchConfig) -> Result<ServeBenchReport, free_gap_core::MechanismError> {
    config.validate()?;
    let workload = synthetic_workload(config.seed);
    let threshold = rank_threshold(&workload);
    let grid = script_grid(threshold)?;
    // Sessions run a cheaper SVT than the call grid so open/close budget
    // flow is visible next to the calls.
    let session_svt = SparseVectorWithGap::new(3, 0.5, threshold, true)?;
    // 32 idle ticks: leaked sessions (every 4th block) get evicted a few
    // blocks later, well within even the --quick script.
    let mut server = QueryServer::new(config.seed).with_max_idle(32);
    if let Some(n) = config.par_threshold {
        server = server.with_par_threshold(n);
    }
    for t in 0..config.tenants as u64 {
        server.register_tenant(t, config.epsilon_per_tenant)?;
    }
    // Clamp to the tenant count so every spawned worker owns at least one
    // tenant (rebalancing never changes the digest: it folds per tenant).
    let workers = config.workers.min(config.tenants).max(1);
    let start = Instant::now();
    let deadline = config
        .duration_cap_secs
        .map(|d| start + Duration::from_secs_f64(d));
    let stats = run_partitioned(workers, |w| {
        worker_loop(
            config,
            &server,
            &grid,
            session_svt,
            &workload,
            w,
            workers,
            start,
            deadline,
        )
    })?;
    let elapsed_secs = start.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = Vec::new();
    let mut digest = 0u64;
    let mut report = ServeBenchReport {
        planned: config.planned_requests(),
        completed: 0,
        rejected: 0,
        budget_rejected: 0,
        evictions: server.evictions(),
        p50_us: 0.0,
        p95_us: 0.0,
        p99_us: 0.0,
        elapsed_secs,
        requests_per_sec: 0.0,
        digest: 0,
        truncated: false,
    };
    for s in stats {
        report.completed += s.completed;
        report.rejected += s.rejected;
        report.budget_rejected += s.budget_rejected;
        report.truncated |= s.truncated;
        latencies.extend(s.latencies_us);
        for (_, d) in s.digests {
            digest ^= d;
        }
    }
    report.digest = digest;
    latencies.sort_by(f64::total_cmp);
    report.p50_us = percentile(&latencies, 0.50);
    report.p95_us = percentile(&latencies, 0.95);
    report.p99_us = percentile(&latencies, 0.99);
    if elapsed_secs > 0.0 {
        report.requests_per_sec = report.completed as f64 / elapsed_secs;
    }
    Ok(report)
}

/// Serializes a report to the `BENCH_serve.json` schema.
pub fn to_json(config: &ServeBenchConfig, report: &ServeBenchReport) -> String {
    let par_threshold = config
        .par_threshold
        .map_or_else(|| "null".to_owned(), |n| n.to_string());
    format!(
        "{{\n  \"schema\": \"free-gap-serve/bench/v1\",\n  \
         \"seed\": {},\n  \"tenants\": {},\n  \"workers\": {},\n  \
         \"requests_per_tenant\": {},\n  \"epsilon_per_tenant\": {:.3},\n  \
         \"par_threshold\": {},\n  \
         \"planned\": {},\n  \"completed\": {},\n  \"rejected\": {},\n  \
         \"budget_rejected\": {},\n  \"evictions\": {},\n  \
         \"latency_us\": {{ \"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2} }},\n  \
         \"elapsed_secs\": {:.6},\n  \"requests_per_sec\": {:.1},\n  \
         \"digest\": \"{:#018x}\",\n  \"truncated\": {}\n}}\n",
        config.seed,
        config.tenants,
        config.workers,
        config.requests_per_tenant,
        config.epsilon_per_tenant,
        par_threshold,
        report.planned,
        report.completed,
        report.rejected,
        report.budget_rejected,
        report.evictions,
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.elapsed_secs,
        report.requests_per_sec,
        report.digest,
        report.truncated,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sorted_positions() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 51.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn script_is_a_pure_function_of_tenant_and_index() {
        let workload = synthetic_workload(7);
        let grid = script_grid(rank_threshold(&workload)).unwrap();
        let svt = SparseVectorWithGap::new(3, 0.5, rank_threshold(&workload), true).unwrap();
        for (t, i) in [(0u64, 0usize), (3, 5), (3, 6), (5, 9), (5, 48)] {
            let a = script_request(&grid, svt, &workload, t, i);
            let b = script_request(&grid, svt, &workload, t, i);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        // Block 3 (i = 48 has i/13 == 3) leaks its session: slot 9 falls
        // through to a Call.
        let leak = script_request(&grid, svt, &workload, 0, 3 * 13 + 9);
        assert!(matches!(leak.body, RequestBody::Call { .. }));
        let close = script_request(&grid, svt, &workload, 0, 9);
        assert!(matches!(
            close.body,
            RequestBody::CloseSession { session: 5 }
        ));
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = ServeBenchConfig::quick(7);
        assert!(ok.validate().is_ok());
        let no_tenants = ServeBenchConfig { tenants: 0, ..ok };
        assert!(matches!(
            no_tenants.validate(),
            Err(MechanismError::InvalidBenchConfig {
                name: "tenants",
                ..
            })
        ));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = ServeBenchConfig {
                duration_cap_secs: Some(bad),
                ..ok
            };
            assert!(matches!(
                cfg.validate(),
                Err(MechanismError::InvalidBenchConfig {
                    name: "duration",
                    ..
                })
            ));
            let cfg = ServeBenchConfig {
                qps: Some(bad),
                ..ok
            };
            assert!(matches!(
                cfg.validate(),
                Err(MechanismError::InvalidBenchConfig { name: "qps", .. })
            ));
        }
        // Well-formed caps pass.
        let capped = ServeBenchConfig {
            duration_cap_secs: Some(1.5),
            qps: Some(200.0),
            ..ok
        };
        assert!(capped.validate().is_ok());
        // run() refuses before doing any work.
        assert!(run(&no_tenants).is_err());
    }

    #[test]
    fn quotient_partition_keeps_every_worker_busy() {
        for tenants in [1usize, 2, 3, 4, 5, 8, 9] {
            for requested in 1usize..=6 {
                let workers = requested.min(tenants).max(1);
                let mut seen: Vec<u64> = Vec::new();
                for w in 0..workers {
                    let owned = tenants_for_worker(tenants, workers, w);
                    assert!(
                        !owned.is_empty(),
                        "worker {w} of {workers} idle with {tenants} tenants"
                    );
                    seen.extend(owned);
                }
                // Disjoint and complete: each tenant served exactly once.
                seen.sort_unstable();
                assert_eq!(seen, (0..tenants as u64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error() {
        // lint:allow(panic-freedom): test deliberately panics a worker
        let result = run_partitioned(3, |w| {
            if w == 1 {
                panic!("worker down");
            }
            w
        });
        assert_eq!(result, Err(MechanismError::WorkerPanicked { worker: 1 }));
        // All-success side: every worker's value comes back in order.
        assert_eq!(run_partitioned(3, |w| w), Ok(vec![0, 1, 2]));
    }

    #[test]
    fn rebalancing_fewer_tenants_than_workers_is_digest_invariant() {
        let base = ServeBenchConfig {
            seed: 11,
            tenants: 2,
            workers: 4,
            requests_per_tenant: 26,
            epsilon_per_tenant: 0.45 * 26.0,
            duration_cap_secs: None,
            qps: None,
            par_threshold: None,
        };
        let wide = run(&base).unwrap();
        assert_eq!(wide.completed, base.planned_requests());
        let narrow = run(&ServeBenchConfig { workers: 1, ..base }).unwrap();
        assert_eq!(wide.digest, narrow.digest);
        assert_eq!(wide.completed, narrow.completed);
    }

    #[test]
    fn par_threshold_runs_clean_and_deterministic() {
        let base = ServeBenchConfig {
            seed: 11,
            tenants: 2,
            workers: 2,
            requests_per_tenant: 26,
            epsilon_per_tenant: 0.45 * 26.0,
            duration_cap_secs: None,
            qps: None,
            par_threshold: Some(1),
        };
        let a = run(&base).unwrap();
        assert_eq!(a.completed, base.planned_requests());
        let b = run(&base).unwrap();
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn json_echoes_the_outcome() {
        let config = ServeBenchConfig::quick(7);
        let report = ServeBenchReport {
            planned: 1200,
            completed: 1200,
            rejected: 420,
            budget_rejected: 400,
            evictions: 12,
            p50_us: 10.5,
            p95_us: 42.0,
            p99_us: 99.9,
            elapsed_secs: 0.25,
            requests_per_sec: 4800.0,
            digest: 0xDEAD_BEEF,
            truncated: false,
        };
        let json = to_json(&config, &report);
        assert!(json.contains("\"schema\": \"free-gap-serve/bench/v1\""));
        assert!(json.contains("\"par_threshold\": null"));
        assert!(json.contains("\"budget_rejected\": 400"));
        let par_config = ServeBenchConfig {
            par_threshold: Some(32),
            ..config
        };
        assert!(to_json(&par_config, &report).contains("\"par_threshold\": 32"));
        assert!(json.contains("\"p99\": 99.90"));
        assert!(json.contains("\"digest\": \"0x00000000deadbeef\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
