//! Per-tenant privacy-budget ledger: a [`PrivacyBudget`] behind a mutex,
//! so the debit-or-reject decision is atomic under concurrent requests.
//!
//! The invariant the server leans on: at every instant,
//! `spent ≤ total (+ the accountant's 1e-12 relative slack)` — no
//! interleaving of concurrent debits can jointly oversubscribe a tenant's
//! ε, because each debit checks and mutates under the same lock
//! (`tests/serve.rs` races this).

use free_gap_core::{MechanismError, PrivacyBudget};
use std::sync::{Mutex, PoisonError};

/// Thread-safe budget accountant for one tenant.
#[derive(Debug)]
pub struct BudgetLedger {
    budget: Mutex<PrivacyBudget>,
}

impl BudgetLedger {
    /// Creates a ledger with `total` budget.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite totals.
    pub fn new(total: f64) -> Result<Self, MechanismError> {
        Ok(Self {
            budget: Mutex::new(PrivacyBudget::new(total)?),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PrivacyBudget> {
        // A poisoned lock means another thread panicked mid-debit; the
        // accountant itself is a plain pair of floats and is never left
        // half-updated (try_debit/release mutate only on success), so the
        // inner value is still consistent and serving can continue.
        self.budget.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Atomically debits `epsilon`, or rejects without changing state.
    ///
    /// # Errors
    /// [`MechanismError::InvalidEpsilon`] for malformed requests,
    /// [`MechanismError::BudgetExhausted`] when the debit does not fit.
    pub fn try_debit(&self, epsilon: f64) -> Result<(), MechanismError> {
        self.lock().try_debit(epsilon)
    }

    /// Returns previously debited budget (refunds a failed call, or an
    /// evicted session's unspent share).
    ///
    /// # Errors
    /// As [`PrivacyBudget::release`].
    pub fn release(&self, epsilon: f64) -> Result<(), MechanismError> {
        self.lock().release(epsilon)
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        self.lock().remaining()
    }

    /// Budget consumed so far.
    pub fn spent(&self) -> f64 {
        self.lock().spent()
    }

    /// The configured total `ε`.
    pub fn total(&self) -> f64 {
        self.lock().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debit_and_release_round_trip() {
        let ledger = BudgetLedger::new(1.0).unwrap();
        ledger.try_debit(0.7).unwrap();
        assert!(matches!(
            ledger.try_debit(0.5),
            Err(MechanismError::BudgetExhausted { .. })
        ));
        ledger.release(0.2).unwrap();
        ledger.try_debit(0.5).unwrap();
        assert!(ledger.remaining() < 1e-12);
        assert!((ledger.total() - 1.0).abs() < 1e-15);
    }
}
