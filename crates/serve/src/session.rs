//! Open streaming-SVT sessions: the server-side state that lets one
//! gap-releasing sparse-vector run span many requests.
//!
//! A session owns the resumable triple the core's
//! [`SparseVectorWithGap::stream_open`] contract requires — the stream
//! state, the RNG, and the [`SvtScratch`] noise tape (whose buffered
//! lookahead is part of the tape, so the pair must keep serving this
//! stream until it halts). Feeding the session in any batching is
//! bit-identical to one one-shot streaming run on the same RNG.
//!
//! ## Budget story (paper §4, Algorithm 2's remaining-budget output)
//!
//! The full ε = ε₁ + ε₂ is debited when the session opens: the threshold
//! draw (ε₁) happens at open, and the query noise is provisioned for the
//! worst case of `k` above-threshold answers. Below-threshold answers are
//! free — the SVT property the paper builds on — so when a session closes
//! (or is evicted) after only `a < k` answers, the unanswered share
//! `ε₂ · (k − a) / k` flows back to the tenant's ledger. The threshold
//! share ε₁ is spent the moment the noisy threshold exists.

use free_gap_core::sparse_vector::{SparseVectorWithGap, SvtStreamState};
use free_gap_core::SvtScratch;
use free_gap_noise::rng::FastRng;

/// One open streaming run of [`SparseVectorWithGap`].
#[derive(Debug)]
pub struct SvtSession {
    svt: SparseVectorWithGap,
    state: SvtStreamState,
    rng: FastRng,
    scratch: SvtScratch,
    last_used: u64,
}

impl SvtSession {
    /// Opens the stream: draws the threshold noise from `rng` and takes
    /// ownership of the RNG/scratch pair for the lifetime of the run.
    pub fn open(svt: SparseVectorWithGap, mut rng: FastRng, now: u64) -> Self {
        let mut scratch = SvtScratch::new();
        let state = svt.stream_open(&mut rng, &mut scratch);
        Self {
            svt,
            state,
            rng,
            scratch,
            last_used: now,
        }
    }

    /// Feeds a batch of queries, appending one decision per query observed
    /// before the halt (`Some(gap)` for `⊤`, `None` for `⊥`); queries fed
    /// after the `k`-th `⊤` are never observed and produce no decision.
    pub fn feed(&mut self, queries: &[f64], now: u64, out: &mut Vec<Option<f64>>) {
        self.last_used = now;
        for &q in queries {
            match self
                .svt
                .stream_feed(&mut self.state, q, &mut self.rng, &mut self.scratch)
            {
                Some(decision) => out.push(decision),
                None => break,
            }
        }
    }

    /// Above-threshold answers so far.
    pub fn answered(&self) -> usize {
        self.state.answered()
    }

    /// True once the `k`-th `⊤` halted the run.
    pub fn is_halted(&self) -> bool {
        self.state.is_halted()
    }

    /// The budget share not yet consumed by answers: `ε₂ · (k − a) / k`.
    /// This is what closing or evicting the session releases back to the
    /// tenant's ledger (the whole ε was debited at open).
    pub fn unspent(&self) -> f64 {
        let k = self.svt.k();
        let open = k.saturating_sub(self.state.answered());
        self.svt.epsilon2() * open as f64 / k as f64
    }

    /// Logical tick of the last request that touched this session.
    pub fn last_used(&self) -> u64 {
        self.last_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::fast_rng_from_seed;

    #[test]
    fn unspent_decreases_with_answers_and_hits_zero_at_halt() {
        let svt = SparseVectorWithGap::new(2, 1.0, 10.0, true).unwrap();
        let mut s = SvtSession::open(svt, fast_rng_from_seed(3), 0);
        assert!((s.unspent() - svt.epsilon2()).abs() < 1e-12);
        let mut out = Vec::new();
        // Far-above queries are answered almost surely; feed until halt.
        let mut guard = 0;
        while !s.is_halted() {
            s.feed(&[1000.0], guard, &mut out);
            guard += 1;
            assert!(guard < 100, "far-above queries never halted the run");
        }
        assert_eq!(s.answered(), 2);
        assert_eq!(s.unspent(), 0.0);
        assert_eq!(s.last_used(), guard - 1);
    }
}
