//! The multi-tenant query server: one unified request/response surface
//! over every grid mechanism, with per-tenant budget ledgers, derived
//! noise sub-streams, and open streaming-SVT sessions.
//!
//! ## Concurrency and determinism
//!
//! Tenants are independent: each holds its own [`BudgetLedger`] and a
//! mutex over its sessions and counters, so requests for different
//! tenants never contend beyond a read-lock on the tenant map. All noise
//! for a tenant comes from sub-streams derived off `(server seed, tenant
//! id, per-tenant request sequence)` via the sharded-generator convention
//! ([`free_gap_noise::rng::derive_fast_stream`]): given each tenant's
//! request order, every response — outputs, rejections, evictions — is
//! bit-reproducible regardless of how many worker threads serve the
//! tenants or how the scheduler interleaves them (`tests/serve.rs` pins
//! 1-thread vs 4-thread digests).
//!
//! ## Sessions and eviction
//!
//! [`RequestBody::OpenSession`] debits the SVT's full ε and pins the
//! resumable run state; [`RequestBody::Feed`] drives it incrementally.
//! Idle sessions are evicted inline — each request advances the tenant's
//! logical clock, and sessions untouched for more than `max_idle` ticks
//! are closed before the request is served, releasing their unspent
//! query-budget share exactly once (eviction and explicit close both go
//! through map removal under the tenant lock).

use crate::ledger::BudgetLedger;
use crate::session::SvtSession;
use free_gap_core::api::{AnyMechanism, CallScratch, Mechanism, MechanismOutput, QuerySlice};
use free_gap_core::draw::ParallelDraws;
use free_gap_core::sparse_vector::SparseVectorWithGap;
use free_gap_core::MechanismError;
use free_gap_noise::rng::{derive_fast_stream, derive_stream_seed, splitmix64};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// A request against one tenant's budget.
#[derive(Debug, Clone)]
pub struct MechanismRequest {
    /// The tenant whose ledger and sessions the request runs against.
    pub tenant: u64,
    /// What to do.
    pub body: RequestBody,
}

/// The unified call surface: one-shot mechanism calls plus the streaming
/// session lifecycle.
#[derive(Debug, Clone)]
pub enum RequestBody {
    /// One mechanism call: debit its cost, run it, return the output.
    Call {
        /// Which mechanism to run.
        mechanism: AnyMechanism,
        /// The query workload.
        queries: Vec<f64>,
    },
    /// Open a streaming-SVT session (debits the SVT's full ε).
    OpenSession {
        /// Caller-chosen session id, unique per tenant.
        session: u64,
        /// The gap-releasing SVT to run.
        svt: SparseVectorWithGap,
    },
    /// Feed queries to an open session.
    Feed {
        /// The session to drive.
        session: u64,
        /// Queries to feed, in order.
        queries: Vec<f64>,
    },
    /// Close a session, releasing its unspent budget share.
    CloseSession {
        /// The session to close.
        session: u64,
    },
}

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The tenant was never registered.
    UnknownTenant,
    /// No open session with that id.
    UnknownSession,
    /// A session with that id is already open.
    SessionExists,
    /// The tenant's remaining budget cannot cover the call — the typed
    /// rejection carries the requested and remaining ε.
    Budget(MechanismError),
    /// The request itself was malformed (bad workload, bad parameters).
    Invalid(MechanismError),
}

/// The server's answer to one [`MechanismRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismResponse {
    /// A one-shot call's output.
    Output(MechanismOutput),
    /// A session was opened at the given budget cost.
    SessionOpened {
        /// The session id.
        session: u64,
        /// The ε debited up front.
        cost: f64,
    },
    /// Decisions for the fed queries (one per query observed before the
    /// halt; `Some(gap)` above threshold, `None` below).
    Decisions(Vec<Option<f64>>),
    /// A session was closed.
    SessionClosed {
        /// The session id.
        session: u64,
        /// The unspent ε share returned to the tenant's ledger.
        released: f64,
    },
    /// The request was rejected; the tenant's state is unchanged except
    /// where the reason says otherwise.
    Rejected(RejectReason),
}

impl MechanismResponse {
    /// True for [`Rejected`](Self::Rejected).
    pub fn is_rejected(&self) -> bool {
        matches!(self, Self::Rejected(_))
    }

    /// True for a budget rejection specifically.
    pub fn is_budget_rejected(&self) -> bool {
        matches!(self, Self::Rejected(RejectReason::Budget(_)))
    }

    /// Order-sensitive fingerprint of the response — what the serving
    /// benchmark folds per tenant to pin bit-reproducibility.
    pub fn digest(&self, seed: u64) -> u64 {
        fn mix(acc: u64, v: u64) -> u64 {
            let mut s = acc ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut s)
        }
        match self {
            Self::Output(out) => out.digest(mix(seed, 1)),
            Self::SessionOpened { session, cost } => {
                mix(mix(mix(seed, 2), *session), cost.to_bits())
            }
            Self::Decisions(decisions) => {
                let mut acc = mix(seed, 3);
                for d in decisions {
                    acc = match d {
                        Some(gap) => mix(mix(acc, 1), gap.to_bits()),
                        None => mix(acc, 2),
                    };
                }
                acc
            }
            Self::SessionClosed { session, released } => {
                mix(mix(mix(seed, 4), *session), released.to_bits())
            }
            Self::Rejected(reason) => {
                let tag = match reason {
                    RejectReason::UnknownTenant => 10,
                    RejectReason::UnknownSession => 11,
                    RejectReason::SessionExists => 12,
                    RejectReason::Budget(_) => 13,
                    RejectReason::Invalid(_) => 14,
                };
                mix(mix(seed, 5), tag)
            }
        }
    }
}

/// Per-worker reusable state: the mechanism scratch pool and the output
/// buffer [`QueryServer::handle`] writes into. One per serving thread —
/// the `parallel_runs_with_state` pattern — so a warm worker serves
/// requests without per-request allocation in the mechanism cores.
#[derive(Debug)]
pub struct WorkerScratch {
    call: CallScratch,
    out: MechanismOutput,
    par: ParallelDraws,
}

impl WorkerScratch {
    /// Fresh worker state (buffers grow on first use).
    pub fn new() -> Self {
        Self {
            call: CallScratch::new(),
            out: MechanismOutput::Indices(Vec::new()),
            par: ParallelDraws::new(0, default_par_threads()),
        }
    }
}

/// Default intra-run thread count for the parallel call path: the
/// machine's available parallelism clamped to the four-way layout the
/// tests pin (one thread when parallelism cannot be queried). The clamp
/// only affects wall-clock, never bits — [`ParallelDraws`] output is
/// identical for every thread count.
pub(crate) fn default_par_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(4)
}

impl Default for WorkerScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
struct TenantInner {
    sessions: HashMap<u64, SvtSession>,
    /// Logical clock: one tick per request for this tenant. Drives idle
    /// eviction deterministically (no wall clock).
    clock: u64,
    /// Noise-stream sequence: one increment per accepted noise-drawing
    /// request, so every call and session gets its own derived sub-stream.
    seq: u64,
    evicted: u64,
}

#[derive(Debug)]
struct Tenant {
    /// Per-tenant RNG root, derived from the server seed and tenant id.
    seed: u64,
    ledger: BudgetLedger,
    inner: Mutex<TenantInner>,
}

impl Tenant {
    fn lock(&self) -> MutexGuard<'_, TenantInner> {
        // See BudgetLedger::lock for the poisoning rationale; session
        // state is likewise only mutated through &mut self methods that
        // leave it consistent.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The long-lived multi-tenant serving layer.
#[derive(Debug)]
pub struct QueryServer {
    seed: u64,
    max_idle: u64,
    /// One-shot calls whose workload reaches this length run through the
    /// intra-run parallel path ([`AnyMechanism::call_par`]); `None`
    /// (default) serves everything on the sequential batched path.
    par_threshold: Option<usize>,
    tenants: RwLock<HashMap<u64, Arc<Tenant>>>,
}

/// Default idle-eviction horizon, in per-tenant logical ticks.
pub const DEFAULT_MAX_IDLE: u64 = 64;

impl QueryServer {
    /// Creates a server whose noise derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            max_idle: DEFAULT_MAX_IDLE,
            par_threshold: None,
            tenants: RwLock::new(HashMap::new()),
        }
    }

    /// Overrides the idle-eviction horizon (logical ticks of the owning
    /// tenant's clock a session may sit untouched).
    pub fn with_max_idle(mut self, max_idle: u64) -> Self {
        self.max_idle = max_idle;
        self
    }

    /// Opts one-shot calls with at least `threshold` queries into the
    /// intra-run parallel path. The parallel path draws a *different*
    /// (equally well-defined) noise stream than the sequential batched
    /// path — the per-block layout keyed by `(tenant seed, request
    /// sequence)` — so flipping this knob changes outputs, but for a fixed
    /// threshold every response stays bit-reproducible regardless of the
    /// worker count or the machine's core count.
    pub fn with_par_threshold(mut self, threshold: usize) -> Self {
        self.par_threshold = Some(threshold);
        self
    }

    /// Registers a tenant with a total privacy budget.
    ///
    /// # Errors
    /// Rejects malformed budgets ([`MechanismError::InvalidEpsilon`]) and
    /// duplicate registrations ([`MechanismError::InvalidSplit`]).
    pub fn register_tenant(&self, tenant: u64, epsilon: f64) -> Result<(), MechanismError> {
        let ledger = BudgetLedger::new(epsilon)?;
        let mut s = self.seed ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut s);
        let mut map = self.tenants.write().unwrap_or_else(PoisonError::into_inner);
        if map.contains_key(&tenant) {
            return Err(MechanismError::InvalidSplit {
                reason: "tenant already registered",
            });
        }
        map.insert(
            tenant,
            Arc::new(Tenant {
                seed,
                ledger,
                inner: Mutex::new(TenantInner {
                    sessions: HashMap::new(),
                    clock: 0,
                    seq: 0,
                    evicted: 0,
                }),
            }),
        );
        Ok(())
    }

    /// The tenant's remaining budget, if registered.
    pub fn remaining(&self, tenant: u64) -> Option<f64> {
        self.tenant(tenant).map(|t| t.ledger.remaining())
    }

    /// The tenant's spent budget, if registered.
    pub fn spent(&self, tenant: u64) -> Option<f64> {
        self.tenant(tenant).map(|t| t.ledger.spent())
    }

    /// Open sessions for the tenant, if registered.
    pub fn open_sessions(&self, tenant: u64) -> Option<usize> {
        self.tenant(tenant).map(|t| t.lock().sessions.len())
    }

    /// Total sessions evicted for idleness, across all tenants.
    pub fn evictions(&self) -> u64 {
        let map = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        // lint:allow(lock-discipline): map-read → tenant-inner is the one global lock order (registration and lookup take them the same way), so this nesting cannot invert
        map.values().map(|t| t.lock().evicted).sum()
    }

    fn tenant(&self, tenant: u64) -> Option<Arc<Tenant>> {
        let map = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        map.get(&tenant).map(Arc::clone)
    }

    /// Serves one request. `worker` is the calling thread's reusable
    /// scratch; requests for the same tenant are serialized by the tenant
    /// lock, and the budget debit is atomic, so any number of workers may
    /// call this concurrently.
    pub fn handle(&self, req: &MechanismRequest, worker: &mut WorkerScratch) -> MechanismResponse {
        let Some(tenant) = self.tenant(req.tenant) else {
            return MechanismResponse::Rejected(RejectReason::UnknownTenant);
        };
        let mut inner = tenant.lock();
        inner.clock += 1;
        let now = inner.clock;
        self.evict_idle(&tenant, &mut inner, now);
        match &req.body {
            RequestBody::Call { mechanism, queries } => {
                let cost = mechanism.cost();
                if let Err(e) = tenant.ledger.try_debit(cost) {
                    return MechanismResponse::Rejected(budget_reject(e));
                }
                inner.seq += 1;
                let slice = QuerySlice::new(queries);
                let result = match self.par_threshold {
                    Some(threshold) if queries.len() >= threshold => {
                        // Same derivation key as the sequential path, but
                        // feeding the per-block sub-stream layout instead
                        // of one sequential generator.
                        worker.par.reset(derive_stream_seed(tenant.seed, inner.seq));
                        // lint:allow(lock-discipline): per-tenant serialization is the determinism contract — the response stream of a tenant must be a function of its own request order, so its guard intentionally spans the call; other tenants hold other guards
                        mechanism.call_par(
                            &slice,
                            &mut worker.par,
                            &mut worker.call,
                            &mut worker.out,
                        )
                    }
                    _ => {
                        let mut rng = derive_fast_stream(tenant.seed, inner.seq);
                        // lint:allow(lock-discipline): same per-tenant serialization contract as the call_par arm above
                        mechanism.call_batched(&slice, &mut rng, &mut worker.call, &mut worker.out)
                    }
                };
                match result {
                    Ok(()) => MechanismResponse::Output(worker.out.clone()),
                    Err(e) => {
                        // The call drew no noise and released no output:
                        // refund the debit so a malformed workload does
                        // not burn budget.
                        let refunded = tenant.ledger.release(cost);
                        debug_assert!(refunded.is_ok());
                        MechanismResponse::Rejected(RejectReason::Invalid(e))
                    }
                }
            }
            RequestBody::OpenSession { session, svt } => {
                if inner.sessions.contains_key(session) {
                    return MechanismResponse::Rejected(RejectReason::SessionExists);
                }
                let cost = svt.epsilon();
                if let Err(e) = tenant.ledger.try_debit(cost) {
                    return MechanismResponse::Rejected(budget_reject(e));
                }
                inner.seq += 1;
                let rng = derive_fast_stream(tenant.seed, inner.seq);
                inner
                    .sessions
                    .insert(*session, SvtSession::open(*svt, rng, now));
                MechanismResponse::SessionOpened {
                    session: *session,
                    cost,
                }
            }
            RequestBody::Feed { session, queries } => {
                let Some(open) = inner.sessions.get_mut(session) else {
                    return MechanismResponse::Rejected(RejectReason::UnknownSession);
                };
                let mut decisions = Vec::new();
                open.feed(queries, now, &mut decisions);
                MechanismResponse::Decisions(decisions)
            }
            RequestBody::CloseSession { session } => {
                let Some(open) = inner.sessions.remove(session) else {
                    return MechanismResponse::Rejected(RejectReason::UnknownSession);
                };
                let released = release_session(&tenant.ledger, &open);
                MechanismResponse::SessionClosed {
                    session: *session,
                    released,
                }
            }
        }
    }

    /// Closes sessions idle past the horizon, crediting their unspent
    /// share. Removal happens under the tenant lock the caller already
    /// holds, so a session can never be released twice (eviction and
    /// explicit close race on the same map entry).
    fn evict_idle(&self, tenant: &Tenant, inner: &mut TenantInner, now: u64) {
        if inner.sessions.is_empty() {
            return;
        }
        let mut expired: Vec<u64> = inner
            .sessions
            .iter()
            .filter(|(_, s)| now.saturating_sub(s.last_used()) > self.max_idle)
            .map(|(&id, _)| id)
            .collect();
        // Sorted removal keeps the ledger's float-release order — and so
        // every subsequent borderline debit decision — independent of
        // HashMap iteration order.
        expired.sort_unstable();
        for id in expired {
            if let Some(open) = inner.sessions.remove(&id) {
                release_session(&tenant.ledger, &open);
                inner.evicted += 1;
            }
        }
    }
}

/// Returns a closed/evicted session's unspent share to the ledger,
/// reporting what was released.
fn release_session(ledger: &BudgetLedger, session: &SvtSession) -> f64 {
    let unspent = session.unspent();
    if unspent > 0.0 {
        // The session's full ε was debited at open, so the credit always
        // fits; a failure here would be an accounting bug.
        let released = ledger.release(unspent);
        debug_assert!(released.is_ok());
    }
    unspent
}

fn budget_reject(e: MechanismError) -> RejectReason {
    match e {
        MechanismError::BudgetExhausted { .. } => RejectReason::Budget(e),
        other => RejectReason::Invalid(other),
    }
}
