//! Serving-layer invariants: the ISSUE's acceptance criteria live here.
//!
//! * concurrent debits can never jointly oversubscribe a tenant's ε
//!   (seeded stress race + exact-sum assertion on dyadic amounts);
//! * an evicted session's unspent budget is released exactly once;
//! * per-tenant responses are independent of how requests from different
//!   tenants interleave (the sequential reference check);
//! * the serve-bench digest is bit-identical for 1 vs 4 worker threads.

use free_gap_core::noisy_max::NoisyTopKWithGap;
use free_gap_core::sparse_vector::SparseVectorWithGap;
use free_gap_serve::server::RejectReason;
use free_gap_serve::{
    BudgetLedger, MechanismRequest, MechanismResponse, QueryServer, RequestBody, ServeBenchConfig,
    WorkerScratch,
};

/// N threads race debits of dyadic amounts (exact in binary, so sums are
/// order-independent): the ledger's spent total must equal the exact sum
/// of the granted debits, and never exceed ε.
#[test]
fn concurrent_debits_never_oversubscribe_epsilon() {
    let total = 10.0;
    let ledger = BudgetLedger::new(total).unwrap();
    // Dyadic per-thread amounts: any interleaving sums exactly.
    let amounts = [0.25, 0.5, 0.125];
    let granted: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let ledger = &ledger;
                let amount = amounts[t % amounts.len()];
                scope.spawn(move || {
                    let mut granted = 0.0;
                    for _ in 0..200 {
                        if ledger.try_debit(amount).is_ok() {
                            granted += amount;
                        }
                    }
                    granted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let granted_sum: f64 = granted.iter().sum();
    // Exact equality: every quantity is a small dyadic rational.
    assert_eq!(ledger.spent(), granted_sum);
    assert!(ledger.spent() <= total);
    // The race must have actually filled the budget: every thread alone
    // requests 200 × amount ≥ 25 > ε, so less than ε spent would mean
    // debits were lost. The smallest amount always fits until < 0.125
    // remains, and all amounts divide evenly into 10.
    assert_eq!(ledger.spent(), total);
    assert!(matches!(
        ledger.try_debit(0.125),
        Err(free_gap_core::MechanismError::BudgetExhausted { .. })
    ));
}

/// Same race with uniform amounts: the grant count is exactly ε / amount.
#[test]
fn concurrent_debit_grant_count_is_exact() {
    let ledger = BudgetLedger::new(10.0).unwrap();
    let grants: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let ledger = &ledger;
                scope.spawn(move || (0..100).filter(|_| ledger.try_debit(0.25).is_ok()).count())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(grants, 40); // 10 / 0.25, no more, no less
    assert_eq!(ledger.spent(), 10.0);
}

fn tick(server: &QueryServer, tenant: u64, scratch: &mut WorkerScratch) -> MechanismResponse {
    // An unknown-session feed advances the tenant's logical clock (and so
    // drives idle eviction) without touching the ledger.
    server.handle(
        &MechanismRequest {
            tenant,
            body: RequestBody::Feed {
                session: u64::MAX,
                queries: vec![1.0],
            },
        },
        scratch,
    )
}

#[test]
fn evicted_session_budget_is_released_exactly_once() {
    let server = QueryServer::new(11).with_max_idle(2);
    server.register_tenant(0, 10.0).unwrap();
    let svt = SparseVectorWithGap::new(4, 0.5, 10.0, true).unwrap();
    let mut scratch = WorkerScratch::new();
    let open = server.handle(
        &MechanismRequest {
            tenant: 0,
            body: RequestBody::OpenSession { session: 7, svt },
        },
        &mut scratch,
    );
    assert_eq!(
        open,
        MechanismResponse::SessionOpened {
            session: 7,
            cost: svt.epsilon()
        }
    );
    assert_eq!(server.open_sessions(0), Some(1));
    let after_open = server.remaining(0).unwrap();
    assert!((after_open - (10.0 - svt.epsilon())).abs() < 1e-12);
    // Tick the clock past the idle horizon without touching the session.
    for _ in 0..4 {
        assert!(tick(&server, 0, &mut scratch).is_rejected());
    }
    assert_eq!(server.evictions(), 1);
    assert_eq!(server.open_sessions(0), Some(0));
    // No query was answered, so the whole ε₂ share comes back; only the
    // threshold share ε₁ stays spent.
    let after_evict = server.remaining(0).unwrap();
    assert!((after_evict - (10.0 - svt.epsilon1())).abs() < 1e-12);
    // Closing the already-evicted session must not release again.
    let close = server.handle(
        &MechanismRequest {
            tenant: 0,
            body: RequestBody::CloseSession { session: 7 },
        },
        &mut scratch,
    );
    assert_eq!(
        close,
        MechanismResponse::Rejected(RejectReason::UnknownSession)
    );
    assert_eq!(server.remaining(0), Some(after_evict));
    assert_eq!(server.evictions(), 1);
}

#[test]
fn explicit_close_releases_the_unanswered_share() {
    let server = QueryServer::new(11);
    server.register_tenant(0, 10.0).unwrap();
    let svt = SparseVectorWithGap::new(4, 0.5, 10.0, true).unwrap();
    let mut scratch = WorkerScratch::new();
    server.handle(
        &MechanismRequest {
            tenant: 0,
            body: RequestBody::OpenSession { session: 1, svt },
        },
        &mut scratch,
    );
    // One far-above query is answered almost surely: 1 of k = 4 answers.
    let feed = server.handle(
        &MechanismRequest {
            tenant: 0,
            body: RequestBody::Feed {
                session: 1,
                queries: vec![1000.0],
            },
        },
        &mut scratch,
    );
    let MechanismResponse::Decisions(decisions) = feed else {
        panic!("expected decisions, got {feed:?}");
    };
    let answered = decisions.iter().filter(|d| d.is_some()).count();
    let close = server.handle(
        &MechanismRequest {
            tenant: 0,
            body: RequestBody::CloseSession { session: 1 },
        },
        &mut scratch,
    );
    let expect_released = svt.epsilon2() * (4 - answered) as f64 / 4.0;
    let MechanismResponse::SessionClosed { released, .. } = close else {
        panic!("expected close, got {close:?}");
    };
    assert!((released - expect_released).abs() < 1e-12);
    let spent = server.spent(0).unwrap();
    assert!((spent - (svt.epsilon() - expect_released)).abs() < 1e-12);
}

/// Per-tenant responses must not depend on how requests from *different*
/// tenants interleave: serving tenant 0's script before tenant 1's, or
/// alternating them request by request, yields bit-identical responses —
/// the sequential reference behind the derived-sub-stream design.
#[test]
fn tenant_responses_are_independent_of_cross_tenant_interleaving() {
    let mech = NoisyTopKWithGap::new(3, 0.7, true).unwrap();
    let queries: Vec<f64> = (0..16).map(|j| 100.0 - 3.0 * j as f64).collect();
    let mut script: Vec<MechanismRequest> = Vec::new();
    for t in 0..2u64 {
        for _ in 0..6 {
            script.push(MechanismRequest {
                tenant: t,
                body: RequestBody::Call {
                    mechanism: mech.into(),
                    queries: queries.clone(),
                },
            });
        }
    }
    let serve = |order: Vec<usize>| -> Vec<(u64, MechanismResponse)> {
        let server = QueryServer::new(42);
        server.register_tenant(0, 100.0).unwrap();
        server.register_tenant(1, 100.0).unwrap();
        let mut scratch = WorkerScratch::new();
        order
            .into_iter()
            .map(|idx| {
                let req = &script[idx];
                (req.tenant, server.handle(req, &mut scratch))
            })
            .collect()
    };
    // Sequential: all of tenant 0, then all of tenant 1.
    let sequential = serve((0..12).collect());
    // Interleaved: 0, 6, 1, 7, 2, 8, ...
    let interleaved = serve((0..6).flat_map(|i| [i, i + 6]).collect());
    for t in 0..2u64 {
        let a: Vec<_> = sequential.iter().filter(|(rt, _)| *rt == t).collect();
        let b: Vec<_> = interleaved.iter().filter(|(rt, _)| *rt == t).collect();
        assert_eq!(a, b, "tenant {t} responses diverged under interleaving");
    }
}

#[test]
fn budget_rejections_are_typed_and_leave_state_unchanged() {
    let server = QueryServer::new(9);
    server.register_tenant(0, 1.0).unwrap();
    let mech = NoisyTopKWithGap::new(3, 0.7, true).unwrap();
    let queries: Vec<f64> = (0..8).map(|j| 50.0 - j as f64).collect();
    let call = MechanismRequest {
        tenant: 0,
        body: RequestBody::Call {
            mechanism: mech.into(),
            queries,
        },
    };
    let mut scratch = WorkerScratch::new();
    assert!(matches!(
        server.handle(&call, &mut scratch),
        MechanismResponse::Output(_)
    ));
    // Second call needs 0.7 of the remaining 0.3: typed budget rejection.
    let rejected = server.handle(&call, &mut scratch);
    assert!(rejected.is_budget_rejected());
    let MechanismResponse::Rejected(RejectReason::Budget(
        free_gap_core::MechanismError::BudgetExhausted {
            requested,
            remaining,
        },
    )) = rejected
    else {
        panic!("expected typed budget rejection, got {rejected:?}");
    };
    assert!((requested - 0.7).abs() < 1e-12);
    assert!((remaining - 0.3).abs() < 1e-12);
    // The failed request debited nothing.
    assert!((server.remaining(0).unwrap() - 0.3).abs() < 1e-12);
    // Unknown tenants are their own rejection.
    let stray = MechanismRequest {
        tenant: 99,
        body: RequestBody::CloseSession { session: 0 },
    };
    assert_eq!(
        server.handle(&stray, &mut scratch),
        MechanismResponse::Rejected(RejectReason::UnknownTenant)
    );
}

/// The acceptance pin: a fixed-seed serve-bench run is bit-reproducible
/// across 1 vs 4 worker threads — same digest, same outcome counts — and
/// actually exercises rejections and evictions.
#[test]
fn serve_bench_is_bit_reproducible_across_worker_counts() {
    let mut config = ServeBenchConfig::quick(20190412);
    config.tenants = 4;
    config.requests_per_tenant = 150;
    config.epsilon_per_tenant = 0.45 * 150.0;
    let mut one = config;
    one.workers = 1;
    let mut four = config;
    four.workers = 4;
    let a = free_gap_serve::bench::run(&one).unwrap();
    let b = free_gap_serve::bench::run(&four).unwrap();
    assert_eq!(a.digest, b.digest, "digest diverged across worker counts");
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.budget_rejected, b.budget_rejected);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.completed, a.planned);
    assert!(!a.truncated);
    // The script is sized to overrun the budget and leak sessions.
    assert!(a.budget_rejected > 0, "no budget rejection exercised");
    assert!(a.evictions > 0, "no eviction exercised");
    assert!(a.rejected >= a.budget_rejected);
    // Latency quantiles are ordered and populated.
    assert!(a.p50_us > 0.0);
    assert!(a.p50_us <= a.p95_us && a.p95_us <= a.p99_us);
    assert!(a.requests_per_sec > 0.0);
}

/// Different seeds must produce different digests (the digest actually
/// depends on the noise, not just the script shape).
#[test]
fn serve_bench_digest_depends_on_seed() {
    let mut config = ServeBenchConfig::quick(1);
    config.tenants = 2;
    config.requests_per_tenant = 40;
    config.epsilon_per_tenant = 40.0;
    let a = free_gap_serve::bench::run(&config).unwrap();
    config.seed = 2;
    let b = free_gap_serve::bench::run(&config).unwrap();
    assert_ne!(a.digest, b.digest);
}
