//! Candidate neighboring input pairs — the dp-sniper-style search space.
//!
//! Every pair satisfies the sensitivity-1 adjacency of the paper's
//! Definition 2: `|dᵢ - d'ᵢ| ≤ 1` for every query. The shapes are chosen
//! to excite the known SVT failure modes, not tailored to any one variant
//! — the search phase decides per target which pair actually
//! distinguishes:
//!
//! * **one-above** — the textbook SVT workload: a single clear `⊤` among
//!   clear `⊥`s, every answer shifted down on the neighbor.
//! * **all-at-threshold** — maximal decision uncertainty; every comparison
//!   is a coin flip whose bias the neighbor moves.
//! * **all-above** — every query clearly above `T`. A correct SVT answers
//!   `k` and halts; the unbounded-⊤-count variant answers *all* of them
//!   and its per-query ratios compound without limit.
//! * **push-below-pull-above** — general (non-monotone) adjacency that
//!   moves `⊥`-destined queries *up* and the final `⊤`-destined query
//!   *down* on the neighbor, so every factor of the likelihood ratio
//!   points the same way. With the released noisy value pinning the
//!   threshold noise from above, this is the compound witness against
//!   noisy-value reuse.
//! * **sparse-highs** — `k` clear `⊤`s spread between runs of clear `⊥`s
//!   with opposing shifts: many same-direction factors for variants whose
//!   per-query noise is not scaled to `k`.
//! * **sparse-highs-tight** — the same shape pulled toward `T`, where each
//!   decision is closest to a fair coin and a unit shift moves its odds the
//!   most (the per-factor likelihood ratio of a Laplace comparison peaks at
//!   the threshold).
//! * **push-pull-wide** — the push-below-pull-above shape widened to
//!   *three* `⊤`-destined movers. Uniform-shift pairs are ratio-capped at
//!   `e^{ε₁}` for any threshold mechanism (the threshold noise absorbs the
//!   shift), and a single-`⊤` event never exceeds a correct `k = 1` budget
//!   — so witnessing the unbounded-`⊤`-count flaw specifically needs mixed
//!   shift directions *and* several `⊤`s in one event.
//! * **sentinel-pinning** — half-unit sentinel queries that reveal which
//!   bucket the threshold noise fell in, plus a mover whose `0.5` shift
//!   crosses a bucket boundary. Decision vectors become *disjoint* across
//!   the pair for any mechanism whose comparisons are deterministic given
//!   the threshold draw (no per-query noise). Not on the integer lattice.

// lint:allow-file(panic-freedom): neighboring-input constructors assert their own shape invariants; a malformed pair must abort the audit, not silently weaken it

use free_gap_core::answers::QueryAnswers;

/// A named neighboring input pair.
#[derive(Debug, Clone)]
pub struct InputPair {
    /// Short name for reports.
    pub name: &'static str,
    /// The first database's query answers.
    pub d: QueryAnswers,
    /// The adjacent database's query answers.
    pub dp: QueryAnswers,
    /// Whether both sides lie on the integer lattice (required by
    /// lattice-only targets such as the discrete SVT).
    pub lattice: bool,
}

impl InputPair {
    fn new(name: &'static str, d: Vec<f64>, dp: Vec<f64>, lattice: bool) -> Self {
        assert_eq!(
            d.len(),
            dp.len(),
            "{name}: pair sides must have equal length"
        );
        assert!(
            d.iter().zip(&dp).all(|(a, b)| (a - b).abs() <= 1.0 + 1e-12),
            "{name}: adjacency violated (some |dᵢ - d'ᵢ| > 1)"
        );
        Self {
            name,
            d: QueryAnswers::general(d),
            dp: QueryAnswers::general(dp),
            lattice,
        }
    }
}

/// The standard candidate pairs around a public threshold `t`.
///
/// All pairs are lattice-valued when `t` is an integer, except
/// `sentinel-pinning` (half-unit sentinels by construction).
pub fn standard_pairs(t: f64) -> Vec<InputPair> {
    let lattice = (t - t.round()).abs() < 1e-9;
    let mut pairs = Vec::new();

    let d: Vec<f64> = std::iter::once(t + 1.0)
        .chain(std::iter::repeat_n(t - 2.0, 7))
        .collect();
    let dp: Vec<f64> = d.iter().map(|q| q - 1.0).collect();
    pairs.push(InputPair::new("one-above", d, dp, lattice));

    pairs.push(InputPair::new(
        "all-at-threshold",
        vec![t; 8],
        vec![t - 1.0; 8],
        lattice,
    ));

    pairs.push(InputPair::new(
        "all-above",
        vec![t + 6.0; 24],
        vec![t + 5.0; 24],
        lattice,
    ));

    let d = vec![t; 5];
    let mut dp = vec![t + 1.0; 4];
    dp.push(t - 1.0);
    pairs.push(InputPair::new("push-below-pull-above", d, dp, lattice));

    let mut d = Vec::new();
    let mut dp = Vec::new();
    for _ in 0..3 {
        for _ in 0..3 {
            d.push(t - 3.0);
            dp.push(t - 2.0); // ⊥ queries move up on the neighbor
        }
        d.push(t + 3.0);
        dp.push(t + 2.0); // ⊤ queries move down
    }
    pairs.push(InputPair::new("sparse-highs", d, dp, lattice));

    let mut d = Vec::new();
    let mut dp = Vec::new();
    for _ in 0..3 {
        for _ in 0..4 {
            d.push(t - 2.0);
            dp.push(t - 1.0);
        }
        d.push(t + 2.0);
        dp.push(t + 1.0);
    }
    pairs.push(InputPair::new("sparse-highs-tight", d, dp, lattice));

    let mut d = vec![t; 6];
    let mut dp = vec![t + 1.0; 6];
    for _ in 0..3 {
        d.push(t + 1.0);
        dp.push(t);
    }
    pairs.push(InputPair::new("push-pull-wide", d, dp, lattice));

    let sentinels: Vec<f64> = (0..16).map(|i| t + (i as f64 - 8.0) * 0.5).collect();
    let mut d = sentinels.clone();
    let mut dp = sentinels;
    d.push(t + 0.25);
    dp.push(t + 0.75);
    pairs.push(InputPair::new("sentinel-pinning", d, dp, false));

    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_respect_adjacency_and_lattice_tags() {
        let pairs = standard_pairs(10.0);
        assert_eq!(pairs.len(), 8);
        for p in &pairs {
            assert_eq!(p.d.len(), p.dp.len());
            for (a, b) in p.d.values().iter().zip(p.dp.values()) {
                assert!((a - b).abs() <= 1.0 + 1e-12, "{}", p.name);
            }
            if p.lattice {
                for v in p.d.values().iter().chain(p.dp.values()) {
                    assert!((v - v.round()).abs() < 1e-9, "{}: {v}", p.name);
                }
            }
        }
        assert_eq!(
            pairs.iter().filter(|p| !p.lattice).count(),
            1,
            "only sentinel-pinning leaves the lattice at an integer threshold"
        );
    }

    #[test]
    fn non_integer_threshold_marks_everything_off_lattice() {
        assert!(standard_pairs(10.5).iter().all(|p| !p.lattice));
    }

    #[test]
    #[should_panic(expected = "adjacency violated")]
    fn adjacency_is_enforced() {
        InputPair::new("bad", vec![0.0], vec![2.0], true);
    }
}
