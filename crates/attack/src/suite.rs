//! The standard attack suite: every correct SVT mechanism and every zoo
//! variant, attacked identically, with a pass/fail verdict for the whole
//! board.
//!
//! The suite is a two-sided oracle over the harness itself:
//!
//! * **Soundness** — no correct mechanism may be flagged. The estimate
//!   phase's Clopper–Pearson bound cannot exceed a mechanism's true ε
//!   except with probability ≤ α/2, so a false flag means the harness
//!   (not the mechanism) is broken.
//! * **Power** — every zoo variant must be flagged: its empirical ε lower
//!   bound must exceed the ε its flawed proof claims.
//!
//! `repro attack` prints this board and exits nonzero unless both hold.

// lint:allow-file(panic-freedom): the zoo board is built from compile-time-known parameters; a constructor failure here is a programming error the audit must abort on

use crate::estimator::{attack, AttackConfig, AttackResult};
use crate::inputs::{standard_pairs, InputPair};
use crate::target::AttackTarget;
use free_gap_core::sparse_vector::broken::{
    BudgetMisallocationSvt, NoQueryNoiseSvt, NoisyValueSvt, UnboundedCountSvt, UnscaledNoiseSvt,
};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, ClassicSparseVector, DiscreteSparseVectorWithGap, SparseVectorWithGap,
};

/// The public threshold every suite target is built around.
pub const SUITE_THRESHOLD: f64 = 10.0;

/// One suite member: a target plus the verdict the suite expects.
pub struct SuiteEntry {
    /// The mechanism under attack.
    pub target: Box<dyn AttackTarget>,
    /// `true` for zoo variants (must be flagged), `false` for the paper's
    /// mechanisms (must pass).
    pub expect_broken: bool,
}

/// The standard board: four correct mechanisms (general-sensitivity
/// configuration, so every candidate pair's adjacency is covered by their
/// claims) and the five-variant zoo at parameters where each flaw is
/// statistically detectable.
pub fn standard_suite() -> Vec<SuiteEntry> {
    let t = SUITE_THRESHOLD;
    let correct: Vec<Box<dyn AttackTarget>> = vec![
        Box::new(ClassicSparseVector::new(2, 1.0, t, false).expect("valid")),
        Box::new(SparseVectorWithGap::new(2, 1.0, t, false).expect("valid")),
        Box::new(AdaptiveSparseVector::new(2, 1.0, t, false).expect("valid")),
        Box::new(DiscreteSparseVectorWithGap::new(2, 1.0, t, false).expect("valid")),
    ];
    let broken: Vec<Box<dyn AttackTarget>> = vec![
        // k = 1 keeps the compound ⊥…⊥⊤-plus-value witness short enough to
        // be frequent; the sample_factor covers the rest.
        Box::new(NoisyValueSvt::new(1, 1.0, t).expect("valid")),
        // The flaw needs k ≥ 2; k = 3 triples the per-answer overrun.
        Box::new(UnscaledNoiseSvt::new(3, 0.6, t).expect("valid")),
        Box::new(NoQueryNoiseSvt::new(1.0, t).expect("valid")),
        Box::new(BudgetMisallocationSvt::new(1, 0.8, t).expect("valid")),
        Box::new(UnboundedCountSvt::new(1.0, t).expect("valid")),
    ];
    correct
        .into_iter()
        .map(|target| SuiteEntry {
            target,
            expect_broken: false,
        })
        .chain(broken.into_iter().map(|target| SuiteEntry {
            target,
            expect_broken: true,
        }))
        .collect()
}

/// One row of the suite board.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// The verdict the suite expects for this target.
    pub expect_broken: bool,
    /// What the attack actually measured.
    pub result: AttackResult,
}

impl SuiteRow {
    /// True when the measured verdict matches the expectation.
    pub fn verdict_ok(&self) -> bool {
        self.result.flagged == self.expect_broken
    }
}

/// All attack results plus the board-level verdicts.
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// One row per suite target, in suite order.
    pub rows: Vec<SuiteRow>,
}

impl SuiteReport {
    /// Correct mechanisms that were (wrongly) flagged.
    pub fn false_flags(&self) -> impl Iterator<Item = &SuiteRow> {
        self.rows
            .iter()
            .filter(|r| !r.expect_broken && r.result.flagged)
    }

    /// Zoo variants that escaped detection.
    pub fn escapes(&self) -> impl Iterator<Item = &SuiteRow> {
        self.rows
            .iter()
            .filter(|r| r.expect_broken && !r.result.flagged)
    }

    /// True when every verdict matches: no false flags, no escapes.
    pub fn ok(&self) -> bool {
        self.rows.iter().all(SuiteRow::verdict_ok)
    }
}

/// Runs the standard suite against the standard candidate pairs.
pub fn run_suite(cfg: &AttackConfig) -> SuiteReport {
    run_suite_with(standard_suite(), &standard_pairs(SUITE_THRESHOLD), cfg)
}

/// Runs an explicit set of suite entries against explicit pairs — the
/// extension point for attacking a new variant (see README's "adding a
/// variant to the zoo").
pub fn run_suite_with(
    entries: Vec<SuiteEntry>,
    pairs: &[InputPair],
    cfg: &AttackConfig,
) -> SuiteReport {
    let rows = entries
        .into_iter()
        .map(|e| SuiteRow {
            expect_broken: e.expect_broken,
            result: attack(e.target.as_ref(), pairs, cfg),
        })
        .collect();
    SuiteReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_composition() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 9);
        assert_eq!(suite.iter().filter(|e| e.expect_broken).count(), 5);
        let zoo_names: Vec<&str> = suite
            .iter()
            .filter(|e| e.expect_broken)
            .map(|e| e.target.name())
            .collect();
        assert!(zoo_names.iter().all(|n| n.starts_with("zoo:")));
    }
}
