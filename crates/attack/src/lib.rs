//! # free-gap-attack
//!
//! A black-box privacy fault-injection harness over the Sparse Vector
//! family: the correct mechanisms from the paper and the deliberately
//! broken variant zoo (`free_gap_core::sparse_vector::broken`) behind one
//! [`AttackTarget`] trait, attacked with the same machinery.
//!
//! The attack shape follows dp-sniper (Bichsel et al., and the excerpt in
//! this repo's SNIPPETS.md): treat the mechanism as an opaque sampler and
//! look for a *witness* — a neighboring input pair `(D, D')` plus an output
//! event `E` with `P[M(D) ∈ E] > e^ε · P[M(D') ∈ E]`. The harness is
//! deliberately two-phase so the reported numbers are statistically sound:
//!
//! 1. **Search** ([`estimator`]): run every candidate input pair
//!    ([`inputs`]) through the target, project each output through a fixed
//!    family of classifiers ([`events`]), and score every observed
//!    `(pair, classifier, value, direction)` event with a Clopper–Pearson
//!    ε lower bound on the search sample.
//! 2. **Estimate**: re-run the *single* chosen event on fresh, disjoint
//!    RNG streams and report
//!    [`free_gap_alignment::binomial::epsilon_lower_bound`] at the
//!    configured significance. Because the event was fixed before these
//!    samples were drawn, the bound needs no multiple-testing correction —
//!    selection bias lives entirely in phase 1.
//!
//! The Monte-Carlo loops run the mechanisms' batched scratch fast paths
//! (`run_with_scratch_into`) across worker threads, one derived
//! [`free_gap_noise::rng::FastRng`] sub-stream per trial, so results are
//! bit-reproducible for a given seed regardless of thread count.
//!
//! A sound lower bound can never exceed a mechanism's *true* ε (up to the
//! configured significance α), which is what makes the suite a two-sided
//! oracle: correct mechanisms must never be flagged, and every zoo variant
//! must be — see [`suite::run_suite`] and the `repro attack` CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod events;
pub mod inputs;
pub mod suite;
pub mod target;

pub use estimator::{attack, AttackConfig, AttackResult};
pub use inputs::{standard_pairs, InputPair};
pub use suite::{
    run_suite, run_suite_with, standard_suite, SuiteEntry, SuiteReport, SUITE_THRESHOLD,
};
pub use target::{AttackTarget, Observation};
