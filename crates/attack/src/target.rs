//! The [`AttackTarget`] trait: one black-box interface over correct and
//! broken SVT mechanisms.
//!
//! Every target — the paper's mechanisms and the variant zoo alike — is
//! reduced to the same observable surface: a per-query decision vector with
//! an optional released value per `⊤`. That is exactly what an adversary
//! watching the mechanism's output sees, so classifiers built on
//! [`Observation`] apply uniformly and the harness cannot accidentally use
//! side information a real attacker would not have.

use free_gap_core::answers::QueryAnswers;
use free_gap_core::scratch::SvtScratch;
use free_gap_core::sparse_vector::broken::{
    BudgetMisallocationSvt, NoQueryNoiseSvt, NoisyValueOutput, NoisyValueSvt, UnboundedCountSvt,
    UnscaledNoiseSvt,
};
use free_gap_core::sparse_vector::{
    AdaptiveOutcome, AdaptiveSparseVector, AdaptiveSvOutput, ClassicSparseVector,
    DiscreteSparseVectorWithGap, SparseVectorWithGap, SvOutput,
};
use free_gap_noise::rng::FastRng;

/// What the adversary observes from one mechanism run: per processed query,
/// `Some(released value)` for `⊤` (the gap for gap-releasing mechanisms,
/// the raw noisy value for [`NoisyValueSvt`], `0.0` for decision-only
/// mechanisms) or `None` for `⊥`.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The unified per-query view classifiers consume.
    pub above: Vec<Option<f64>>,
    // Reusable per-flavor output buffers so `observe` stays allocation-free
    // across trials.
    sv: SvOutput,
    nv: NoisyValueOutput,
    adaptive: AdaptiveSvOutput,
}

impl Default for Observation {
    fn default() -> Self {
        Self::new()
    }
}

impl Observation {
    /// An empty observation with reusable buffers.
    pub fn new() -> Self {
        Self {
            above: Vec::new(),
            sv: SvOutput { above: Vec::new() },
            nv: Vec::new(),
            adaptive: AdaptiveSvOutput {
                outcomes: Vec::new(),
                spent: 0.0,
                epsilon: 0.0,
            },
        }
    }

    fn take_sv(&mut self) {
        std::mem::swap(&mut self.above, &mut self.sv.above);
    }

    fn take_nv(&mut self) {
        std::mem::swap(&mut self.above, &mut self.nv);
    }

    fn take_adaptive(&mut self) {
        self.above.clear();
        self.above
            .extend(self.adaptive.outcomes.iter().map(|o| match o {
                AdaptiveOutcome::Above { gap, .. } => Some(*gap),
                AdaptiveOutcome::Below => None,
            }));
    }
}

/// A mechanism under attack: a name, a claimed budget, and a way to sample
/// one observation on the batched fast path.
///
/// `Sync` because the Monte-Carlo estimator shares one target across worker
/// threads (every implementor here is a plain `Copy` parameter struct).
pub trait AttackTarget: Sync {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// The ε the mechanism's (possibly flawed) proof claims.
    fn claimed_epsilon(&self) -> f64;

    /// The public threshold `T` (classifiers bucket released values
    /// relative to it).
    fn public_threshold(&self) -> f64;

    /// True when the target only accepts integer-lattice inputs
    /// (the discrete SVT): non-lattice candidate pairs are skipped.
    fn lattice_only(&self) -> bool {
        false
    }

    /// Relative Monte-Carlo effort. Variants whose witness events are rare
    /// (the noisy-value leak needs a compound `⊥…⊥⊤`-plus-value event in
    /// the Laplace tails) get a multiplier so the suite spends trials where
    /// the statistics need them.
    fn sample_factor(&self) -> usize {
        1
    }

    /// Runs the mechanism once on the scratch fast path and writes the
    /// unified observation.
    fn observe(
        &self,
        answers: &QueryAnswers,
        rng: &mut FastRng,
        scratch: &mut SvtScratch,
        out: &mut Observation,
    );
}

/// Implements [`AttackTarget`] for an [`SvOutput`]-producing mechanism.
/// `$eps`/`$thr` name the methods exposing the claimed budget and public
/// threshold; `$($extra)*` lets a variant override the defaulted methods.
macro_rules! sv_target {
    ($ty:ty, $name:literal, $eps:ident, $($extra:tt)*) => {
        impl AttackTarget for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn claimed_epsilon(&self) -> f64 {
                self.$eps()
            }

            fn public_threshold(&self) -> f64 {
                self.threshold()
            }

            $($extra)*

            fn observe(
                &self,
                answers: &QueryAnswers,
                rng: &mut FastRng,
                scratch: &mut SvtScratch,
                out: &mut Observation,
            ) {
                self.run_with_scratch_into(answers, rng, scratch, &mut out.sv);
                out.take_sv();
            }
        }
    };
}

sv_target!(ClassicSparseVector, "classic-svt", epsilon,);
sv_target!(SparseVectorWithGap, "svt-with-gap", epsilon,);
sv_target!(
    DiscreteSparseVectorWithGap,
    "discrete-svt-with-gap",
    epsilon,
    fn lattice_only(&self) -> bool {
        true
    }
);
sv_target!(
    UnscaledNoiseSvt,
    "zoo:unscaled-noise",
    claimed_epsilon,
    // The thinnest true margin on the standard board (ε ≈ 1.2 in theory
    // but the robustly witnessable ratio is ~e^{0.8} vs a claimed 0.6):
    // quadruple the sample budget so the verdict is not seed-luck.
    fn sample_factor(&self) -> usize {
        4
    }
);
sv_target!(NoQueryNoiseSvt, "zoo:no-query-noise", claimed_epsilon,);
sv_target!(
    BudgetMisallocationSvt,
    "zoo:budget-misallocation",
    claimed_epsilon,
);
sv_target!(
    UnboundedCountSvt,
    "zoo:unbounded-top-count",
    claimed_epsilon,
    fn sample_factor(&self) -> usize {
        3
    }
);

impl AttackTarget for AdaptiveSparseVector {
    fn name(&self) -> &'static str {
        "adaptive-svt"
    }

    fn claimed_epsilon(&self) -> f64 {
        self.epsilon()
    }

    fn public_threshold(&self) -> f64 {
        self.threshold()
    }

    fn observe(
        &self,
        answers: &QueryAnswers,
        rng: &mut FastRng,
        scratch: &mut SvtScratch,
        out: &mut Observation,
    ) {
        self.run_with_scratch_into(answers, rng, scratch, &mut out.adaptive);
        out.take_adaptive();
    }
}

impl AttackTarget for NoisyValueSvt {
    fn name(&self) -> &'static str {
        "zoo:noisy-value-reuse"
    }

    fn claimed_epsilon(&self) -> f64 {
        self.claimed_epsilon()
    }

    fn public_threshold(&self) -> f64 {
        self.threshold()
    }

    fn sample_factor(&self) -> usize {
        4
    }

    fn observe(
        &self,
        answers: &QueryAnswers,
        rng: &mut FastRng,
        scratch: &mut SvtScratch,
        out: &mut Observation,
    ) {
        self.run_with_scratch_into(answers, rng, scratch, &mut out.nv);
        out.take_nv();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::fast_rng_from_seed;

    #[test]
    fn observations_are_uniform_across_output_flavors() {
        let answers = QueryAnswers::general(vec![12.0, 8.0, 11.0, 9.0]);
        let mut scratch = SvtScratch::new();
        let mut obs = Observation::new();
        let targets: Vec<Box<dyn AttackTarget>> = vec![
            Box::new(ClassicSparseVector::new(2, 1.0, 10.0, false).unwrap()),
            Box::new(SparseVectorWithGap::new(2, 1.0, 10.0, false).unwrap()),
            Box::new(AdaptiveSparseVector::new(2, 1.0, 10.0, false).unwrap()),
            Box::new(DiscreteSparseVectorWithGap::new(2, 1.0, 10.0, false).unwrap()),
            Box::new(NoisyValueSvt::new(2, 1.0, 10.0).unwrap()),
            Box::new(UnscaledNoiseSvt::new(2, 1.0, 10.0).unwrap()),
            Box::new(NoQueryNoiseSvt::new(1.0, 10.0).unwrap()),
            Box::new(BudgetMisallocationSvt::new(2, 1.0, 10.0).unwrap()),
            Box::new(UnboundedCountSvt::new(1.0, 10.0).unwrap()),
        ];
        for t in &targets {
            let mut rng = fast_rng_from_seed(7);
            t.observe(&answers, &mut rng, &mut scratch, &mut obs);
            assert!(
                !obs.above.is_empty() && obs.above.len() <= answers.len(),
                "{}: processed {} of {}",
                t.name(),
                obs.above.len(),
                answers.len()
            );
            assert!((t.public_threshold() - 10.0).abs() < 1e-12, "{}", t.name());
            assert!((t.claimed_epsilon() - 1.0).abs() < 1e-12, "{}", t.name());
        }
        assert!(targets.iter().filter(|t| t.lattice_only()).count() == 1);
    }
}
