//! Output-event classifiers: fixed projections from an [`Observation`]
//! to small discrete event spaces.
//!
//! A black-box ε lower bound needs an *event* whose probability can be
//! estimated on both sides of an input pair. Raw SVT outputs are too rich
//! (real-valued gaps, long decision vectors), so each observation is pushed
//! through every classifier below and each `(classifier, value)` cell is a
//! candidate event. The family is fixed up front — the estimator's search
//! phase picks a winning cell, and the fresh-sample estimate phase makes
//! that selection statistically free.
//!
//! The classifiers deliberately capture the axes along which the known
//! broken variants leak: decision patterns (no-query-noise's deterministic
//! comparisons), `⊤` counts (the unbounded-count variant), abort structure
//! (budget misallocation), and *joint* pattern-plus-released-value events
//! (noisy-value reuse, whose witness is "many `⊥`s, then a `⊤` whose
//! released value exposes that the noisy threshold sat below `T`").

use crate::target::Observation;

/// Number of classifiers in the fixed family.
pub const NUM_CLASSIFIERS: usize = 6;

/// Short names, index-aligned with the values written by [`classify`].
pub const CLASSIFIER_NAMES: [&str; NUM_CLASSIFIERS] = [
    "decision-bitmask",
    "top-count",
    "abort-position",
    "first-top-index",
    "first-top-value-bucket",
    "pattern+value-bucket",
];

/// Sentinel bucket for "no `⊤` in this run".
const NO_TOP: u64 = 0xFF;

/// Buckets a released value relative to the public threshold: unit-wide
/// buckets over `[T-8, T+8)`, clamped at the ends, offset to `0..16`.
fn value_bucket(v: f64, threshold: f64) -> u64 {
    let b = (v - threshold).floor();
    (b.clamp(-8.0, 7.0) + 8.0) as u64
}

/// Projects one observation through the whole classifier family.
///
/// `threshold` is the target's public `T`; `out[i]` receives classifier
/// `i`'s value for this run.
pub fn classify(obs: &Observation, threshold: f64, out: &mut [u64; NUM_CLASSIFIERS]) {
    let mut bitmask = 0u64;
    let mut top_count = 0u64;
    let mut first_top: Option<(usize, f64)> = None;
    for (i, o) in obs.above.iter().enumerate() {
        if let Some(v) = o {
            if i < 64 {
                bitmask |= 1 << i;
            }
            top_count += 1;
            if first_top.is_none() {
                first_top = Some((i, *v));
            }
        }
    }
    out[0] = bitmask;
    out[1] = top_count;
    out[2] = obs.above.len() as u64;
    out[3] = first_top.map_or(NO_TOP, |(i, _)| i as u64);
    out[4] = first_top.map_or(NO_TOP, |(_, v)| value_bucket(v, threshold));
    // Joint event: the decision pattern of the first 48 queries together
    // with where the first released value landed relative to T. This is
    // the compound witness shape for noisy-value reuse.
    out[5] = (bitmask & 0xFFFF_FFFF_FFFF) | (out[4] << 48);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_of(above: Vec<Option<f64>>) -> Observation {
        let mut o = Observation::new();
        o.above = above;
        o
    }

    #[test]
    fn classifies_the_compound_pattern() {
        let obs = obs_of(vec![None, None, None, None, Some(9.3)]);
        let mut ev = [0u64; NUM_CLASSIFIERS];
        classify(&obs, 10.0, &mut ev);
        assert_eq!(ev[0], 0b10000);
        assert_eq!(ev[1], 1);
        assert_eq!(ev[2], 5);
        assert_eq!(ev[3], 4);
        // 9.3 - 10.0 = -0.7 → bucket floor(-0.7) = -1 → 7.
        assert_eq!(ev[4], 7);
        assert_eq!(ev[5], 0b10000 | (7 << 48));
    }

    #[test]
    fn no_top_runs_use_the_sentinel() {
        let obs = obs_of(vec![None, None]);
        let mut ev = [0u64; NUM_CLASSIFIERS];
        classify(&obs, 10.0, &mut ev);
        assert_eq!(ev[0], 0);
        assert_eq!(ev[1], 0);
        assert_eq!(ev[3], NO_TOP);
        assert_eq!(ev[4], NO_TOP);
    }

    #[test]
    fn buckets_clamp_at_the_range_ends() {
        assert_eq!(value_bucket(-1e9, 0.0), 0);
        assert_eq!(value_bucket(1e9, 0.0), 15);
        assert_eq!(value_bucket(0.0, 0.0), 8);
        assert_eq!(value_bucket(-0.001, 0.0), 7);
    }
}
