//! The two-phase Monte-Carlo attack: search for a distinguishing event,
//! then estimate a statistically sound empirical ε lower bound on fresh
//! samples.
//!
//! **Phase 1 (search).** For every usable candidate pair, sample
//! `search_trials` observations per side, project each through the full
//! classifier family, and score every observed
//! `(pair, classifier, value, direction)` cell with the Clopper–Pearson
//! bound [`free_gap_alignment::binomial::epsilon_lower_bound`]. The
//! highest-scoring cell wins. Everything about this phase is exploratory —
//! its counts are discarded.
//!
//! **Phase 2 (estimate).** Re-sample `estimate_trials` per side on RNG
//! streams disjoint from phase 1 (different derived sub-stream seeds) and
//! count only the chosen event. Because the event was fixed before these
//! samples existed, the reported bound is a valid single-hypothesis
//! confidence bound at level `1 - alpha` — no correction for the size of
//! the search space is needed. This search/estimate split is the dp-sniper
//! discipline, and it is what lets `flagged` double as a *soundness* check:
//! a correct ε-DP mechanism produces a bound above ε with probability at
//! most `alpha/2`, no matter how adversarial the search was.
//!
//! Trials are distributed over worker threads in fixed-size chunks claimed
//! from an atomic counter; every trial uses its own
//! [`derive_fast_stream`]
//! sub-stream keyed by the *global* trial index, so counts are
//! bit-reproducible for a given seed regardless of thread count or
//! scheduling.

// lint:allow-file(panic-freedom): attack harness runs offline; an impossible count or a failed invariant must abort the audit loudly rather than ship a wrong epsilon estimate

use crate::events::{classify, CLASSIFIER_NAMES, NUM_CLASSIFIERS};
use crate::inputs::InputPair;
use crate::target::{AttackTarget, Observation};
use free_gap_alignment::binomial::epsilon_lower_bound;
use free_gap_core::answers::QueryAnswers;
use free_gap_core::scratch::SvtScratch;
use free_gap_noise::rng::{derive_fast_stream, splitmix64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Monte-Carlo budget and significance for one attack run.
#[derive(Debug, Clone, Copy)]
pub struct AttackConfig {
    /// Trials per side per candidate pair in the search phase.
    pub search_trials: usize,
    /// Trials per side for the final fresh-sample estimate.
    pub estimate_trials: usize,
    /// Significance level of the reported lower bound (two-sided CP at
    /// `alpha/2` per tail).
    pub alpha: f64,
    /// Master seed; every stream the attack consumes derives from it.
    pub seed: u64,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
}

impl AttackConfig {
    /// The full-strength configuration used by `repro attack` and the
    /// regression tests.
    pub fn full(seed: u64) -> Self {
        Self {
            search_trials: 64_000,
            estimate_trials: 300_000,
            alpha: 0.01,
            seed,
            threads: 0,
        }
    }

    /// A budgeted smoke configuration for CI (`repro attack --quick`):
    /// fewer trials, looser significance, same verdicts on the standard
    /// suite.
    pub fn quick(seed: u64) -> Self {
        Self {
            search_trials: 16_000,
            estimate_trials: 80_000,
            alpha: 0.05,
            seed,
            threads: 0,
        }
    }
}

/// Outcome of attacking one target.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Target display name.
    pub name: &'static str,
    /// The ε the target's proof claims.
    pub claimed_epsilon: f64,
    /// Clopper–Pearson empirical ε lower bound from the estimate phase.
    pub epsilon_lower_bound: f64,
    /// `epsilon_lower_bound > claimed_epsilon`: the mechanism demonstrably
    /// leaks more than it claims, at confidence `1 - alpha`.
    pub flagged: bool,
    /// Name of the winning input pair.
    pub pair: &'static str,
    /// Name of the winning classifier.
    pub classifier: &'static str,
    /// The winning event's value within that classifier.
    pub event: u64,
    /// Whether the bound is on `P[M(D') ∈ E] / P[M(D) ∈ E]` (the search
    /// scores both directions).
    pub swapped: bool,
    /// Event occurrence counts `(numerator side, denominator side)` in the
    /// estimate phase.
    pub counts: (u64, u64),
    /// Estimate-phase trials per side.
    pub trials: u64,
    /// The search-phase score that selected the event (exploratory; the
    /// sound number is `epsilon_lower_bound`).
    pub search_score: f64,
}

fn mix(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn effective_threads(requested: usize, trials: usize) -> usize {
    let hw = if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    hw.clamp(1, trials.div_ceil(CHUNK).max(1))
}

const CHUNK: usize = 1024;

/// Runs `trials` observations of `target` on `answers`, each on its own
/// derived sub-stream of `stream_seed`, feeding every classified event
/// vector to a per-worker accumulator. Returns the worker accumulators
/// (merge order must not matter — all our merges are commutative counts).
fn run_trials<L, F>(
    target: &dyn AttackTarget,
    answers: &QueryAnswers,
    trials: usize,
    stream_seed: u64,
    threads: usize,
    collect: F,
) -> Vec<L>
where
    L: Default + Send,
    F: Fn(&mut L, &[u64; NUM_CLASSIFIERS]) + Sync,
{
    let threshold = target.public_threshold();
    let threads = effective_threads(threads, trials);
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = L::default();
                    let mut scratch = SvtScratch::new();
                    let mut obs = Observation::new();
                    let mut ev = [0u64; NUM_CLASSIFIERS];
                    loop {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= trials {
                            break;
                        }
                        for t in start..(start + CHUNK).min(trials) {
                            let mut rng = derive_fast_stream(stream_seed, t as u64);
                            target.observe(answers, &mut rng, &mut scratch, &mut obs);
                            classify(&obs, threshold, &mut ev);
                            collect(&mut local, &ev);
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("attack worker panicked"))
            .collect()
    })
}

type EventCounts = HashMap<(u8, u64), u64>;

fn count_all_events(
    target: &dyn AttackTarget,
    answers: &QueryAnswers,
    trials: usize,
    stream_seed: u64,
    threads: usize,
) -> EventCounts {
    let locals: Vec<EventCounts> = run_trials(
        target,
        answers,
        trials,
        stream_seed,
        threads,
        |local: &mut EventCounts, ev| {
            for (c, &v) in ev.iter().enumerate() {
                *local.entry((c as u8, v)).or_insert(0) += 1;
            }
        },
    );
    let mut merged = EventCounts::new();
    for l in locals {
        for (k, v) in l {
            *merged.entry(k).or_insert(0) += v;
        }
    }
    merged
}

fn count_one_event(
    target: &dyn AttackTarget,
    answers: &QueryAnswers,
    trials: usize,
    stream_seed: u64,
    threads: usize,
    classifier: u8,
    value: u64,
) -> u64 {
    run_trials(
        target,
        answers,
        trials,
        stream_seed,
        threads,
        |local: &mut u64, ev| {
            if ev[classifier as usize] == value {
                *local += 1;
            }
        },
    )
    .into_iter()
    .sum()
}

/// Attacks one target over the given candidate pairs.
///
/// Panics if no pair is usable (a lattice-only target with no lattice
/// pairs) — the standard suite always provides lattice candidates.
pub fn attack(target: &dyn AttackTarget, pairs: &[InputPair], cfg: &AttackConfig) -> AttackResult {
    let factor = target.sample_factor().max(1);
    let search_trials = cfg.search_trials * factor;
    let estimate_trials = cfg.estimate_trials * factor;
    let base = mix(cfg.seed, fnv1a(target.name().as_bytes()));

    let usable: Vec<(usize, &InputPair)> = pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.lattice || !target.lattice_only())
        .collect();
    assert!(
        !usable.is_empty(),
        "{}: no candidate pair satisfies the target's input constraints",
        target.name()
    );

    // Phase 1: search. Score every (pair, classifier, value, direction)
    // cell; keys are sorted so the argmax is deterministic even though the
    // counts live in hash maps.
    //
    // The argmax over thousands of cells suffers a winner's curse: a rare
    // cell whose apparent ratio is inflated by luck can outscore a robust
    // high-count cell, and then regress in the estimate phase. Scoring the
    // search at a much stricter significance widens the CP slack sharply
    // for small counts while barely moving large ones, steering selection
    // toward events that replicate. Soundness is untouched — the *reported*
    // bound always comes from phase 2 at the configured `alpha`.
    let search_alpha = cfg.alpha / 50.0;
    let mut best: Option<(f64, usize, u8, u64, bool)> = None;
    for &(pair_idx, pair) in &usable {
        let seed_d = mix(base, 4 * pair_idx as u64);
        let seed_dp = mix(base, 4 * pair_idx as u64 + 1);
        let counts_d = count_all_events(target, &pair.d, search_trials, seed_d, cfg.threads);
        let counts_dp = count_all_events(target, &pair.dp, search_trials, seed_dp, cfg.threads);

        let mut keys: Vec<(u8, u64)> = counts_d.keys().chain(counts_dp.keys()).copied().collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let ca = counts_d.get(&key).copied().unwrap_or(0);
            let cb = counts_dp.get(&key).copied().unwrap_or(0);
            let n = search_trials as u64;
            for (score, swapped) in [
                (epsilon_lower_bound(ca, cb, n, search_alpha), false),
                (epsilon_lower_bound(cb, ca, n, search_alpha), true),
            ] {
                let candidate = (score, pair_idx, key.0, key.1, swapped);
                if best.is_none_or(|b| candidate.0 > b.0) {
                    best = Some(candidate);
                }
            }
        }
    }
    let (search_score, pair_idx, classifier, value, swapped) =
        best.expect("search phase produced no events");
    let pair = &pairs[pair_idx];
    let (num_side, den_side) = if swapped {
        (&pair.dp, &pair.d)
    } else {
        (&pair.d, &pair.dp)
    };

    // Phase 2: fresh-sample estimate of the single chosen event.
    let seed_a = mix(base, 0xE571_0000);
    let seed_b = mix(base, 0xE571_0001);
    let ca = count_one_event(
        target,
        num_side,
        estimate_trials,
        seed_a,
        cfg.threads,
        classifier,
        value,
    );
    let cb = count_one_event(
        target,
        den_side,
        estimate_trials,
        seed_b,
        cfg.threads,
        classifier,
        value,
    );
    let bound = epsilon_lower_bound(ca, cb, estimate_trials as u64, cfg.alpha);

    AttackResult {
        name: target.name(),
        claimed_epsilon: target.claimed_epsilon(),
        epsilon_lower_bound: bound,
        flagged: bound > target.claimed_epsilon(),
        pair: pair.name,
        classifier: CLASSIFIER_NAMES[classifier as usize],
        event: value,
        swapped,
        counts: (ca, cb),
        trials: estimate_trials as u64,
        search_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::standard_pairs;
    use free_gap_core::sparse_vector::ClassicSparseVector;

    #[test]
    fn mixing_is_stable_and_spread() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(fnv1a(b"classic-svt"), fnv1a(b"svt-with-gap"));
    }

    #[test]
    fn results_are_thread_count_invariant() {
        // The whole determinism story: same seed, different worker counts,
        // identical counts and bound.
        let target = ClassicSparseVector::new(2, 1.0, 10.0, false).unwrap();
        let pairs = standard_pairs(10.0);
        let mut cfg = AttackConfig {
            search_trials: 1_500,
            estimate_trials: 3_000,
            alpha: 0.05,
            seed: 11,
            threads: 1,
        };
        let one = attack(&target, &pairs, &cfg);
        cfg.threads = 4;
        let four = attack(&target, &pairs, &cfg);
        assert_eq!(one.counts, four.counts);
        assert_eq!(one.event, four.event);
        assert_eq!(one.pair, four.pair);
        assert_eq!(one.classifier, four.classifier);
        assert!((one.epsilon_lower_bound - four.epsilon_lower_bound).abs() < 1e-15);
    }

    #[test]
    fn null_pair_produces_a_null_bound() {
        // d == d': every event has identical probability on both sides, so
        // the CP lower bound must collapse to ~0 and nothing is flagged.
        let target = ClassicSparseVector::new(2, 1.0, 10.0, false).unwrap();
        let d = vec![10.5, 9.0, 11.0, 8.0];
        let pairs = vec![InputPair {
            name: "null",
            d: QueryAnswers::general(d.clone()),
            dp: QueryAnswers::general(d),
            lattice: false,
        }];
        let cfg = AttackConfig {
            search_trials: 4_000,
            estimate_trials: 8_000,
            alpha: 0.05,
            seed: 3,
            threads: 0,
        };
        let r = attack(&target, &pairs, &cfg);
        assert!(
            r.epsilon_lower_bound < 0.35,
            "null pair bound {} should be near zero",
            r.epsilon_lower_bound
        );
        assert!(!r.flagged);
    }
}
