//! Deterministic-seed detection regression tests.
//!
//! Two families:
//!
//! * **Verdict regressions** — with a pinned seed and a reduced (but still
//!   adequate) Monte-Carlo budget, every zoo variant must be flagged and
//!   every correct mechanism must pass, exactly as `repro attack` asserts
//!   at full strength.
//! * **Power checks** — deliberately weakened detectors must *lose* the
//!   broken variants. If a crippled configuration still flagged everything,
//!   the positive results above would prove nothing about the harness;
//!   these tests pin down which ingredients (sample budget, mixed-direction
//!   pairs) the detector's power actually comes from.

use free_gap_attack::{
    attack, run_suite, standard_pairs, AttackConfig, AttackTarget, InputPair, SUITE_THRESHOLD,
};
use free_gap_core::sparse_vector::broken::{UnboundedCountSvt, UnscaledNoiseSvt};
use free_gap_core::sparse_vector::{ClassicSparseVector, SparseVectorWithGap};

#[test]
fn suite_verdicts_are_reproducible_at_the_ci_seed() {
    // Exactly the configuration the CI smoke step runs (`repro attack
    // --quick` at its default seed), so this test pins the same board the
    // workflow gates on. The budget matters: the thinnest margin on the
    // board (zoo:unscaled-noise, ε̂ ≈ 0.67 vs claimed 0.6) needs the full
    // quick sample size — see `starved_detector_loses_the_subtlest_variant`.
    let report = run_suite(&AttackConfig::quick(20190412));
    assert_eq!(report.rows.len(), 9);
    let false_flags: Vec<&str> = report.false_flags().map(|r| r.result.name).collect();
    let escapes: Vec<&str> = report.escapes().map(|r| r.result.name).collect();
    assert!(
        report.ok(),
        "false flags: {false_flags:?}, escapes: {escapes:?}"
    );
    for row in &report.rows {
        if row.expect_broken {
            assert!(
                row.result.epsilon_lower_bound > row.result.claimed_epsilon,
                "{}: bound {} must exceed claimed {}",
                row.result.name,
                row.result.epsilon_lower_bound,
                row.result.claimed_epsilon
            );
        }
    }
}

#[test]
fn correct_mechanisms_pass_across_seeds() {
    // Soundness does not depend on the Monte-Carlo budget, so a small one
    // lets us afford several seeds: the CP bound on a true ε-DP mechanism
    // exceeds ε only with probability ≤ α/2 per (target, seed).
    let pairs = standard_pairs(SUITE_THRESHOLD);
    let classic = ClassicSparseVector::new(2, 1.0, SUITE_THRESHOLD, false).unwrap();
    let gap = SparseVectorWithGap::new(2, 1.0, SUITE_THRESHOLD, false).unwrap();
    for seed in [1, 2, 3] {
        let cfg = AttackConfig {
            search_trials: 2_000,
            estimate_trials: 8_000,
            alpha: 0.05,
            seed,
            threads: 0,
        };
        for target in [&classic as &dyn AttackTarget, &gap] {
            let r = attack(target, &pairs, &cfg);
            assert!(
                !r.flagged,
                "seed {seed}: {} falsely flagged at bound {}",
                r.name, r.epsilon_lower_bound
            );
        }
    }
}

#[test]
fn starved_detector_loses_the_subtlest_variant() {
    // Power check #1: the sample budget is load-bearing. zoo:unscaled-noise
    // has the thinnest true margin on the board (ε̂ ≈ 0.74 vs claimed 0.6 at
    // full strength); with two orders of magnitude fewer samples the
    // Clopper–Pearson slack swallows that margin and the variant escapes.
    let target = UnscaledNoiseSvt::new(3, 0.6, SUITE_THRESHOLD).unwrap();
    let pairs = standard_pairs(SUITE_THRESHOLD);
    let cfg = AttackConfig {
        search_trials: 300,
        estimate_trials: 800,
        alpha: 0.01,
        seed: 0,
        threads: 0,
    };
    let r = attack(&target, &pairs, &cfg);
    assert!(
        !r.flagged,
        "a starved detector should not have the power to flag {} (bound {})",
        r.name, r.epsilon_lower_bound
    );
}

#[test]
fn monotone_pairs_cannot_witness_the_unbounded_count() {
    // Power check #2: the mixed-direction pairs are load-bearing. On any
    // uniformly-shifted pair, the threshold noise absorbs the whole shift,
    // capping every event's likelihood ratio at e^{ε₁} = e^{0.5} for this
    // target — below its claimed ε = 1, so no event can flag it no matter
    // how many samples are spent. Restricting the detector to the monotone
    // pairs must therefore lose the unbounded-⊤-count variant.
    let target = UnboundedCountSvt::new(1.0, SUITE_THRESHOLD).unwrap();
    let monotone: Vec<InputPair> = standard_pairs(SUITE_THRESHOLD)
        .into_iter()
        .filter(|p| {
            let mut shifts = p.d.values().iter().zip(p.dp.values()).map(|(a, b)| a - b);
            shifts.all(|s| (s - 1.0).abs() < 1e-12)
        })
        .collect();
    assert!(
        monotone.len() >= 3,
        "expected the uniform-shift pairs (one-above, all-at-threshold, all-above)"
    );
    let cfg = AttackConfig {
        search_trials: 4_000,
        estimate_trials: 30_000,
        alpha: 0.05,
        seed: 0,
        threads: 0,
    };
    let r = attack(&target, &monotone, &cfg);
    assert!(
        !r.flagged,
        "monotone pairs are ratio-capped at e^0.5 yet flagged {} at bound {}",
        r.name, r.epsilon_lower_bound
    );
    assert!(
        r.epsilon_lower_bound < 0.75,
        "bound {} should sit near the e^0.5 absorption cap",
        r.epsilon_lower_bound
    );
}
