//! Criterion microbenchmarks: postprocessing cost.
//!
//! Theorem 3's matrix form is O(k²); the paper's §5.2 algorithm is O(k).
//! This bench quantifies the gap (both are microseconds at paper-scale k,
//! but the linear form matters when BLUE runs inside a 10,000-run sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use free_gap_core::postprocess::{blue_estimates, blue_estimates_matrix, BlueInput};
use free_gap_noise::rng::rng_from_seed;
use free_gap_noise::{ContinuousDistribution, Laplace};
use std::hint::black_box;

fn inputs(k: usize) -> (Vec<f64>, Vec<f64>) {
    let lap = Laplace::new(1.0).unwrap();
    let mut rng = rng_from_seed(3);
    let measurements: Vec<f64> = (0..k)
        .map(|i| (k - i) as f64 * 10.0 + lap.sample(&mut rng))
        .collect();
    let gaps: Vec<f64> = (0..k - 1).map(|_| 10.0 + lap.sample(&mut rng)).collect();
    (measurements, gaps)
}

fn bench_blue(c: &mut Criterion) {
    let mut group = c.benchmark_group("blue");
    for &k in &[5usize, 25, 100] {
        let (measurements, gaps) = inputs(k);
        let input = BlueInput {
            measurements: &measurements,
            gaps: &gaps,
            lambda: 1.0,
        };
        group.bench_with_input(BenchmarkId::new("linear", k), &input, |b, inp| {
            b.iter(|| black_box(blue_estimates(inp).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("matrix", k), &input, |b, inp| {
            b.iter(|| black_box(blue_estimates_matrix(inp).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_blue
}
criterion_main!(benches);
