//! Criterion microbenchmarks: noise-sampler throughput.
//!
//! The mechanisms draw one or two Laplace variates per query, so sampler
//! speed dominates the experiments' inner loop; Staircase and Discrete
//! Laplace are included as the drop-in alternatives §3.1 mentions.

use criterion::{criterion_group, criterion_main, Criterion};
use free_gap_noise::rng::{fast_rng_from_seed, rng_from_seed};
use free_gap_noise::{
    ContinuousDistribution, DiscreteDistribution, DiscreteLaplace, Exponential, Laplace, Staircase,
};
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    let laplace = Laplace::new(2.0).unwrap();
    group.bench_function("laplace", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| black_box(laplace.sample(&mut rng)));
    });
    let exponential = Exponential::new(2.0).unwrap();
    group.bench_function("exponential", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| black_box(exponential.sample(&mut rng)));
    });
    let staircase = Staircase::optimal(1.0, 1.0).unwrap();
    group.bench_function("staircase", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| black_box(staircase.sample(&mut rng)));
    });
    let discrete = DiscreteLaplace::new(1.0, 2f64.powi(-20)).unwrap();
    group.bench_function("discrete_laplace", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| black_box(discrete.sample_value(&mut rng)));
    });
    group.finish();
}

fn bench_batch_noise(c: &mut Criterion) {
    // The per-run inner loop of the experiments: noising a full BMS-POS-size
    // query vector, per-sample vs the batched `fill_into` fast path (with
    // both the default ChaCha `StdRng` and the Monte-Carlo `FastRng`).
    let mut group = c.benchmark_group("batch_noise");
    let laplace = Laplace::new(2.0).unwrap();
    for &n in &[1_657usize, 41_270] {
        group.bench_function(format!("laplace_sample_loop_{n}"), |b| {
            let mut rng = rng_from_seed(1);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..n {
                    acc += laplace.sample(&mut rng);
                }
                black_box(acc)
            });
        });
        group.bench_function(format!("laplace_fill_into_{n}"), |b| {
            let mut rng = rng_from_seed(1);
            let mut buf = vec![0.0; n];
            b.iter(|| {
                laplace.fill_into(&mut rng, &mut buf);
                black_box(buf[n - 1])
            });
        });
        group.bench_function(format!("laplace_fill_into_fast_{n}"), |b| {
            let mut rng = fast_rng_from_seed(1);
            let mut buf = vec![0.0; n];
            b.iter(|| {
                laplace.fill_into(&mut rng, &mut buf);
                black_box(buf[n - 1])
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_samplers, bench_batch_noise
}
criterion_main!(benches);
