//! Criterion microbenchmarks: mechanism throughput on realistic workloads.
//!
//! These measure the *cost* of the free-gap mechanisms against their
//! classic baselines — the paper's claim is that the gap information is
//! free in privacy; these benches confirm it is also essentially free in
//! compute (same noise draws, same selection pass) — and the batched
//! `run_with_scratch` fast paths against the allocating `run` paths
//! (see `repro bench` for the full grid with JSON output).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use free_gap_core::noisy_max::{ClassicNoisyTopK, NoisyTopKWithGap};
use free_gap_core::scratch::{SvtScratch, TopKScratch};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, ClassicSparseVector, SparseVectorWithGap,
};
use free_gap_core::QueryAnswers;
use free_gap_data::Dataset;
use free_gap_noise::rng::{fast_rng_from_seed, rng_from_seed};
use std::hint::black_box;

fn workload(n_hint: usize) -> QueryAnswers {
    // A scaled BMS-POS-like count vector; n_hint trims the query count so
    // benches can sweep workload size.
    let db = Dataset::BmsPos.generate_scaled(0.02, 7);
    let counts = db.item_counts();
    let values: Vec<f64> = counts.to_f64().into_iter().take(n_hint).collect();
    QueryAnswers::counting(values)
}

fn bench_noisy_max_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_max");
    for &n in &[256usize, 1657] {
        let answers = workload(n);
        let k = 10.min(n - 1);
        let classic = ClassicNoisyTopK::new(k, 0.7, true).unwrap();
        let with_gap = NoisyTopKWithGap::new(k, 0.7, true).unwrap();
        group.bench_with_input(BenchmarkId::new("classic_topk", n), &answers, |b, a| {
            let mut rng = rng_from_seed(1);
            b.iter(|| black_box(classic.run(a, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("topk_with_gap", n), &answers, |b, a| {
            let mut rng = rng_from_seed(1);
            b.iter(|| black_box(with_gap.run(a, &mut rng)));
        });
        group.bench_with_input(
            BenchmarkId::new("topk_with_gap_scratch", n),
            &answers,
            |b, a| {
                let mut rng = rng_from_seed(1);
                let mut scratch = TopKScratch::new();
                b.iter(|| black_box(with_gap.run_with_scratch(a, &mut rng, &mut scratch)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("topk_with_gap_scratch_fast", n),
            &answers,
            |b, a| {
                let mut rng = fast_rng_from_seed(1);
                let mut scratch = TopKScratch::new();
                b.iter(|| black_box(with_gap.run_with_scratch(a, &mut rng, &mut scratch)));
            },
        );
    }
    group.finish();
}

fn bench_sparse_vector_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vector");
    let answers = workload(1657);
    let threshold = {
        // A mid-range threshold so the mechanisms process a realistic prefix.
        let mut sorted: Vec<f64> = answers.values().to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        sorted[40]
    };
    let k = 10;
    let classic = ClassicSparseVector::new(k, 0.7, threshold, true).unwrap();
    let with_gap = SparseVectorWithGap::new(k, 0.7, threshold, true).unwrap();
    let adaptive = AdaptiveSparseVector::new(k, 0.7, threshold, true).unwrap();
    group.bench_function("classic_svt", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| black_box(classic.run(&answers, &mut rng)));
    });
    group.bench_function("svt_with_gap", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| black_box(with_gap.run(&answers, &mut rng)));
    });
    group.bench_function("adaptive_svt_with_gap", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| black_box(adaptive.run(&answers, &mut rng)));
    });
    group.bench_function("adaptive_svt_with_gap_scratch", |b| {
        let mut rng = rng_from_seed(2);
        let mut scratch = SvtScratch::new();
        b.iter(|| black_box(adaptive.run_with_scratch(&answers, &mut rng, &mut scratch)));
    });
    group.bench_function("adaptive_svt_with_gap_scratch_fast", |b| {
        let mut rng = fast_rng_from_seed(2);
        let mut scratch = SvtScratch::new();
        b.iter(|| black_box(adaptive.run_with_scratch(&answers, &mut rng, &mut scratch)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_noisy_max_family, bench_sparse_vector_family
}
criterion_main!(benches);
