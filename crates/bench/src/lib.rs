//! # free-gap-bench
//!
//! Experiment harness reproducing **every table and figure** in the
//! evaluation (§7) of Ding et al., *Free Gap Information from the
//! Differentially Private Sparse Vector and Noisy Max Mechanisms* (VLDB
//! 2019), plus the ablations called out in `DESIGN.md`.
//!
//! | Experiment | Paper artifact | Module |
//! |------------|----------------|--------|
//! | `datasets` | §7.1 dataset table | [`experiments::datasets`] |
//! | `fig1a` / `fig1b` | Fig. 1: % MSE improvement vs `k` (BMS-POS) | [`experiments::fig1`] |
//! | `fig2a` / `fig2b` | Fig. 2: % MSE improvement vs `ε` (kosarak) | [`experiments::fig2`] |
//! | `fig3` | Fig. 3: answers + precision/F-measure, SVT vs Adaptive | [`experiments::fig3`] |
//! | `fig4` | Fig. 4: % remaining budget | [`experiments::fig4`] |
//! | `ablation-*` | θ / σ / budget-split sweeps (not in the paper) | [`experiments::ablations`] |
//! | `bench` | mechanism-throughput grid (not in the paper) | [`perf`] |
//!
//! Every experiment is a pure function of `(ExperimentConfig, parameters)`;
//! the `repro` binary is a thin CLI over them. Monte-Carlo runs are
//! parallelized over threads with per-run derived RNG streams
//! ([`runner::parallel_runs`]) so results are independent of thread count,
//! and each worker thread reuses one set of scratch buffers across its whole
//! chunk ([`runner::parallel_runs_with_state`] + the `run_with_scratch`
//! fast paths of `free-gap-core`), keeping the Monte-Carlo inner loops
//! allocation-free.
//!
//! ## Performance tracking
//!
//! `repro bench` times every mechanism's allocating path against its batched
//! scratch path (with both the deterministic `StdRng` and the Monte-Carlo
//! `FastRng`) over an `n × k` grid and writes `BENCH_mechanisms.json`
//! (schema documented in [`perf`]). The checked-in copy is the baseline for
//! this machine class; regenerate on comparable hardware before comparing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod runner;
pub mod table;
pub mod workloads;

/// Shared knobs for all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Monte-Carlo runs per plotted point. The paper uses 10,000; defaults
    /// here are smaller (documented per experiment) for laptop-scale runs.
    pub runs: usize,
    /// Dataset scale fraction in `(0, 1]` (record count; the item universe
    /// always stays at full size so rank-based thresholds are comparable).
    pub scale: f64,
    /// Root RNG seed.
    pub seed: u64,
    /// Total privacy budget ε for the experiments that fix it.
    pub epsilon: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            runs: 1000,
            scale: 1.0,
            seed: 20190412,
            epsilon: 0.7,
        }
    }
}
