//! Mechanism-throughput harness: the `repro bench` command.
//!
//! Times Monte-Carlo loops of each mechanism over an `n × k` grid, once per
//! execution path:
//!
//! | path | meaning |
//! |------|---------|
//! | `dyn` | the allocating `run` path — `dyn NoiseSource` dispatch, fresh buffers per run (the "before") |
//! | `scratch` | `run_with_scratch` — batched noise, reused buffers, monomorphic `StdRng` |
//! | `scratch_fast` | `run_with_scratch` driven by [`FastRng`](free_gap_noise::rng::FastRng) (Xoshiro) — the Monte-Carlo fast path |
//! | `streaming` | `run_streaming_with_scratch` (and the baselines' streaming entries) — the lazy-iterator serving path (all mechanisms except the Noisy-Top-K family, which needs the whole vector by definition) |
//! | `par` | [`AnyMechanism::call_par`] — the intra-run parallel path: per-block sub-stream noise fill plus the per-chunk selection reduce, threads clamped to `min(available_parallelism, 4)` (the Top-K family, the exponential race and the staircase measurement; the SVT family's threshold loop is inherently sequential) |
//!
//! All paths execute the *same mechanism*: `scratch` and `streaming` are
//! bit-identical to `dyn` per run (see `free_gap_core::scratch` and the
//! `scratch_equivalence` suite), and `scratch_fast` only swaps the
//! generator. The `par` path draws the documented per-block sub-stream
//! layout instead of one sequential stream — a *different* (equally
//! well-defined) sample than `scratch_fast`, but bit-identical to itself
//! for every thread count (the `draw` module's 1-vs-4-thread digest tests
//! pin this), so its throughput is comparable cell-for-cell. The `dyn` and `scratch(_fast)` cells dispatch through the
//! unified `free_gap_core::api::Mechanism` trait
//! ([`AnyMechanism::call_reference`] / [`AnyMechanism::call_batched`], the
//! same surface the serving layer speaks), whose bit-identity to the
//! historical per-mechanism entry points is pinned by the `api_surface`
//! suite. Results are printed as a table and written to
//! `BENCH_mechanisms.json` so the perf trajectory is tracked across PRs —
//! compare the file in version control against a fresh run on the same
//! machine before claiming a regression or a win.
//!
//! The `streaming` cells here pull queries from an iterator over the same
//! materialized workload, so they isolate the *overhead* of the streaming
//! layer versus `scratch` (expected: none — both early-stop after the k-th
//! ⊤, which on the shuffled workloads is a small prefix of the long
//! streams). The *win* of the streaming path — answering from a generator
//! without ever materializing the query vector — is demonstrated
//! end-to-end by `examples/streaming_svt.rs`.
//!
//! The headline before/after comparison is `dyn` (the only path that
//! existed before the batching work) against `scratch_fast` (the Monte-Carlo
//! substrate those loops now use: batching + monomorphization + the fast
//! generator together) — ~2× on the continuous 100k-query cells and
//! ~2.4–2.9× on the discrete (finite-precision) ones. The `scratch` column
//! isolates how much of that is batching alone under the deterministic
//! ChaCha generator: ~1.1× for the continuous mechanisms (per-draw cost
//! there is dominated by ChaCha and `ln`, which batching cannot remove) and
//! ~1.7–2.0× for the discrete ones, whose dyn path additionally pays a
//! per-draw distribution construction (`exp` + `ln`) that the scratch tape
//! hoists and caches per rate.
//!
//! The discrete mechanisms run on the integer-lattice projection of the
//! same workload (their finite-precision contract), with the threshold
//! taken from the rounded counts so it sits on the lattice.
//!
//! ## `BENCH_mechanisms.json` protocol
//!
//! A single JSON object:
//!
//! ```json
//! {
//!   "schema": "free-gap-bench/mechanisms/v1",
//!   "seed": 20190412,
//!   "grid": { "n": [1000, ...], "k": [10, ...] },
//!   "results": [
//!     { "mechanism": "NoisyTopKWithGap", "path": "scratch", "n": 100000,
//!       "k": 10, "runs": 137, "elapsed_secs": 0.301,
//!       "runs_per_sec": 455.1 },
//!     ...
//!   ]
//! }
//! ```
//!
//! `runs_per_sec` is the headline number; `runs`/`elapsed_secs` let a reader
//! judge measurement quality. Records appear for every
//! `mechanism × path × n × k` cell (paths per mechanism as listed in
//! [`MECHANISM_PATHS`]: every mechanism except the Noisy-Top-K family has
//! the extra `streaming` path), so "the speedup" for a cell is the ratio of its
//! `scratch`(`_fast`)/`streaming` and `dyn` records. [`missing_cells`]
//! re-derives the expected cell set from the same table, which is what the
//! CI smoke step runs against a freshly written file.

// lint:allow-file(panic-freedom): the timing grid builds mechanisms from known-valid parameters; a failure must abort the run — a typed error would record a silently wrong baseline

use crate::table::Table;
use free_gap_core::api::{
    AnyMechanism, CallScratch, ExponentialTopK, Mechanism, MechanismOutput, QuerySlice,
};
use free_gap_core::draw::ParallelDraws;
use free_gap_core::exponential_mech::ExponentialMechanism;
use free_gap_core::noisy_max::{ClassicNoisyTopK, DiscreteNoisyTopKWithGap, NoisyTopKWithGap};
use free_gap_core::scratch::{SvtScratch, TopKScratch};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, AdaptiveSvOutput, ClassicSparseVector, DiscreteSparseVectorWithGap,
    MultiBranchAdaptiveSparseVector, MultiBranchSvOutput, SparseVectorWithGap, SvOutput,
};
use free_gap_core::staircase_mech::StaircaseMechanism;
use free_gap_core::QueryAnswers;
use free_gap_noise::rng::{derive_fast_stream, derive_stream, derive_stream_seed};
use rand::seq::SliceRandom;
use rand::Rng;
use std::hint::black_box;
use std::time::Instant;

/// The benchmarked mechanisms and the execution paths each one has, in
/// record order. This is the single source of truth for grid coverage:
/// [`run_grid`] produces exactly these cells and [`missing_cells`] checks a
/// written JSON against them.
pub const MECHANISM_PATHS: [(&str, &[&str]); 10] = [
    (
        "NoisyTopKWithGap",
        &["dyn", "scratch", "scratch_fast", "par"],
    ),
    (
        "ClassicNoisyTopK",
        &["dyn", "scratch", "scratch_fast", "par"],
    ),
    (
        "DiscreteNoisyTopKWithGap",
        &["dyn", "scratch", "scratch_fast", "par"],
    ),
    (
        "ExponentialMechanism",
        &["dyn", "scratch", "scratch_fast", "streaming", "par"],
    ),
    (
        "StaircaseMechanism",
        &["dyn", "scratch", "scratch_fast", "streaming", "par"],
    ),
    (
        "SparseVectorWithGap",
        &["dyn", "scratch", "scratch_fast", "streaming"],
    ),
    (
        "ClassicSparseVector",
        &["dyn", "scratch", "scratch_fast", "streaming"],
    ),
    (
        "AdaptiveSparseVector",
        &["dyn", "scratch", "scratch_fast", "streaming"],
    ),
    (
        "MultiBranchAdaptiveSparseVector",
        &["dyn", "scratch", "scratch_fast", "streaming"],
    ),
    (
        "DiscreteSparseVectorWithGap",
        &["dyn", "scratch", "scratch_fast", "streaming"],
    ),
];

/// One timed cell of the benchmark grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Mechanism name (type name, e.g. `NoisyTopKWithGap`).
    pub mechanism: &'static str,
    /// Execution path: `dyn`, `scratch`, `scratch_fast` or `streaming`.
    pub path: &'static str,
    /// Workload size (number of queries).
    pub n: usize,
    /// Selection parameter `k`.
    pub k: usize,
    /// Completed Monte-Carlo runs this record accounts for: the cell total
    /// in fixed-`runs` mode, the fastest window in time-budget mode.
    pub runs: usize,
    /// Wall-clock seconds spent on those runs.
    pub elapsed_secs: f64,
}

impl BenchRecord {
    /// Throughput in mechanism runs per second.
    pub fn runs_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.runs as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// Configuration for the throughput harness.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Root seed for workload generation and per-run streams.
    pub seed: u64,
    /// Fixed run count per cell: exactly this many timed runs are executed
    /// (partitioned across the timing windows) and the recorded
    /// `runs`/`elapsed_secs` are the cell totals. `None` uses the time
    /// budget instead.
    pub runs: Option<usize>,
    /// Time budget per cell in seconds when `runs` is `None`.
    pub budget_secs: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            seed: 20190412,
            runs: None,
            budget_secs: 1.0,
        }
    }
}

/// The workload sizes of the default grid (the largest matches the paper's
/// biggest dataset order of magnitude).
pub const N_GRID: [usize; 3] = [1_000, 10_000, 100_000];

/// The `k` values of the default grid.
pub const K_GRID: [usize; 2] = [10, 25];

/// A monotone counting workload of size `n`: Zipf-like counts, jittered so
/// rankings are non-trivial, in **shuffled** stream order (transaction
/// datasets do not arrive count-sorted, and SVT throughput is dominated by
/// how deep it scans before collecting its `k` answers). Deterministic in
/// `seed`.
fn synthetic_counts(n: usize, seed: u64) -> QueryAnswers {
    let mut rng = derive_stream(seed, 0xBEEC);
    let mut values: Vec<f64> = (0..n)
        .map(|i| 1_000_000.0 / (i + 1) as f64 + rng.gen_range(0.0..50.0))
        .collect();
    values.shuffle(&mut rng);
    QueryAnswers::counting(values)
}

/// The same workload rounded onto the integer lattice `γ = 1` — the
/// finite-precision mechanisms require exact lattice multiples.
fn synthetic_integer_counts(answers: &QueryAnswers) -> QueryAnswers {
    QueryAnswers::counting(answers.values().iter().map(|v| v.round()).collect())
}

/// SVT threshold at descending rank `4k` (mid-range per the §7.2 protocol).
fn rank_threshold(answers: &QueryAnswers, k: usize) -> f64 {
    let mut sorted: Vec<f64> = answers.values().to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    sorted[(4 * k).min(sorted.len() - 1)]
}

/// Timing windows per cell. On shared machines a single window is hostage
/// to whatever else ran during it; in time-budget mode the fastest window
/// is reported (approximating uncontended throughput, symmetrically for
/// every path), while fixed-`runs` mode partitions the requested count
/// across the windows and reports the cell totals, so the recorded `runs`
/// equals what the user asked for and no extra work is executed.
const WINDOWS: usize = 3;

/// Times `body(run_index)` and returns `(runs, elapsed_secs)`.
///
/// * Fixed-`runs` mode: exactly `target` timed runs are executed,
///   partitioned across [`WINDOWS`] windows; the cell **total** runs and
///   elapsed time are returned (`runs == target`; a degenerate target of 0
///   is clamped to 1 so every record keeps a measurable cell — the `repro`
///   CLI rejects `--runs 0` up front).
/// * Time-budget mode: each window runs for a third of the budget and the
///   fastest window is returned.
fn time_cell(config: &BenchConfig, mut body: impl FnMut(u64)) -> (usize, f64) {
    // Warm up: populate caches/buffers outside the timed windows.
    body(u64::MAX);
    let mut next_run = 0u64;
    if let Some(target) = config.runs {
        let target = target.max(1);
        let mut total_elapsed = 0.0;
        for window in 0..WINDOWS {
            // Partition: the first `target % WINDOWS` windows take one extra
            // run, so window sizes sum to exactly `target`.
            let window_runs = target / WINDOWS + usize::from(window < target % WINDOWS);
            if window_runs == 0 {
                continue;
            }
            let start = Instant::now();
            for _ in 0..window_runs {
                body(next_run);
                next_run += 1;
            }
            total_elapsed += start.elapsed().as_secs_f64();
        }
        return (target, total_elapsed);
    }
    let mut best: Option<(usize, f64)> = None;
    for _ in 0..WINDOWS {
        let start = Instant::now();
        let mut runs = 0usize;
        loop {
            body(next_run);
            next_run += 1;
            runs += 1;
            // Check the clock in batches of 16 to keep `Instant::now`
            // out of the hot loop.
            if runs.is_multiple_of(16)
                && start.elapsed().as_secs_f64() >= config.budget_secs / WINDOWS as f64
            {
                break;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let better = match best {
            Some((b_runs, b_elapsed)) => runs as f64 * b_elapsed > b_runs as f64 * elapsed,
            None => true,
        };
        if better {
            best = Some((runs, elapsed));
        }
    }
    best.expect("at least one window ran")
}

/// Times one `mechanism × n × k` cell across the three materialized paths,
/// pushing a record per path. `scratch_run` receives `fast = true` for the
/// FastRng variant so one closure (and one scratch borrow) serves both.
/// SVT mechanisms additionally get a `streaming` record via
/// [`bench_streaming_cell`].
#[allow(clippy::too_many_arguments)]
fn bench_cell(
    records: &mut Vec<BenchRecord>,
    config: &BenchConfig,
    mechanism: &'static str,
    n: usize,
    k: usize,
    mut dyn_run: impl FnMut(u64),
    mut scratch_run: impl FnMut(u64, bool),
) {
    let mut push = |path, (runs, elapsed_secs)| {
        records.push(BenchRecord {
            mechanism,
            path,
            n,
            k,
            runs,
            elapsed_secs,
        });
    };
    push("dyn", time_cell(config, &mut dyn_run));
    push("scratch", time_cell(config, |r| scratch_run(r, false)));
    push("scratch_fast", time_cell(config, |r| scratch_run(r, true)));
}

/// Times the lazy-iterator path of one SVT cell and pushes its `streaming`
/// record.
fn bench_streaming_cell(
    records: &mut Vec<BenchRecord>,
    config: &BenchConfig,
    mechanism: &'static str,
    n: usize,
    k: usize,
    mut streaming_run: impl FnMut(u64),
) {
    let (runs, elapsed_secs) = time_cell(config, &mut streaming_run);
    records.push(BenchRecord {
        mechanism,
        path: "streaming",
        n,
        k,
        runs,
        elapsed_secs,
    });
}

/// The ten grid mechanisms as [`AnyMechanism`] values, in
/// [`MECHANISM_PATHS`] record order. One constructor list instead of ten
/// inline blocks: the unified call surface is what lets [`run_grid`]'s
/// timing loop dispatch every dyn/scratch cell through the same two
/// closures.
fn grid_mechanisms(k: usize, threshold: f64, int_threshold: f64) -> Vec<AnyMechanism> {
    vec![
        NoisyTopKWithGap::new(k, 0.7, true)
            .expect("valid parameters")
            .into(),
        ClassicNoisyTopK::new(k, 0.7, true)
            .expect("valid parameters")
            .into(),
        DiscreteNoisyTopKWithGap::new(k, 0.7, true)
            .expect("valid parameters")
            .into(),
        ExponentialTopK::new(
            ExponentialMechanism::new(0.7, true).expect("valid parameters"),
            k,
        )
        .expect("valid parameters")
        .into(),
        StaircaseMechanism::new(0.7)
            .expect("valid parameters")
            .into(),
        SparseVectorWithGap::new(k, 0.7, threshold, true)
            .expect("valid parameters")
            .into(),
        ClassicSparseVector::new(k, 0.7, threshold, true)
            .expect("valid parameters")
            .into(),
        AdaptiveSparseVector::new(k, 0.7, threshold, true)
            .expect("valid parameters")
            .into(),
        MultiBranchAdaptiveSparseVector::new(k, 0.7, threshold, true, 3)
            .expect("valid parameters")
            .into(),
        DiscreteSparseVectorWithGap::new(k, 0.7, int_threshold, true)
            .expect("valid parameters")
            .into(),
    ]
}

/// Runs the full `mechanism × path × n × k` grid.
///
/// The `dyn`/`scratch`/`scratch_fast` cells all dispatch through the
/// unified `Mechanism` trait: `dyn` is [`AnyMechanism::call_reference`]
/// (the allocating `dyn NoiseSource` path) and the scratch cells are
/// [`AnyMechanism::call_batched`] under the two generator families — one
/// pair of closures for all ten mechanisms, where the old grid carried a
/// hand-written pair per mechanism. The `streaming` cells stay on the
/// mechanisms' own lazy-iterator entry points (streaming is not part of
/// the one-shot call surface).
pub fn run_grid(config: &BenchConfig) -> Vec<BenchRecord> {
    let seed = config.seed;
    // Thread count for the `par` cells: the machine's parallelism, clamped
    // to the four-way layout the digest tests pin. Only wall-clock depends
    // on it — ParallelDraws output is identical for every thread count.
    let par_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(4);
    let mut records = Vec::new();
    for &n in &N_GRID {
        let answers = synthetic_counts(n, seed);
        let int_answers = synthetic_integer_counts(&answers);
        for &k in &K_GRID {
            let threshold = rank_threshold(&answers, k);
            // Element of the rounded workload, so it sits on the lattice.
            let int_threshold = rank_threshold(&int_answers, k);
            for mech in grid_mechanisms(k, threshold, int_threshold) {
                // The finite-precision mechanisms run on the
                // integer-lattice projection of the workload (their
                // contract); everything else on the continuous counts.
                let workload = match mech {
                    AnyMechanism::DiscreteNoisyTopKWithGap(_)
                    | AnyMechanism::DiscreteSparseVectorWithGap(_) => &int_answers,
                    _ => &answers,
                };
                let req = QuerySlice::from_answers(workload);
                let mut scratch = CallScratch::new();
                let mut dyn_out = MechanismOutput::new_for(&mech);
                let mut out = MechanismOutput::new_for(&mech);
                bench_cell(
                    &mut records,
                    config,
                    mech.name(),
                    n,
                    k,
                    |r| {
                        mech.call_reference(&req, &mut derive_stream(seed, r), &mut dyn_out)
                            .expect("validated workload");
                        black_box(&dyn_out);
                    },
                    |r, fast| {
                        if fast {
                            mech.call_batched(
                                &req,
                                &mut derive_fast_stream(seed, r),
                                &mut scratch,
                                &mut out,
                            )
                        } else {
                            mech.call_batched(
                                &req,
                                &mut derive_stream(seed, r),
                                &mut scratch,
                                &mut out,
                            )
                        }
                        .expect("validated workload");
                        black_box(&out);
                    },
                );

                // The intra-run parallel path: the mechanisms with a bulk
                // noise fill and/or a selection reduce (MECHANISM_PATHS
                // rows carrying "par").
                if matches!(
                    mech,
                    AnyMechanism::NoisyTopKWithGap(_)
                        | AnyMechanism::ClassicNoisyTopK(_)
                        | AnyMechanism::DiscreteNoisyTopKWithGap(_)
                        | AnyMechanism::Exponential(_)
                        | AnyMechanism::Staircase(_)
                ) {
                    let mut par = ParallelDraws::new(0, par_threads);
                    let mut par_out = MechanismOutput::new_for(&mech);
                    let (runs, elapsed_secs) = time_cell(config, |r| {
                        par.reset(derive_stream_seed(seed, r));
                        mech.call_par(&req, &mut par, &mut scratch, &mut par_out)
                            .expect("validated workload");
                        black_box(&par_out);
                    });
                    records.push(BenchRecord {
                        mechanism: mech.name(),
                        path: "par",
                        n,
                        k,
                        runs,
                        elapsed_secs,
                    });
                }
            }

            // Streaming cells: the lazy-iterator serving path, timed on the
            // mechanisms' own streaming entry points.
            let mut svt_gap_stream_scratch = SvtScratch::new();
            let mut classic_svt_stream_scratch = SvtScratch::new();
            let mut adaptive_stream_scratch = SvtScratch::new();
            let mut multi_branch_stream_scratch = SvtScratch::new();
            let mut disc_svt_stream_scratch = SvtScratch::new();
            let mut sv_stream_out = SvOutput { above: Vec::new() };
            let mut adaptive_stream_out = AdaptiveSvOutput {
                outcomes: Vec::new(),
                spent: 0.0,
                epsilon: 0.0,
            };
            let mut multi_stream_out = MultiBranchSvOutput {
                outcomes: Vec::new(),
                spent: 0.0,
                epsilon: 0.0,
            };

            let svt_gap =
                SparseVectorWithGap::new(k, 0.7, threshold, true).expect("valid parameters");
            bench_streaming_cell(&mut records, config, "SparseVectorWithGap", n, k, |r| {
                svt_gap.run_streaming_with_scratch_into(
                    answers.values().iter().copied(),
                    &mut derive_stream(seed, r),
                    &mut svt_gap_stream_scratch,
                    &mut sv_stream_out,
                );
                black_box(&sv_stream_out);
            });

            let classic_svt =
                ClassicSparseVector::new(k, 0.7, threshold, true).expect("valid parameters");
            bench_streaming_cell(&mut records, config, "ClassicSparseVector", n, k, |r| {
                classic_svt.run_streaming_with_scratch_into(
                    answers.values().iter().copied(),
                    &mut derive_stream(seed, r),
                    &mut classic_svt_stream_scratch,
                    &mut sv_stream_out,
                );
                black_box(&sv_stream_out);
            });

            let adaptive =
                AdaptiveSparseVector::new(k, 0.7, threshold, true).expect("valid parameters");
            bench_streaming_cell(&mut records, config, "AdaptiveSparseVector", n, k, |r| {
                adaptive.run_streaming_with_scratch_into(
                    answers.values().iter().copied(),
                    &mut derive_stream(seed, r),
                    &mut adaptive_stream_scratch,
                    &mut adaptive_stream_out,
                );
                black_box(&adaptive_stream_out);
            });

            let multi = MultiBranchAdaptiveSparseVector::new(k, 0.7, threshold, true, 3)
                .expect("valid parameters");
            bench_streaming_cell(
                &mut records,
                config,
                "MultiBranchAdaptiveSparseVector",
                n,
                k,
                |r| {
                    multi.run_streaming_with_scratch_into(
                        answers.values().iter().copied(),
                        &mut derive_stream(seed, r),
                        &mut multi_branch_stream_scratch,
                        &mut multi_stream_out,
                    );
                    black_box(&multi_stream_out);
                },
            );

            let mut expo_stream_scratch = TopKScratch::new();
            let mut expo_stream_out: Vec<usize> = Vec::new();
            let expo = ExponentialMechanism::new(0.7, true).expect("valid parameters");
            bench_streaming_cell(&mut records, config, "ExponentialMechanism", n, k, |r| {
                expo.run_top_k_streaming_with_scratch_into(
                    answers.values().iter().copied(),
                    k,
                    &mut derive_stream(seed, r),
                    &mut expo_stream_scratch,
                    &mut expo_stream_out,
                )
                .expect("validated workload");
                black_box(&expo_stream_out);
            });

            let mut stair_stream_scratch = SvtScratch::new();
            let mut stair_stream_out: Vec<f64> = Vec::new();
            let stair = StaircaseMechanism::new(0.7).expect("valid parameters");
            bench_streaming_cell(&mut records, config, "StaircaseMechanism", n, k, |r| {
                stair.measure_split_streaming_with_scratch_into(
                    answers.values().iter().copied(),
                    n,
                    &mut derive_stream(seed, r),
                    &mut stair_stream_scratch,
                    &mut stair_stream_out,
                );
                black_box(&stair_stream_out);
            });

            let disc_svt = DiscreteSparseVectorWithGap::new(k, 0.7, int_threshold, true)
                .expect("valid parameters");
            bench_streaming_cell(
                &mut records,
                config,
                "DiscreteSparseVectorWithGap",
                n,
                k,
                |r| {
                    disc_svt.run_streaming_with_scratch_into(
                        int_answers.values().iter().copied(),
                        &mut derive_stream(seed, r),
                        &mut disc_svt_stream_scratch,
                        &mut sv_stream_out,
                    );
                    black_box(&sv_stream_out);
                },
            );
        }
    }
    records
}

/// Returns the `mechanism × path × n × k` cells missing from a
/// `BENCH_mechanisms.json` document, using the exact key-prefix format
/// [`to_json`] writes. Empty means full coverage. The CI bench smoke step
/// fails on any missing cell so a silently dropped path can never ship a
/// stale-looking baseline.
pub fn missing_cells(json: &str) -> Vec<String> {
    let mut missing = Vec::new();
    for (mechanism, paths) in MECHANISM_PATHS {
        for path in paths {
            for n in N_GRID {
                for k in K_GRID {
                    let needle = format!(
                        "\"mechanism\": \"{mechanism}\", \"path\": \"{path}\", \"n\": {n}, \"k\": {k},"
                    );
                    if !json.contains(&needle) {
                        missing.push(format!("{mechanism}/{path} n={n} k={k}"));
                    }
                }
            }
        }
    }
    missing
}

/// One cell parsed back out of a `BENCH_mechanisms.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Mechanism name.
    pub mechanism: String,
    /// Execution path.
    pub path: String,
    /// Workload size.
    pub n: usize,
    /// Selection parameter.
    pub k: usize,
    /// Recorded throughput.
    pub runs_per_sec: f64,
}

impl ParsedCell {
    /// The human-readable cell key used in reports.
    pub fn key(&self) -> String {
        format!("{}/{} n={} k={}", self.mechanism, self.path, self.n, self.k)
    }
}

/// Parses the result records out of a `BENCH_mechanisms.json` document
/// (the exact one-record-per-line format [`to_json`] writes; no general
/// JSON parser is vendored, and none is needed for our own schema).
pub fn parse_cells(json: &str) -> Result<Vec<ParsedCell>, String> {
    fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
        let tag = format!("\"{key}\": ");
        let start = line
            .find(&tag)
            .ok_or_else(|| format!("record line missing `{key}`: {line}"))?
            + tag.len();
        let rest = &line[start..];
        let end = rest
            .find([',', ' ', '}'])
            .ok_or_else(|| format!("unterminated `{key}` in: {line}"))?;
        Ok(&rest[..end])
    }
    let mut cells = Vec::new();
    for line in json.lines() {
        if !line.contains("\"mechanism\":") {
            continue;
        }
        cells.push(ParsedCell {
            mechanism: field(line, "mechanism")?.trim_matches('"').to_string(),
            path: field(line, "path")?.trim_matches('"').to_string(),
            n: field(line, "n")?
                .parse()
                .map_err(|e| format!("bad n: {e}"))?,
            k: field(line, "k")?
                .parse()
                .map_err(|e| format!("bad k: {e}"))?,
            runs_per_sec: field(line, "runs_per_sec")?
                .parse()
                .map_err(|e| format!("bad runs_per_sec: {e}"))?,
        });
    }
    if cells.is_empty() {
        return Err("no bench records found (not a BENCH_mechanisms.json?)".into());
    }
    Ok(cells)
}

/// Outcome of [`compare_against_baseline`].
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Median per-cell `fresh/baseline` throughput ratio — the machine-speed
    /// normalizer (1.0 when both files come from the same machine under the
    /// same load).
    pub speed_factor: f64,
    /// Number of cells compared.
    pub cells: usize,
    /// Cells whose normalized throughput dropped beyond the tolerance,
    /// formatted as `key: fresh vs baseline (normalized ratio)`.
    pub regressions: Vec<String>,
}

/// Compares a fresh `BENCH_mechanisms.json` against a committed baseline:
/// a cell regresses when its `runs_per_sec` drops more than `tolerance`
/// (fractional, e.g. 0.25) below the baseline **after normalizing out the
/// overall machine-speed difference** (the median per-cell ratio). The
/// normalization is what makes the gate portable: CI runners are not the
/// laptop that wrote the baseline, but a *relative* regression — one cell
/// slowing down while the rest of the grid did not — shows up identically
/// on both. Every baseline cell must be present in the fresh file
/// (`bench-check` guards the converse).
pub fn compare_against_baseline(
    fresh_json: &str,
    baseline_json: &str,
    tolerance: f64,
) -> Result<CompareReport, String> {
    if !(tolerance.is_finite() && (0.0..1.0).contains(&tolerance)) {
        return Err(format!("tolerance must be in [0, 1), got {tolerance}"));
    }
    let fresh = parse_cells(fresh_json)?;
    let baseline = parse_cells(baseline_json)?;
    let mut ratios: Vec<(String, f64, f64, f64)> = Vec::new();
    for base in &baseline {
        let Some(new) = fresh.iter().find(|c| {
            c.mechanism == base.mechanism && c.path == base.path && c.n == base.n && c.k == base.k
        }) else {
            return Err(format!("fresh run is missing baseline cell {}", base.key()));
        };
        if base.runs_per_sec <= 0.0 {
            continue; // degenerate baseline cell carries no signal
        }
        ratios.push((
            base.key(),
            new.runs_per_sec,
            base.runs_per_sec,
            new.runs_per_sec / base.runs_per_sec,
        ));
    }
    if ratios.is_empty() {
        return Err("baseline has no usable cells".into());
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|r| r.3).collect();
    sorted.sort_by(f64::total_cmp);
    let speed_factor = sorted[sorted.len() / 2];
    let regressions = ratios
        .iter()
        .filter(|(_, _, _, ratio)| *ratio < speed_factor * (1.0 - tolerance))
        .map(|(key, new, base, ratio)| {
            format!(
                "{key}: {new:.1} vs baseline {base:.1} runs/sec \
                 (normalized ratio {:.2} < {:.2})",
                ratio / speed_factor,
                1.0 - tolerance
            )
        })
        .collect();
    Ok(CompareReport {
        speed_factor,
        cells: ratios.len(),
        regressions,
    })
}

/// Merges several `BENCH_mechanisms.json` documents into a cell × artifact
/// trend table: one row per `mechanism/path n k` cell, one `runs_per_sec`
/// column per input in argument order — the per-PR bench-history view over
/// CI's uploaded `/tmp/bench.json` artifacts (pass them oldest-commit
/// first). Cells are listed in first-appearance order; a cell missing from
/// an artifact (e.g. a mechanism that did not exist at that commit) shows
/// `-` rather than failing, so histories can span grid changes.
pub fn bench_history(files: &[(String, String)]) -> Result<Table, String> {
    if files.is_empty() {
        return Err("bench-history needs at least one bench JSON file".into());
    }
    let mut parsed: Vec<(&str, Vec<ParsedCell>)> = Vec::with_capacity(files.len());
    for (label, json) in files {
        let cells = parse_cells(json).map_err(|e| format!("{label}: {e}"))?;
        parsed.push((label.as_str(), cells));
    }
    let mut keys: Vec<String> = Vec::new();
    for (_, cells) in &parsed {
        for cell in cells {
            let key = cell.key();
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
    }
    let mut columns: Vec<&str> = vec!["cell"];
    columns.extend(parsed.iter().map(|(label, _)| *label));
    let mut table = Table::new(
        "bench history: runs/sec per cell × artifact (argument order)",
        &columns,
    );
    for key in keys {
        let mut row = vec![crate::table::Cell::from(key.clone())];
        for (_, cells) in &parsed {
            match cells.iter().find(|c| c.key() == key) {
                Some(c) => row.push(c.runs_per_sec.into()),
                None => row.push("-".into()),
            }
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Renders the records as a table with one row per `mechanism × n × k` and
/// the paths side by side (speedups relative to `dyn`; the streaming
/// columns show `-` for the Noisy-Top-K mechanisms, which have no
/// streaming path, and the par columns show `-` for the SVT family, whose
/// threshold loop is inherently sequential).
pub fn to_table(records: &[BenchRecord]) -> Table {
    let mut table = Table::new(
        "bench: mechanism throughput (runs/sec; speedup vs dyn path)".to_string(),
        &[
            "mechanism",
            "n",
            "k",
            "dyn_rps",
            "scratch_rps",
            "scratch_speedup",
            "fast_rps",
            "fast_speedup",
            "streaming_rps",
            "streaming_speedup",
            "par_rps",
            "par_speedup",
        ],
    );
    // Group by cell key and look paths up by name — no reliance on record
    // order, and a cell missing any path is skipped rather than misread.
    let mut keys: Vec<(&'static str, usize, usize)> = Vec::new();
    for r in records {
        let key = (r.mechanism, r.n, r.k);
        if !keys.contains(&key) {
            keys.push(key);
        }
    }
    for (mechanism, n, k) in keys {
        let find = |path: &str| {
            records
                .iter()
                .find(|r| r.mechanism == mechanism && r.n == n && r.k == k && r.path == path)
        };
        let (Some(dyn_rec), Some(scratch_rec), Some(fast_rec)) =
            (find("dyn"), find("scratch"), find("scratch_fast"))
        else {
            continue;
        };
        let base = dyn_rec.runs_per_sec();
        let ratio = |r: &BenchRecord| {
            if base > 0.0 {
                r.runs_per_sec() / base
            } else {
                0.0
            }
        };
        let mut row = vec![
            mechanism.into(),
            n.into(),
            k.into(),
            base.into(),
            scratch_rec.runs_per_sec().into(),
            ratio(scratch_rec).into(),
            fast_rec.runs_per_sec().into(),
            ratio(fast_rec).into(),
        ];
        // The Noisy-Top-K mechanisms have no streaming path; leave their
        // cells blank rather than printing a misleading zero.
        match find("streaming") {
            Some(streaming_rec) => {
                row.push(streaming_rec.runs_per_sec().into());
                row.push(ratio(streaming_rec).into());
            }
            None => {
                row.push("-".into());
                row.push("-".into());
            }
        }
        // Likewise the SVT family has no parallel path.
        match find("par") {
            Some(par_rec) => {
                row.push(par_rec.runs_per_sec().into());
                row.push(ratio(par_rec).into());
            }
            None => {
                row.push("-".into());
                row.push("-".into());
            }
        }
        table.push_row(row);
    }
    table
}

/// Serializes the records to the `BENCH_mechanisms.json` schema.
pub fn to_json(seed: u64, records: &[BenchRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 160 + 256);
    out.push_str("{\n  \"schema\": \"free-gap-bench/mechanisms/v1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"grid\": {{ \"n\": {:?}, \"k\": {:?} }},\n",
        N_GRID, K_GRID
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"mechanism\": \"{}\", \"path\": \"{}\", \"n\": {}, \"k\": {}, \
             \"runs\": {}, \"elapsed_secs\": {:.6}, \"runs_per_sec\": {:.3} }}{}\n",
            r.mechanism,
            r.path,
            r.n,
            r.k,
            r.runs,
            r.elapsed_secs,
            r.runs_per_sec(),
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BenchConfig {
        BenchConfig {
            seed: 7,
            runs: Some(2),
            budget_secs: 0.01,
        }
    }

    #[test]
    fn grid_covers_every_mechanism_path_cell() {
        let records = run_grid(&tiny_config());
        let cells: usize = MECHANISM_PATHS.iter().map(|(_, paths)| paths.len()).sum();
        assert_eq!(records.len(), cells * N_GRID.len() * K_GRID.len());
        assert!(records.iter().all(|r| r.runs >= 1));
        assert!(records.iter().all(|r| r.elapsed_secs > 0.0));
        // Every (mechanism, path, n, k) cell from the declared table exists
        // exactly once.
        for (mechanism, paths) in MECHANISM_PATHS {
            for path in paths {
                for n in N_GRID {
                    for k in K_GRID {
                        let count = records
                            .iter()
                            .filter(|r| {
                                r.mechanism == mechanism && r.path == *path && r.n == n && r.k == k
                            })
                            .count();
                        assert_eq!(count, 1, "{mechanism}/{path} n={n} k={k}");
                    }
                }
            }
        }
        // The written JSON must therefore pass the coverage check.
        assert!(missing_cells(&to_json(7, &records)).is_empty());
    }

    #[test]
    fn fixed_runs_mode_executes_and_records_exactly_the_target() {
        // Regression: fixed-`runs` mode used to run `ceil(target/3)` per
        // window (overshooting the requested total) while recording only the
        // best window's count (~target/3 in the JSON). The contract is:
        // exactly `target` timed runs, recorded as the cell total.
        for target in [1usize, 2, 3, 5, 7] {
            let config = BenchConfig {
                seed: 1,
                runs: Some(target),
                budget_secs: 10.0, // must be ignored in fixed-runs mode
            };
            let mut timed_runs: Vec<u64> = Vec::new();
            let mut warmups = 0usize;
            let (runs, elapsed) = time_cell(&config, |r| {
                if r == u64::MAX {
                    warmups += 1;
                } else {
                    timed_runs.push(r);
                }
            });
            assert_eq!(runs, target, "recorded runs for target {target}");
            assert_eq!(warmups, 1);
            // Exactly `target` timed executions, with sequential run indices
            // (each run gets a distinct derived RNG stream).
            let expect: Vec<u64> = (0..target as u64).collect();
            assert_eq!(timed_runs, expect, "executed runs for target {target}");
            assert!(elapsed >= 0.0);
        }
    }

    #[test]
    fn missing_cells_flags_absent_paths() {
        let records = run_grid(&tiny_config());
        let full = to_json(7, &records);
        assert!(missing_cells(&full).is_empty());
        // Drop every streaming record: exactly those cells are reported.
        let pruned: Vec<BenchRecord> = records
            .iter()
            .filter(|r| r.path != "streaming")
            .cloned()
            .collect();
        let missing = missing_cells(&to_json(7, &pruned));
        let streaming_mechanisms = MECHANISM_PATHS
            .iter()
            .filter(|(_, paths)| paths.contains(&"streaming"))
            .count();
        assert_eq!(
            missing.len(),
            streaming_mechanisms * N_GRID.len() * K_GRID.len()
        );
        assert!(missing.iter().all(|m| m.contains("/streaming")));
    }

    #[test]
    fn missing_cells_flags_dropped_discrete_cells() {
        // The discrete (finite-precision) mechanisms are first-class grid
        // citizens: a baseline written without them must fail bench-check.
        let records = run_grid(&tiny_config());
        let pruned: Vec<BenchRecord> = records
            .iter()
            .filter(|r| !r.mechanism.starts_with("Discrete"))
            .cloned()
            .collect();
        let missing = missing_cells(&to_json(7, &pruned));
        // 4 Top-K paths (dyn/scratch/scratch_fast/par) + 4 SVT paths
        // (dyn/scratch/scratch_fast/streaming), per n × k cell.
        assert_eq!(missing.len(), 8 * N_GRID.len() * K_GRID.len());
        assert!(missing
            .iter()
            .all(|m| m.starts_with("DiscreteNoisyTopKWithGap")
                || m.starts_with("DiscreteSparseVectorWithGap")));
    }

    #[test]
    fn json_is_well_formed_enough_to_grep() {
        let records = vec![
            BenchRecord {
                mechanism: "NoisyTopKWithGap",
                path: "dyn",
                n: 1000,
                k: 10,
                runs: 5,
                elapsed_secs: 0.5,
            },
            BenchRecord {
                mechanism: "NoisyTopKWithGap",
                path: "scratch",
                n: 1000,
                k: 10,
                runs: 20,
                elapsed_secs: 0.5,
            },
        ];
        let json = to_json(1, &records);
        assert!(json.contains("\"schema\": \"free-gap-bench/mechanisms/v1\""));
        assert!(json.contains("\"runs_per_sec\": 10.000"));
        assert!(json.contains("\"runs_per_sec\": 40.000"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn table_reports_speedups_relative_to_dyn() {
        let mk = |path, runs| BenchRecord {
            mechanism: "AdaptiveSparseVector",
            path,
            n: 100,
            k: 5,
            runs,
            elapsed_secs: 1.0,
        };
        let t = to_table(&[mk("dyn", 10), mk("scratch", 25), mk("scratch_fast", 40)]);
        assert_eq!(t.rows.len(), 1);
        let csv = t.to_csv();
        assert!(csv.contains("2.5"), "scratch speedup missing: {csv}");
        assert!(csv.contains('4'), "fast speedup missing: {csv}");
    }

    fn grid_json(rps: impl Fn(&str, &str, usize, usize) -> f64) -> String {
        let mut records = Vec::new();
        for (mechanism, paths) in MECHANISM_PATHS {
            for path in paths {
                for n in N_GRID {
                    for k in K_GRID {
                        let v = rps(mechanism, path, n, k).max(1e-9);
                        records.push(BenchRecord {
                            mechanism,
                            path,
                            n,
                            k,
                            runs: 100,
                            elapsed_secs: 100.0 / v,
                        });
                    }
                }
            }
        }
        to_json(1, &records)
    }

    #[test]
    fn parse_cells_round_trips_to_json() {
        let json = grid_json(|_, _, n, k| (n * k) as f64);
        let cells = parse_cells(&json).unwrap();
        let expected: usize = MECHANISM_PATHS.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(cells.len(), expected * N_GRID.len() * K_GRID.len());
        let c = cells
            .iter()
            .find(|c| {
                c.mechanism == "AdaptiveSparseVector"
                    && c.path == "streaming"
                    && c.n == 1000
                    && c.k == 25
            })
            .unwrap();
        assert!((c.runs_per_sec - 25_000.0).abs() < 0.5);
        assert!(parse_cells("{}").is_err());
    }

    #[test]
    fn compare_accepts_uniform_machine_speed_shift() {
        // A 3× slower machine shifts every cell identically: the median
        // normalizer absorbs it and nothing regresses.
        let baseline = grid_json(|_, _, n, _| 1e6 / n as f64);
        let fresh = grid_json(|_, _, n, _| 1e6 / n as f64 / 3.0);
        let report = compare_against_baseline(&fresh, &baseline, 0.25).unwrap();
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert!((report.speed_factor - 1.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn compare_flags_a_single_cell_regression() {
        let baseline = grid_json(|_, _, n, _| 1e6 / n as f64);
        let fresh = grid_json(|m, p, n, k| {
            let v = 1e6 / n as f64;
            if m == "AdaptiveSparseVector" && p == "scratch_fast" && n == 100_000 && k == 10 {
                v * 0.5 // 50% drop on one cell
            } else {
                v
            }
        });
        let report = compare_against_baseline(&fresh, &baseline, 0.25).unwrap();
        assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
        assert!(report.regressions[0].contains("AdaptiveSparseVector/scratch_fast n=100000 k=10"));
        // A looser tolerance lets the same drop through.
        let lax = compare_against_baseline(&fresh, &baseline, 0.6).unwrap();
        assert!(lax.regressions.is_empty());
    }

    #[test]
    fn compare_rejects_missing_cells_and_bad_tolerance() {
        let baseline = grid_json(|_, _, _, _| 100.0);
        let fresh_missing: String = baseline
            .lines()
            .filter(|l| !(l.contains("\"streaming\"") && l.contains("\"n\": 100000")))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(compare_against_baseline(&fresh_missing, &baseline, 0.25)
            .unwrap_err()
            .contains("missing baseline cell"));
        assert!(compare_against_baseline(&baseline, &baseline, 1.5).is_err());
        assert!(compare_against_baseline(&baseline, &baseline, -0.1).is_err());
    }

    #[test]
    fn bench_history_builds_a_cell_by_artifact_trend_table() {
        // Two fixture artifacts: the second is uniformly 2× faster.
        let old = grid_json(|_, _, n, _| 1e6 / n as f64);
        let new = grid_json(|_, _, n, _| 2e6 / n as f64);
        let t = bench_history(&[("abc123".to_string(), old), ("def456".to_string(), new)]).unwrap();
        assert_eq!(t.columns, vec!["cell", "abc123", "def456"]);
        let cells: usize = MECHANISM_PATHS.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(t.rows.len(), cells * N_GRID.len() * K_GRID.len());
        // Spot-check one row: key in column 0, throughputs in order.
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == crate::table::Cell::from("ExponentialMechanism/scratch n=1000 k=10"))
            .expect("cell row present");
        assert_eq!(row[1], crate::table::Cell::Float(1000.0));
        assert_eq!(row[2], crate::table::Cell::Float(2000.0));
    }

    #[test]
    fn bench_history_tolerates_grid_changes_and_rejects_garbage() {
        // An artifact predating a mechanism shows `-` for its cells instead
        // of failing the whole history.
        let full = grid_json(|_, _, _, _| 100.0);
        let pruned: String = full
            .lines()
            .filter(|l| !l.contains("ExponentialMechanism"))
            .collect::<Vec<_>>()
            .join("\n");
        let t = bench_history(&[("old".to_string(), pruned), ("new".to_string(), full)]).unwrap();
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == crate::table::Cell::from("ExponentialMechanism/dyn n=1000 k=10"))
            .expect("cell row present");
        assert_eq!(row[1], crate::table::Cell::from("-"));
        assert_eq!(row[2], crate::table::Cell::Float(100.0));
        // Empty input and unparsable files are errors, labeled by file.
        assert!(bench_history(&[]).is_err());
        let err = bench_history(&[("broken.json".to_string(), "{}".to_string())]).unwrap_err();
        assert!(err.contains("broken.json"), "{err}");
    }

    #[test]
    fn runs_per_sec_handles_zero_elapsed() {
        let r = BenchRecord {
            mechanism: "x",
            path: "dyn",
            n: 1,
            k: 1,
            runs: 5,
            elapsed_secs: 0.0,
        };
        assert_eq!(r.runs_per_sec(), 0.0);
    }
}
