//! Parallel Monte-Carlo runner.
//!
//! Each run `r` draws its RNG from `derive_stream(seed, r)`, so the result
//! vector is a pure function of `(seed, runs)` — identical no matter how
//! many worker threads execute it.

use free_gap_noise::rng::derive_stream;
use rand::rngs::StdRng;

/// Executes `runs` independent simulations of `body` in parallel and
/// returns their outputs in run order.
///
/// Work is statically chunked across threads; because run `r` always uses
/// `derive_stream(seed, r)`, the chunking (and thread count) cannot affect
/// the results. Runs are homogeneous in cost, so static chunking balances
/// well.
pub fn parallel_runs<T, F>(runs: usize, seed: u64, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = workers.min(runs);
    let chunk_size = runs.div_ceil(workers);
    let mut results: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    let body = &body;

    std::thread::scope(|scope| {
        for (w, chunk) in results.chunks_mut(chunk_size).enumerate() {
            let start = w * chunk_size;
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let r = start + i;
                    let mut rng = derive_stream(seed, r as u64);
                    *slot = Some(body(r, &mut rng));
                }
            });
        }
    });

    results.into_iter().map(|o| o.expect("all runs completed")).collect()
}

/// Mean and standard error of a slice of observations.
pub fn mean_and_stderr(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_in_run_order_and_deterministic() {
        let a = parallel_runs(64, 9, |r, rng| (r, rng.gen::<u64>()));
        let b = parallel_runs(64, 9, |r, rng| (r, rng.gen::<u64>()));
        assert_eq!(a, b);
        for (i, (r, _)) in a.iter().enumerate() {
            assert_eq!(i, *r);
        }
        // Different seeds give different streams.
        let c = parallel_runs(64, 10, |r, rng| (r, rng.gen::<u64>()));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_runs_is_empty() {
        let out: Vec<u8> = parallel_runs(0, 1, |_, _| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn single_run_works() {
        let out = parallel_runs(1, 2, |r, _| r + 10);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn mean_and_stderr_basics() {
        let (m, se) = mean_and_stderr(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(se, 0.0);
        let (m, se) = mean_and_stderr(&[0.0, 2.0]);
        assert_eq!(m, 1.0);
        assert!((se - 1.0).abs() < 1e-12);
        assert_eq!(mean_and_stderr(&[]), (0.0, 0.0));
    }
}
