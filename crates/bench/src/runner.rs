//! Parallel Monte-Carlo runner.
//!
//! Each run `r` draws its RNG from `derive_stream(seed, r)`, so the result
//! vector is a pure function of `(seed, runs)` — identical no matter how
//! many worker threads execute it.

// lint:allow-file(panic-freedom): bench plumbing; a poisoned timing mutex means a worker already panicked and the run is void

use free_gap_noise::rng::derive_stream;
use rand::rngs::StdRng;

/// Executes `runs` independent simulations of `body` in parallel and
/// returns their outputs in run order.
///
/// Work is statically chunked across threads; because run `r` always uses
/// `derive_stream(seed, r)`, the chunking (and thread count) cannot affect
/// the results. Runs are homogeneous in cost, so static chunking balances
/// well.
#[inline]
pub fn parallel_runs<T, F>(runs: usize, seed: u64, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    parallel_runs_with_state(runs, seed, || (), |r, rng, ()| body(r, rng))
}

/// [`parallel_runs`] with per-worker mutable state: `init` runs once on each
/// worker thread and the resulting state is threaded through every run that
/// worker executes.
///
/// This is the hook the batched mechanism paths need — a worker creates its
/// scratch buffers ([`free_gap_core::scratch`]) once and reuses them across
/// its whole chunk, so the Monte-Carlo loop allocates O(threads) buffers
/// instead of O(runs). Determinism: results depend only on `(seed, runs)`,
/// never on the worker count or chunking, **provided the body follows the
/// stream discipline of [`free_gap_core::scratch`]** — state carries no RNG
/// and run `r` always draws from `derive_stream(seed, r)`, but an
/// `SvtScratch` entry point buffers a state-dependent amount of lookahead
/// from the stream it is given, so it must be the *last* consumer of that
/// stream (derive per-call sub-streams when one run executes several
/// mechanisms).
///
/// Results are collected per worker chunk (no `Option` placeholders, no
/// second validation pass) and concatenated in run order.
pub fn parallel_runs_with_state<T, S, I, F>(runs: usize, seed: u64, init: I, body: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut StdRng, &mut S) -> T + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = workers.min(runs);
    let chunk_size = runs.div_ceil(workers);
    // Rounding up can make the last chunk start beyond `runs` (e.g. 9 runs
    // on 8 workers → chunks of 2 cover 9 in 5 chunks); spawn only workers
    // with a non-empty range.
    let active_workers = runs.div_ceil(chunk_size);
    let (init, body) = (&init, &body);

    let chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..active_workers)
            .map(|w| {
                scope.spawn(move || {
                    let start = w * chunk_size;
                    let end = ((w + 1) * chunk_size).min(runs);
                    let mut out = Vec::with_capacity(end - start);
                    let mut state = init();
                    for r in start..end {
                        let mut rng = derive_stream(seed, r as u64);
                        out.push(body(r, &mut rng, &mut state));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut results = Vec::with_capacity(runs);
    for chunk in chunks {
        results.extend(chunk);
    }
    results
}

/// Mean and standard error of a slice of observations.
#[inline]
pub fn mean_and_stderr(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_in_run_order_and_deterministic() {
        let a = parallel_runs(64, 9, |r, rng| (r, rng.gen::<u64>()));
        let b = parallel_runs(64, 9, |r, rng| (r, rng.gen::<u64>()));
        assert_eq!(a, b);
        for (i, (r, _)) in a.iter().enumerate() {
            assert_eq!(i, *r);
        }
        // Different seeds give different streams.
        let c = parallel_runs(64, 10, |r, rng| (r, rng.gen::<u64>()));
        assert_ne!(a, c);
    }

    #[test]
    fn uneven_chunking_covers_all_runs() {
        // 9 runs with ceil-division chunking used to leave a worker with an
        // empty (underflowing) range on multi-core hosts; the result must be
        // complete and ordered for every runs/worker combination. Thread
        // count is environmental, so exercise the arithmetic across a spread
        // of run counts.
        for runs in [1usize, 2, 3, 7, 9, 15, 16, 17, 63, 64, 65] {
            let out = parallel_runs(runs, 11, |r, _| r);
            assert_eq!(out, (0..runs).collect::<Vec<_>>(), "runs = {runs}");
        }
    }

    #[test]
    fn zero_runs_is_empty() {
        let out: Vec<u8> = parallel_runs(0, 1, |_, _| 0u8);
        assert!(out.is_empty());
    }

    #[test]
    fn single_run_works() {
        let out = parallel_runs(1, 2, |r, _| r + 10);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn with_state_matches_stateless_and_reuses_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let stateless = parallel_runs(64, 5, |r, rng| (r, rng.gen::<u64>()));
        let stateful = parallel_runs_with_state(
            64,
            5,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u8>::new()
            },
            |r, rng, buf| {
                buf.push(0); // state persists across a worker's runs
                (r, rng.gen::<u64>())
            },
        );
        assert_eq!(stateless, stateful);
        let workers = inits.load(Ordering::Relaxed);
        assert!(
            (1..=64).contains(&workers),
            "one init per worker, got {workers}"
        );
    }

    #[test]
    fn mean_and_stderr_basics() {
        let (m, se) = mean_and_stderr(&[1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(se, 0.0);
        let (m, se) = mean_and_stderr(&[0.0, 2.0]);
        assert_eq!(m, 1.0);
        assert!((se - 1.0).abs() < 1e-12);
        assert_eq!(mean_and_stderr(&[]), (0.0, 0.0));
    }
}
