//! E-T1: the §7.1 dataset-statistics table.

use crate::table::Table;
use crate::ExperimentConfig;
use free_gap_data::{Dataset, DatasetStats};

/// Regenerates the §7.1 table (records / unique items, plus the extra
/// columns our surrogate generators pin down).
pub fn run(config: &ExperimentConfig) -> Table {
    let mut table = Table::new(
        format!(
            "§7.1 dataset table (surrogates at scale {}; paper: BMS-POS 515,597×1,657, \
             kosarak 990,002×41,270, T40I10D100K 100,000×942)",
            config.scale
        ),
        &[
            "dataset",
            "records",
            "unique_items",
            "mean_len",
            "max_count",
            "median_count",
        ],
    );
    for ds in Dataset::ALL {
        let db = ds.generate_scaled(config.scale, config.seed);
        let s = DatasetStats::compute(ds.name(), &db);
        table.push_row(vec![
            s.name.as_str().into(),
            s.records.into(),
            s.unique_items.into(),
            s.mean_transaction_len.into(),
            (s.max_item_count as usize).into(),
            (s.median_item_count as usize).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_three_rows_with_published_item_counts() {
        let cfg = ExperimentConfig {
            scale: 0.005,
            ..Default::default()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
        // unique items column is exact at any scale (full-support injection)
        let items: Vec<String> = t.rows.iter().map(|r| r[2].to_string()).collect();
        assert_eq!(items, vec!["1657", "41270", "942"]);
    }
}
