//! One module per paper artifact (figure/table) plus ablations.

pub mod ablations;
pub mod datasets;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;

/// Seed salt per dataset so Monte-Carlo streams differ across panels that
/// share all other parameters.
pub(crate) fn dataset_salt(ds: free_gap_data::Dataset) -> u64 {
    match ds {
        free_gap_data::Dataset::BmsPos => 0x1000_0000_0000,
        free_gap_data::Dataset::Kosarak => 0x2000_0000_0000,
        free_gap_data::Dataset::T40I10D100K => 0x3000_0000_0000,
    }
}

/// The k-grid of Figures 1, 3 and 4: `k ∈ {2, 4, …, 24}`.
pub fn k_grid() -> Vec<usize> {
    (1..=12).map(|i| 2 * i).collect()
}

/// The ε-grid of Figure 2: `ε ∈ {0.1, 0.3, …, 1.5}`.
pub fn epsilon_grid() -> Vec<f64> {
    (0..8).map(|i| 0.1 + 0.2 * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper_axes() {
        let ks = k_grid();
        assert_eq!(ks.first(), Some(&2));
        assert_eq!(ks.last(), Some(&24));
        let es = epsilon_grid();
        assert_eq!(es.len(), 8);
        assert!((es[0] - 0.1).abs() < 1e-12);
        assert!((es[7] - 1.5).abs() < 1e-12);
    }
}
