//! E-F2a / E-F2b — Figure 2: percent improvement in MSE vs `ε`, on kosarak
//! with `k = 10` (monotone counting queries).
//!
//! Same protocol as Figure 1 with the roles of `k` and `ε` swapped. The
//! paper's point is that the improvement is *stable across ε* — both
//! theoretical curves are flat in ε, and the empirical series should hug
//! them at every budget.

// lint:allow-file(panic-freedom): offline experiment driver with compile-time-known parameters; abort beats emitting a half-written figure

use super::fig1::Panel;
use crate::runner::parallel_runs_with_state;
use crate::table::Table;
use crate::workloads::Workload;
use crate::ExperimentConfig;
use free_gap_core::metrics::mse_improvement_percent;
use free_gap_core::pipelines::{
    svt_select_measure_scratch, topk_select_measure_scratch, PipelineScratch,
};
use free_gap_core::postprocess::{blue_variance_ratio, svt_error_ratio};
use free_gap_data::Dataset;

/// Runs one panel of Figure 2 over `epsilons` at fixed `k`.
pub fn run(
    config: &ExperimentConfig,
    panel: Panel,
    dataset: Dataset,
    k: usize,
    epsilons: &[f64],
) -> Table {
    let workload = Workload::load(dataset, config.scale, config.seed);
    let label = match panel {
        Panel::Svt => "fig2a: Sparse-Vector-with-Gap + measures",
        Panel::TopK => "fig2b: Noisy-Top-K-with-Gap + measures",
    };
    let mut table = Table::new(
        format!(
            "{label} — % MSE improvement vs ε ({}, k = {k}, {} runs)",
            dataset.name(),
            config.runs
        ),
        &["epsilon", "improvement_pct", "theory_pct", "pooled_pairs"],
    );

    for (ei, &epsilon) in epsilons.iter().enumerate() {
        let samples = parallel_runs_with_state(
            config.runs,
            config.seed ^ (ei as u64) << 40,
            PipelineScratch::new,
            |_, rng, scratch| match panel {
                Panel::TopK => {
                    let r =
                        topk_select_measure_scratch(&workload.answers, k, epsilon, rng, scratch)
                            .expect("workload sized for k");
                    let mut imp = 0.0;
                    let mut base = 0.0;
                    for i in 0..k {
                        imp += (r.blue[i] - r.truths[i]).powi(2);
                        base += (r.measurements[i] - r.truths[i]).powi(2);
                    }
                    (imp, base, k)
                }
                Panel::Svt => {
                    let t = workload.draw_threshold(k, rng);
                    let r =
                        svt_select_measure_scratch(&workload.answers, k, epsilon, t, rng, scratch)
                            .expect("valid configuration");
                    let mut imp = 0.0;
                    let mut base = 0.0;
                    for i in 0..r.indices.len() {
                        imp += (r.combined[i] - r.truths[i]).powi(2);
                        base += (r.measurements[i] - r.truths[i]).powi(2);
                    }
                    (imp, base, r.indices.len())
                }
            },
        );

        let (mut imp, mut base, mut n) = (0.0, 0.0, 0usize);
        for (i, b, c) in &samples {
            imp += i;
            base += b;
            n += c;
        }
        let improvement = mse_improvement_percent(base / n.max(1) as f64, imp / n.max(1) as f64);
        let theory = match panel {
            Panel::TopK => 100.0 * (1.0 - blue_variance_ratio(k, 1.0)),
            Panel::Svt => 100.0 * (1.0 - svt_error_ratio(k, true)),
        };
        table.push_row(vec![
            epsilon.into(),
            improvement.into(),
            theory.into(),
            n.into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_stable_across_epsilon() {
        let cfg = ExperimentConfig {
            runs: 200,
            scale: 0.02,
            seed: 3,
            epsilon: 0.7,
        };
        let t = run(&cfg, Panel::TopK, Dataset::Kosarak, 10, &[0.3, 1.1]);
        let a: f64 = t.rows[0][1].to_string().parse().unwrap();
        let b: f64 = t.rows[1][1].to_string().parse().unwrap();
        // Theory: 45% at k = 10, independent of ε.
        assert!((a - 45.0).abs() < 8.0, "ε=0.3 improvement {a}");
        assert!((b - 45.0).abs() < 8.0, "ε=1.1 improvement {b}");
    }
}
