//! E-F3a–f — Figure 3: Adaptive-SVT-with-Gap vs classic Sparse Vector.
//!
//! For each `k` (with `ε = 0.7`, threshold at a random rank in `[2k, 8k]`
//! per run):
//!
//! * panels a–c: number of above-threshold answers — classic SVT vs the
//!   adaptive mechanism, the latter broken down into top-branch and
//!   middle-branch answers;
//! * panels d–f: precision and F-measure of both mechanisms against the
//!   noiseless ground truth.
//!
//! Expected shape (paper): the adaptive mechanism answers strictly more
//! (most answers via the cheap top branch, up to ~2× at large `k`),
//! with precision comparable to SVT and therefore an F-measure about 1.5×
//! higher.

// lint:allow-file(panic-freedom): offline experiment driver with compile-time-known parameters; abort beats emitting a half-written figure

use crate::runner::{mean_and_stderr, parallel_runs_with_state};
use crate::table::Table;
use crate::workloads::Workload;
use crate::ExperimentConfig;
use free_gap_core::metrics::selection_quality;
use free_gap_core::sparse_vector::{AdaptiveSparseVector, Branch, ClassicSparseVector};
use free_gap_data::Dataset;
use free_gap_noise::rng::rng_from_seed;
use rand::Rng;

/// Per-run observations.
#[derive(Debug, Clone, Copy)]
struct RunStats {
    svt_answers: f64,
    adaptive_top: f64,
    adaptive_middle: f64,
    svt_precision: f64,
    svt_f: f64,
    adaptive_precision: f64,
    adaptive_f: f64,
}

/// Runs Figure 3 (both the answer-count and quality panels) for one dataset.
pub fn run(config: &ExperimentConfig, dataset: Dataset, k_values: &[usize]) -> Table {
    let workload = Workload::load(dataset, config.scale, config.seed);
    let mut table = Table::new(
        format!(
            "fig3: SVT vs Adaptive-SVT-with-Gap ({}, ε = {}, {} runs)",
            dataset.name(),
            config.epsilon,
            config.runs
        ),
        &[
            "k",
            "svt_answers",
            "adaptive_answers",
            "adaptive_top",
            "adaptive_middle",
            "svt_precision",
            "adaptive_precision",
            "svt_f_measure",
            "adaptive_f_measure",
        ],
    );

    let salt = super::dataset_salt(dataset);
    for &k in k_values {
        // One scratch per mechanism: the scratch's predictive batch sizing
        // assumes consecutive runs of the *same* mechanism (SVT draws ~1 per
        // query, adaptive 2), so sharing one would mis-size every prefill.
        let stats = parallel_runs_with_state(
            config.runs,
            config.seed ^ salt ^ (k as u64) << 24,
            || {
                (
                    free_gap_core::scratch::SvtScratch::new(),
                    free_gap_core::scratch::SvtScratch::new(),
                )
            },
            |_, rng, (svt_scratch, adaptive_scratch)| {
                let threshold = workload.draw_threshold(k, rng);
                let truth = workload.truly_above(threshold);

                // Mechanisms are cheap value types; build them per run with the
                // freshly drawn threshold.
                let svt = ClassicSparseVector::new(k, config.epsilon, threshold, true)
                    .expect("validated parameters");
                let adaptive = AdaptiveSparseVector::new(k, config.epsilon, threshold, true)
                    .expect("validated parameters");

                // SvtScratch buffers a history-dependent lookahead from the
                // stream it draws on, so each mechanism gets its own
                // sub-stream (seeded by a fixed number of draws from the run
                // stream) — results stay independent of worker chunking.
                let mut svt_rng = rng_from_seed(rng.gen::<u64>());
                let mut adaptive_rng = rng_from_seed(rng.gen::<u64>());
                let s = svt.run_with_scratch(&workload.answers, &mut svt_rng, svt_scratch);
                let a = adaptive.run_with_scratch(
                    &workload.answers,
                    &mut adaptive_rng,
                    adaptive_scratch,
                );
                let sq = selection_quality(&s.above_indices(), &truth);
                let aq = selection_quality(&a.above_indices(), &truth);
                RunStats {
                    svt_answers: s.answered() as f64,
                    adaptive_top: a.answered_via(Branch::Top) as f64,
                    adaptive_middle: a.answered_via(Branch::Middle) as f64,
                    svt_precision: sq.precision,
                    svt_f: sq.f_measure,
                    adaptive_precision: aq.precision,
                    adaptive_f: aq.f_measure,
                }
            },
        );

        let col = |f: &dyn Fn(&RunStats) -> f64| {
            let xs: Vec<f64> = stats.iter().map(f).collect();
            mean_and_stderr(&xs).0
        };
        let top = col(&|s| s.adaptive_top);
        let middle = col(&|s| s.adaptive_middle);
        table.push_row(vec![
            k.into(),
            col(&|s| s.svt_answers).into(),
            (top + middle).into(),
            top.into(),
            middle.into(),
            col(&|s| s.svt_precision).into(),
            col(&|s| s.adaptive_precision).into(),
            col(&|s| s.svt_f).into(),
            col(&|s| s.adaptive_f).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_answers_more_with_comparable_precision() {
        let cfg = ExperimentConfig {
            runs: 120,
            scale: 0.01,
            seed: 11,
            epsilon: 0.7,
        };
        let t = run(&cfg, Dataset::BmsPos, &[10]);
        let row = &t.rows[0];
        let svt_answers: f64 = row[1].to_string().parse().unwrap();
        let adaptive_answers: f64 = row[2].to_string().parse().unwrap();
        let svt_p: f64 = row[5].to_string().parse().unwrap();
        let ad_p: f64 = row[6].to_string().parse().unwrap();
        let svt_f: f64 = row[7].to_string().parse().unwrap();
        let ad_f: f64 = row[8].to_string().parse().unwrap();
        assert!(
            adaptive_answers > svt_answers,
            "adaptive {adaptive_answers} vs svt {svt_answers}"
        );
        assert!(
            (svt_p - ad_p).abs() < 0.25,
            "precision gap too large: {svt_p} vs {ad_p}"
        );
        assert!(ad_f > svt_f, "F-measure should improve: {ad_f} vs {svt_f}");
    }
}
