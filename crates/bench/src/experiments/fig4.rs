//! E-F4 — Figure 4: percent of the privacy budget left over when
//! Adaptive-SVT-with-Gap is stopped after `k` above-threshold answers.
//!
//! Classic SVT always exhausts its budget on `k` answers; the adaptive
//! mechanism's cheap top branch leaves budget behind whenever answers are
//! far above the threshold. The paper reports roughly 40% remaining across
//! all three datasets.

// lint:allow-file(panic-freedom): offline experiment driver with compile-time-known parameters; abort beats emitting a half-written figure

use crate::runner::{mean_and_stderr, parallel_runs_with_state};
use crate::table::Table;
use crate::workloads::Workload;
use crate::ExperimentConfig;
use free_gap_core::sparse_vector::AdaptiveSparseVector;
use free_gap_data::Dataset;

/// Runs Figure 4 for the given datasets over `k_values`.
pub fn run(config: &ExperimentConfig, datasets: &[Dataset], k_values: &[usize]) -> Table {
    let mut table = Table::new(
        format!(
            "fig4: % budget remaining after k answers (ε = {}, {} runs)",
            config.epsilon, config.runs
        ),
        &["k", "dataset", "remaining_pct", "stderr_pct"],
    );
    for &ds in datasets {
        let workload = Workload::load(ds, config.scale, config.seed);
        let salt = super::dataset_salt(ds);
        for &k in k_values {
            let fractions = parallel_runs_with_state(
                config.runs,
                config.seed ^ salt ^ (k as u64) << 16,
                free_gap_core::scratch::SvtScratch::new,
                |_, rng, scratch| {
                    let threshold = workload.draw_threshold(k, rng);
                    let mech = AdaptiveSparseVector::new(k, config.epsilon, threshold, true)
                        .expect("validated parameters")
                        .with_answer_limit(k);
                    mech.run_with_scratch(&workload.answers, rng, scratch)
                        .remaining_fraction()
                        * 100.0
                },
            );
            let (mean, se) = mean_and_stderr(&fractions);
            table.push_row(vec![k.into(), ds.name().into(), mean.into(), se.into()]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substantial_budget_remains() {
        let cfg = ExperimentConfig {
            runs: 120,
            scale: 0.01,
            seed: 2,
            epsilon: 0.7,
        };
        let t = run(&cfg, &[Dataset::BmsPos], &[10]);
        let remaining: f64 = t.rows[0][2].to_string().parse().unwrap();
        // Paper reports ~40%; accept a generous band for the surrogate.
        assert!(remaining > 20.0, "remaining {remaining}% too low");
        assert!(remaining < 60.0, "remaining {remaining}% implausibly high");
    }
}
