//! E-F1a / E-F1b — Figure 1: percent improvement in MSE vs `k`, on BMS-POS
//! with `ε = 0.7` (monotone counting queries).
//!
//! * Fig. 1a: Sparse-Vector-with-Gap + measures vs measures-only, with the
//!   theoretical curve `100·(1 - (1+∛k²)³/((1+∛k²)³+k²))`.
//! * Fig. 1b: Noisy-Top-K-with-Gap + measures (BLUE) vs measures-only, with
//!   the theoretical curve `100·(k-1)/(2k)` (Corollary 1 at λ = 1).
//!
//! Protocol per run (§7.2): half the budget selects (threshold drawn at a
//! random rank in `[2k, 8k]` for the SVT panel), half measures; MSE is over
//! the selected queries' estimates against their true counts, pooled over
//! all runs.

// lint:allow-file(panic-freedom): offline experiment driver with compile-time-known parameters; abort beats emitting a half-written figure

use crate::runner::parallel_runs_with_state;
use crate::table::Table;
use crate::workloads::Workload;
use crate::ExperimentConfig;
use free_gap_core::metrics::mse_improvement_percent;
use free_gap_core::pipelines::{
    svt_select_measure_scratch, topk_select_measure_scratch, PipelineScratch,
};
use free_gap_core::postprocess::{blue_variance_ratio, svt_error_ratio};
use free_gap_data::Dataset;

/// Which panel of Figure 1 to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Fig. 1a: Sparse-Vector-with-Gap with measures.
    Svt,
    /// Fig. 1b: Noisy-Top-K-with-Gap with measures.
    TopK,
}

/// Sums of squared errors from one Monte-Carlo run.
#[derive(Debug, Clone, Copy, Default)]
struct SseSample {
    improved: f64,
    baseline: f64,
    n: usize,
}

/// Runs one panel of Figure 1 over `k_values`, on `dataset`.
pub fn run(config: &ExperimentConfig, panel: Panel, dataset: Dataset, k_values: &[usize]) -> Table {
    let workload = Workload::load(dataset, config.scale, config.seed);
    let label = match panel {
        Panel::Svt => "fig1a: Sparse-Vector-with-Gap + measures",
        Panel::TopK => "fig1b: Noisy-Top-K-with-Gap + measures",
    };
    let mut table = Table::new(
        format!(
            "{label} — % MSE improvement vs k ({}, ε = {}, {} runs)",
            dataset.name(),
            config.epsilon,
            config.runs
        ),
        &["k", "improvement_pct", "theory_pct", "pooled_pairs"],
    );

    for &k in k_values {
        // Each Monte-Carlo worker reuses one scratch across its whole chunk:
        // the batched pipeline paths keep the inner loop allocation-free.
        let samples = parallel_runs_with_state(
            config.runs,
            config.seed ^ (k as u64) << 32,
            PipelineScratch::new,
            |_, rng, scratch| {
                let mut s = SseSample::default();
                match panel {
                    Panel::TopK => {
                        let r = topk_select_measure_scratch(
                            &workload.answers,
                            k,
                            config.epsilon,
                            rng,
                            scratch,
                        )
                        .expect("workload sized for k");
                        for i in 0..k {
                            s.improved += (r.blue[i] - r.truths[i]).powi(2);
                            s.baseline += (r.measurements[i] - r.truths[i]).powi(2);
                        }
                        s.n = k;
                    }
                    Panel::Svt => {
                        let t = workload.draw_threshold(k, rng);
                        let r = svt_select_measure_scratch(
                            &workload.answers,
                            k,
                            config.epsilon,
                            t,
                            rng,
                            scratch,
                        )
                        .expect("valid configuration");
                        for i in 0..r.indices.len() {
                            s.improved += (r.combined[i] - r.truths[i]).powi(2);
                            s.baseline += (r.measurements[i] - r.truths[i]).powi(2);
                        }
                        s.n = r.indices.len();
                    }
                }
                s
            },
        );

        let (mut imp, mut base, mut n) = (0.0, 0.0, 0usize);
        for s in &samples {
            imp += s.improved;
            base += s.baseline;
            n += s.n;
        }
        let improvement = mse_improvement_percent(base / n as f64, imp / n as f64);
        let theory = match panel {
            Panel::TopK => 100.0 * (1.0 - blue_variance_ratio(k, 1.0)),
            Panel::Svt => 100.0 * (1.0 - svt_error_ratio(k, true)),
        };
        table.push_row(vec![k.into(), improvement.into(), theory.into(), n.into()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            runs: 150,
            scale: 0.01,
            seed: 7,
            epsilon: 0.7,
        }
    }

    #[test]
    fn topk_panel_tracks_theory() {
        let t = run(&small_config(), Panel::TopK, Dataset::BmsPos, &[2, 10]);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let emp: f64 = row[1].to_string().parse().unwrap();
            let theory: f64 = row[2].to_string().parse().unwrap();
            assert!(
                (emp - theory).abs() < 8.0,
                "empirical {emp} vs theory {theory}"
            );
        }
    }

    #[test]
    fn svt_panel_positive_improvement() {
        let t = run(&small_config(), Panel::Svt, Dataset::BmsPos, &[10]);
        let emp: f64 = t.rows[0][1].to_string().parse().unwrap();
        let theory: f64 = t.rows[0][2].to_string().parse().unwrap();
        assert!(emp > 10.0, "improvement {emp} too small");
        assert!(
            (emp - theory).abs() < 12.0,
            "empirical {emp} vs theory {theory}"
        );
    }
}
