//! E-X1..X3 — ablations over the design constants the paper fixes.
//!
//! * **θ sweep** (E-X1): Algorithm 2's budget-allocation hyperparameter.
//!   The paper follows Lyu et al.'s `θ = 1/(1 + k^{2/3})`; the sweep shows
//!   the answer count and F-measure around that choice.
//! * **σ sweep** (E-X2): the top-branch margin, fixed at 2 standard
//!   deviations in the paper (footnote 5). Smaller σ fires the cheap branch
//!   more (more answers, lower precision); larger σ degenerates to
//!   Sparse-Vector-with-Gap.
//! * **Budget-split sweep** (E-X3): the fraction of ε given to selection in
//!   the §5.2 select-then-measure protocol (paper: 1/2). The sweep traces
//!   the MSE improvement of BLUE as the split moves.

// lint:allow-file(panic-freedom): offline experiment driver with compile-time-known parameters; abort beats emitting a half-written figure

use crate::runner::{mean_and_stderr, parallel_runs, parallel_runs_with_state};
use crate::table::Table;
use crate::workloads::Workload;
use crate::ExperimentConfig;
use free_gap_core::metrics::{mse_improvement_percent, selection_quality};
use free_gap_core::pipelines::{topk_select_measure_with_split_scratch, PipelineScratch};
use free_gap_core::sparse_vector::{AdaptiveSparseVector, Branch, MultiBranchAdaptiveSparseVector};
use free_gap_core::QueryAnswers;
use free_gap_data::Dataset;
use free_gap_noise::rng::rng_from_seed;
use rand::seq::SliceRandom;
use rand::Rng;

/// A *hard* workload for the θ/σ ablations: query values spread uniformly
/// inside ±`spread` of the threshold, in shuffled order.
///
/// On the paper's rank-thresholded count workloads, every answered query is
/// so far above `T` that the cheap branch always fires and θ cancels out of
/// the answer count — the sweeps would be flat. The interesting regime for
/// both constants is queries *near* the threshold, which this workload
/// isolates. Returns `(answers, threshold, truly_above_indices)`.
fn near_threshold_workload(
    n: usize,
    threshold: f64,
    spread: f64,
    seed: u64,
) -> (QueryAnswers, f64, Vec<usize>) {
    let mut rng = rng_from_seed(seed ^ 0x0AB1_A7E5);
    let mut values: Vec<f64> = (0..n)
        .map(|_| threshold + spread * (2.0 * rng.gen::<f64>() - 1.0))
        .collect();
    values.shuffle(&mut rng);
    let truly_above = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v >= threshold)
        .map(|(i, _)| i)
        .collect();
    (QueryAnswers::counting(values), threshold, truly_above)
}

/// (answers, top-branch share, precision, F-measure) means for one point.
type SweepPoint = (f64, f64, f64, f64);

/// Per-sweep-point aggregation shared by the θ and σ sweeps.
fn sweep_adaptive_svt(
    config: &ExperimentConfig,
    k: usize,
    seed_salt: u64,
    build: impl Fn(f64) -> AdaptiveSparseVector + Sync,
) -> SweepPoint {
    // Spread chosen relative to the middle-branch noise at the paper's θ so
    // decisions are genuinely uncertain.
    let reference =
        AdaptiveSparseVector::new(k, config.epsilon, 0.0, true).expect("validated parameters");
    let spread = 4.0 * reference.middle_scale();
    let (answers, threshold, truth) = near_threshold_workload(400, 1_000.0, spread, config.seed);
    let stats = parallel_runs_with_state(
        config.runs,
        config.seed ^ seed_salt,
        free_gap_core::scratch::SvtScratch::new,
        |_, rng, scratch| {
            let mech = build(threshold);
            let out = mech.run_with_scratch(&answers, rng, scratch);
            let q = selection_quality(&out.above_indices(), &truth);
            let answered = out.answered() as f64;
            let top_share = if out.answered() == 0 {
                0.0
            } else {
                out.answered_via(Branch::Top) as f64 / answered
            };
            (answered, top_share, q.precision, q.f_measure)
        },
    );
    let mean_of = |f: &dyn Fn(&SweepPoint) -> f64| {
        mean_and_stderr(&stats.iter().map(f).collect::<Vec<_>>()).0
    };
    (
        mean_of(&|s| s.0),
        mean_of(&|s| s.1),
        mean_of(&|s| s.2),
        mean_of(&|s| s.3),
    )
}

/// E-X1: sweep Algorithm 2's θ at fixed `k`, on the near-threshold workload.
pub fn theta_sweep(config: &ExperimentConfig, k: usize, thetas: &[f64]) -> Table {
    let mut table = Table::new(
        format!(
            "ablation-theta: Adaptive-SVT θ sweep (near-threshold workload, k = {k}, ε = {}, {} runs; paper uses 1/(1+k^(2/3)) = {:.3})",
            config.epsilon,
            config.runs,
            1.0 / (1.0 + (k as f64).powf(2.0 / 3.0)),
        ),
        &["theta", "answers", "top_share", "precision", "f_measure"],
    );
    for (ti, &theta) in thetas.iter().enumerate() {
        let (answers, top, precision, f) =
            sweep_adaptive_svt(config, k, (ti as u64) << 8, |threshold| {
                AdaptiveSparseVector::new(k, config.epsilon, threshold, true)
                    .expect("validated parameters")
                    .with_theta(theta)
                    .expect("theta validated by caller")
            });
        table.push_row(vec![
            theta.into(),
            answers.into(),
            top.into(),
            precision.into(),
            f.into(),
        ]);
    }
    table
}

/// E-X2: sweep the top-branch margin multiplier (paper fixes 2), on the
/// near-threshold workload.
pub fn sigma_sweep(config: &ExperimentConfig, k: usize, multipliers: &[f64]) -> Table {
    let mut table = Table::new(
        format!(
            "ablation-sigma: Adaptive-SVT σ-multiplier sweep (near-threshold workload, k = {k}, ε = {}, {} runs; paper fixes 2 std)",
            config.epsilon, config.runs
        ),
        &["sigma_multiplier", "answers", "top_share", "precision", "f_measure"],
    );
    for (si, &mult) in multipliers.iter().enumerate() {
        let (answers, top, precision, f) =
            sweep_adaptive_svt(config, k, (si as u64) << 12, |threshold| {
                AdaptiveSparseVector::new(k, config.epsilon, threshold, true)
                    .expect("validated parameters")
                    .with_sigma_multiplier(mult)
                    .expect("multiplier validated by caller")
            });
        table.push_row(vec![
            mult.into(),
            answers.into(),
            top.into(),
            precision.into(),
            f.into(),
        ]);
    }
    table
}

/// E-X4: sweep the branch count of the multi-branch adaptive SVT (the §6.1
/// extension the paper sketches but does not evaluate) on the rank-
/// thresholded dataset workloads, where above-threshold queries are far
/// above and the cheapest branch dominates. Expected: answers ≈
/// `2^{m-1}·k`-ish up to the point where the deepest branch's noise and
/// margin (`∝ 2^{m-1}`) start rejecting real answers.
pub fn branches_sweep(
    config: &ExperimentConfig,
    dataset: Dataset,
    k: usize,
    branch_counts: &[usize],
) -> Table {
    let workload = Workload::load(dataset, config.scale, config.seed);
    let mut table = Table::new(
        format!(
            "ablation-branches: multi-branch Adaptive-SVT ({}, k = {k}, ε = {}, {} runs; Algorithm 2 is m = 2)",
            dataset.name(),
            config.epsilon,
            config.runs
        ),
        &["branches", "answers", "cheapest_share", "precision", "remaining_pct"],
    );
    for &m in branch_counts {
        let stats = parallel_runs(config.runs, config.seed ^ (m as u64) << 4, |_, rng| {
            let threshold = workload.draw_threshold(k, rng);
            let truth = workload.truly_above(threshold);
            let mech = MultiBranchAdaptiveSparseVector::new(k, config.epsilon, threshold, true, m)
                .expect("validated parameters");
            let out = mech.run(&workload.answers, rng);
            let q = selection_quality(&out.above_indices(), &truth);
            let answered = out.answered();
            let cheapest = if answered == 0 {
                0.0
            } else {
                out.answered_via(0) as f64 / answered as f64
            };
            (
                answered as f64,
                cheapest,
                q.precision,
                out.remaining_fraction() * 100.0,
            )
        });
        let mean_of = |f: &dyn Fn(&SweepPoint) -> f64| {
            mean_and_stderr(&stats.iter().map(f).collect::<Vec<_>>()).0
        };
        table.push_row(vec![
            m.into(),
            mean_of(&|s| s.0).into(),
            mean_of(&|s| s.1).into(),
            mean_of(&|s| s.2).into(),
            mean_of(&|s| s.3).into(),
        ]);
    }
    table
}

/// E-X3: sweep the selection/measurement budget split of the Top-K
/// pipeline (paper fixes 1/2).
///
/// The sweep exposes the tension behind the 50/50 choice: pushing budget
/// into selection improves the *recall* of the true top-k (you measure the
/// right queries) and makes the gaps sharper relative to the measurements
/// (larger BLUE improvement), while pushing budget into measurement
/// minimizes the raw estimation error on whatever got selected. No single
/// column peaks at 0.5 — the balanced split is the paper's compromise
/// between the two objectives.
pub fn split_sweep(
    config: &ExperimentConfig,
    dataset: Dataset,
    k: usize,
    fractions: &[f64],
) -> Table {
    let workload = Workload::load(dataset, config.scale, config.seed);
    let true_top: Vec<usize> = workload.counts.top_k_indices(k);
    let mut table = Table::new(
        format!(
            "ablation-split: selection-budget fraction sweep ({}, k = {k}, ε = {}, {} runs; paper fixes 0.5)",
            dataset.name(),
            config.epsilon,
            config.runs
        ),
        &["select_fraction", "topk_recall", "improvement_pct", "blue_mse", "baseline_mse"],
    );
    for (fi, &fraction) in fractions.iter().enumerate() {
        let samples = parallel_runs_with_state(
            config.runs,
            config.seed ^ (fi as u64) << 20,
            PipelineScratch::new,
            |_, rng, scratch| {
                let r = topk_select_measure_with_split_scratch(
                    &workload.answers,
                    k,
                    config.epsilon,
                    fraction,
                    rng,
                    scratch,
                )
                .expect("validated parameters");
                let mut blue = 0.0;
                let mut base = 0.0;
                for i in 0..k {
                    blue += (r.blue[i] - r.truths[i]).powi(2);
                    base += (r.measurements[i] - r.truths[i]).powi(2);
                }
                let recall = selection_quality(&r.indices, &true_top).recall;
                (blue, base, recall)
            },
        );
        let n = (config.runs * k) as f64;
        let blue_mse = samples.iter().map(|s| s.0).sum::<f64>() / n;
        let base_mse = samples.iter().map(|s| s.1).sum::<f64>() / n;
        let recall = samples.iter().map(|s| s.2).sum::<f64>() / config.runs as f64;
        table.push_row(vec![
            fraction.into(),
            recall.into(),
            mse_improvement_percent(base_mse, blue_mse).into(),
            blue_mse.into(),
            base_mse.into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            runs: 100,
            scale: 0.01,
            seed: 5,
            epsilon: 0.7,
        }
    }

    #[test]
    fn theta_sweep_validates_the_papers_choice() {
        // Precision peaks near the Lyu-et-al θ = 1/(1+k^{2/3}) and collapses
        // when almost the whole budget goes to the threshold (θ → 1 leaves
        // the per-query noises enormous).
        let paper_theta = 1.0 / (1.0 + 5f64.powf(2.0 / 3.0));
        let t = theta_sweep(&cfg(), 5, &[paper_theta, 0.9]);
        assert_eq!(t.rows.len(), 2);
        let p_paper: f64 = t.rows[0][3].to_string().parse().unwrap();
        let p_big: f64 = t.rows[1][3].to_string().parse().unwrap();
        assert!(
            p_paper > p_big + 0.05,
            "precision at paper θ ({p_paper}) vs θ=0.9 ({p_big})"
        );
    }

    #[test]
    fn small_sigma_answers_more_via_top() {
        let t = sigma_sweep(&cfg(), 5, &[0.5, 6.0]);
        let top_small: f64 = t.rows[0][2].to_string().parse().unwrap();
        let top_large: f64 = t.rows[1][2].to_string().parse().unwrap();
        assert!(
            top_small > top_large,
            "top-branch share should shrink with σ: {top_small} vs {top_large}"
        );
    }

    #[test]
    fn branches_sweep_monotone_answers_on_far_above_workload() {
        let t = branches_sweep(&cfg(), Dataset::BmsPos, 5, &[1, 2, 3]);
        let answers: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[1].to_string().parse().unwrap())
            .collect();
        assert!(answers[1] > answers[0], "m=2 vs m=1: {answers:?}");
        assert!(answers[2] >= answers[1] - 0.5, "m=3 vs m=2: {answers:?}");
    }

    #[test]
    fn near_threshold_workload_is_balanced_and_deterministic() {
        let (a, t, above) = near_threshold_workload(200, 1000.0, 50.0, 9);
        assert_eq!(a.len(), 200);
        // Roughly half above (uniform spread around T).
        assert!(
            (above.len() as f64 - 100.0).abs() < 30.0,
            "{} above",
            above.len()
        );
        assert!(a.values().iter().all(|v| (v - t).abs() <= 50.0));
        let (b, _, _) = near_threshold_workload(200, 1000.0, 50.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn split_sweep_exposes_the_tradeoff() {
        let t = split_sweep(&cfg(), Dataset::BmsPos, 5, &[0.15, 0.5, 0.85]);
        let col = |i: usize| -> Vec<f64> {
            t.rows
                .iter()
                .map(|r| r[i].to_string().parse().unwrap())
                .collect()
        };
        let recall = col(1);
        let improvement = col(2);
        let base_mse = col(4);
        // More selection budget => better recall of the true top-k…
        assert!(recall[2] > recall[0], "recall {recall:?}");
        // …and larger relative BLUE improvement (measurements degrade)…
        assert!(
            improvement[2] > improvement[0],
            "improvement {improvement:?}"
        );
        // …while the measurement baseline itself gets worse.
        assert!(base_mse[2] > base_mse[0], "baseline mse {base_mse:?}");
    }
}
