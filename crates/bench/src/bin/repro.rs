//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <command> [options]
//!
//! Commands:
//!   datasets           §7.1 dataset table
//!   fig1a | fig1b      Fig. 1: % MSE improvement vs k (BMS-POS)
//!   fig2a | fig2b      Fig. 2: % MSE improvement vs ε (kosarak, k = 10)
//!   fig3               Fig. 3: answers + precision/F-measure (per dataset)
//!   fig4               Fig. 4: % remaining budget (all datasets)
//!   ablation-theta     θ sweep for Adaptive-SVT
//!   ablation-sigma     σ-multiplier sweep for Adaptive-SVT
//!   ablation-split     selection/measurement budget-split sweep
//!   ablation-branches  branch-count sweep for multi-branch Adaptive-SVT
//!   bench              mechanism-throughput grid → BENCH_mechanisms.json
//!   serve-bench        multi-tenant serving-layer load generator →
//!                      BENCH_serve.json: p50/p95/p99 request latency,
//!                      budget-rejection counts, idle-session evictions and
//!                      the bit-reproducibility digest (fixed seed → same
//!                      digest for any worker count)
//!   bench-check        verify a written BENCH_mechanisms.json covers every
//!                      mechanism × path × n × k cell (CI smoke gate);
//!                      read-only — never re-times anything
//!   bench-compare      perf-regression gate: compare a fresh --json grid
//!                      against --baseline, failing when any cell's
//!                      runs/sec drops more than --tolerance after
//!                      normalizing out the machine-speed difference
//!   bench-history F..  merge several bench JSON files (e.g. CI's uploaded
//!                      /tmp/bench.json artifacts, oldest commit first)
//!                      into a cell × artifact runs/sec trend table
//!   lint               free-gap-lint: the eight static invariants
//!                      (stream-discipline, endpoint-guard, panic-freedom,
//!                      taxonomy, budget-balance, lock-discipline,
//!                      par-purity, float-totality) over
//!                      crates/{core,noise,serve,attack,bench}; exits
//!                      nonzero on any unallowed finding
//!   attack             adversarial privacy audit: attack every correct SVT
//!                      mechanism and every broken zoo variant, print the
//!                      claimed-ε vs empirical-ε-lower-bound board, and exit
//!                      nonzero if any correct mechanism is flagged or any
//!                      broken variant escapes detection
//!   all                everything above except `bench`, paper defaults
//!
//! Options:
//!   --runs N           Monte-Carlo runs per point (default: per experiment;
//!                      for `bench`: fixed runs per cell instead of a time budget)
//!   --budget F         `bench`: per-cell time budget in seconds (default 1.0;
//!                      best of three windows). Mutually exclusive with --runs.
//!                      CI's perf gate uses a reduced budget — fixed tiny run
//!                      counts are too noisy to compare against the baseline
//!   --scale F          dataset record-count fraction in (0, 1] (default 1.0)
//!   --seed N           root RNG seed (default 20190412)
//!   --eps F            total privacy budget ε (default 0.7)
//!   --dataset NAME     bms-pos | kosarak | t40 (fig3/ablations; default bms-pos)
//!   --csv              emit CSV instead of aligned tables
//!   --json PATH        where `bench` writes its JSON / which file
//!                      `bench-check`/`bench-compare` read (default
//!                      BENCH_mechanisms.json); for `lint`: write the
//!                      machine-readable finding report (schema
//!                      free-gap-lint/1, includes allow-suppressed
//!                      findings) before the pass/fail verdict
//!   --baseline PATH    committed baseline for `bench-compare`
//!                      (default BENCH_mechanisms.json)
//!   --tolerance F      allowed fractional throughput drop per cell for
//!                      `bench-compare` (default 0.25)
//!   --baseline-only    `bench-check`: check the committed baseline file
//!                      only (rejects --json); used by CI's second
//!                      invocation so the stale-baseline check is explicit
//!                      and instant
//!   --trials N         `attack`: estimate-phase Monte-Carlo trials per side
//!                      (search phase scales along; default 300000)
//!   --significance F   `attack`: significance α of the reported
//!                      Clopper–Pearson lower bounds, in (0, 0.5) (default
//!                      0.01, or 0.05 with --quick)
//!   --quick            `attack`: budgeted CI smoke configuration (fewer
//!                      trials, α = 0.05, same verdicts on the suite);
//!                      `serve-bench`: 4 tenants × 300 requests instead of
//!                      8 × 2000
//!   --tenants N        `serve-bench`: number of registered tenants
//!   --duration F       `serve-bench`: wall-clock cap in seconds; the run
//!                      stops issuing requests when it elapses and the
//!                      report is marked truncated
//!   --qps F            `serve-bench`: aggregate request-rate target the
//!                      workers pace themselves to (default: unpaced
//!                      closed loop)
//!   --par-threshold N  `serve-bench`: serve one-shot calls with at least
//!                      N queries through the intra-run parallel noise
//!                      path (default: off; changes the noise stream, so
//!                      digests are only comparable at the same setting)
//!   --rule NAME        `lint`: check a single rule (stream-discipline |
//!                      endpoint-guard | panic-freedom | taxonomy |
//!                      budget-balance | lock-discipline | par-purity |
//!                      float-totality)
//!   --fixtures         `lint`: run the power-check corpus instead of the
//!                      real tree — every known-bad fixture must be flagged
//!                      and every fixed twin must stay clean
//! ```
//!
//! The paper averages 10,000 runs per point; defaults here are chosen so the
//! full suite finishes in minutes on a laptop while the shapes are stable.
//! Pass `--runs 10000` for the full protocol.

use free_gap_bench::experiments::fig1::Panel;
use free_gap_bench::experiments::{self, epsilon_grid, k_grid};
use free_gap_bench::perf;
use free_gap_bench::table::{Cell, Table};
use free_gap_bench::workloads::parse_dataset;
use free_gap_bench::ExperimentConfig;
use free_gap_data::Dataset;
use std::process::ExitCode;

#[derive(Debug)]
struct CliOptions {
    command: String,
    runs: Option<usize>,
    scale: f64,
    seed: u64,
    epsilon: f64,
    dataset: Dataset,
    csv: bool,
    json: String,
    budget: Option<f64>,
    /// Whether `--json` was passed explicitly (`bench-check --baseline-only`
    /// rejects it).
    json_explicit: bool,
    baseline: String,
    baseline_explicit: bool,
    tolerance: f64,
    tolerance_explicit: bool,
    baseline_only: bool,
    /// `attack`: estimate-phase trials per side (`--trials`).
    attack_trials: Option<usize>,
    /// `attack`: significance α of the reported bounds (`--significance`).
    significance: Option<f64>,
    /// `attack`: budgeted CI smoke configuration (`--quick`).
    quick: bool,
    /// `serve-bench`: tenant count (`--tenants`).
    tenants: Option<usize>,
    /// `serve-bench`: wall-clock cap in seconds (`--duration`).
    duration: Option<f64>,
    /// `serve-bench`: aggregate request-rate target (`--qps`).
    qps: Option<f64>,
    /// `serve-bench`: parallel-path opt-in query-count threshold
    /// (`--par-threshold`).
    par_threshold: Option<usize>,
    /// `lint`: restrict to a single named rule (`--rule`).
    lint_rule: Option<String>,
    /// `lint`: run the fixture power checks instead of the tree (`--fixtures`).
    fixtures: bool,
    /// Which workload-shaping options were passed explicitly (the `bench`
    /// command uses a fixed synthetic workload and rejects them).
    workload_flags: Vec<&'static str>,
    /// Positional file arguments (`bench-history` artifacts, in order).
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        command: args
            .first()
            .cloned()
            .ok_or("missing command (try `repro all`)")?,
        runs: None,
        scale: 1.0,
        seed: 20190412,
        epsilon: 0.7,
        dataset: Dataset::BmsPos,
        csv: false,
        json: "BENCH_mechanisms.json".to_string(),
        budget: None,
        json_explicit: false,
        baseline: "BENCH_mechanisms.json".to_string(),
        baseline_explicit: false,
        tolerance: 0.25,
        tolerance_explicit: false,
        baseline_only: false,
        attack_trials: None,
        significance: None,
        quick: false,
        tenants: None,
        duration: None,
        qps: None,
        par_threshold: None,
        lint_rule: None,
        fixtures: false,
        workload_flags: Vec::new(),
        files: Vec::new(),
    };
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or(format!("{name} expects a value"))
        };
        match flag {
            "--runs" => {
                let runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?;
                if runs == 0 {
                    return Err("--runs must be at least 1".into());
                }
                opts.runs = Some(runs);
            }
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                opts.workload_flags.push("--scale");
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--eps" => {
                opts.epsilon = value("--eps")?.parse().map_err(|e| format!("--eps: {e}"))?;
                opts.workload_flags.push("--eps");
            }
            "--dataset" => {
                let name = value("--dataset")?;
                opts.dataset = parse_dataset(&name).ok_or(format!("unknown dataset `{name}`"))?;
                opts.workload_flags.push("--dataset");
            }
            "--csv" => opts.csv = true,
            "--json" => {
                opts.json = value("--json")?;
                opts.json_explicit = true;
            }
            "--budget" => {
                let budget: f64 = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
                if !(budget.is_finite() && budget > 0.0) {
                    return Err("--budget must be positive".into());
                }
                opts.budget = Some(budget);
            }
            "--baseline" => {
                opts.baseline = value("--baseline")?;
                opts.baseline_explicit = true;
            }
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
                if !(opts.tolerance.is_finite() && (0.0..1.0).contains(&opts.tolerance)) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
                opts.tolerance_explicit = true;
            }
            "--baseline-only" => opts.baseline_only = true,
            "--trials" => {
                let trials: usize = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
                if trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
                opts.attack_trials = Some(trials);
            }
            "--significance" => {
                let alpha: f64 = value("--significance")?
                    .parse()
                    .map_err(|e| format!("--significance: {e}"))?;
                if !(alpha.is_finite() && alpha > 0.0 && alpha < 0.5) {
                    return Err("--significance must be in (0, 0.5)".into());
                }
                opts.significance = Some(alpha);
            }
            "--quick" => opts.quick = true,
            "--tenants" => {
                let tenants: usize = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
                if tenants == 0 {
                    return Err("--tenants must be at least 1".into());
                }
                opts.tenants = Some(tenants);
            }
            "--duration" => {
                let duration: f64 = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
                if !(duration.is_finite() && duration > 0.0) {
                    return Err("--duration must be positive".into());
                }
                opts.duration = Some(duration);
            }
            "--qps" => {
                let qps: f64 = value("--qps")?.parse().map_err(|e| format!("--qps: {e}"))?;
                if !(qps.is_finite() && qps > 0.0) {
                    return Err("--qps must be positive".into());
                }
                opts.qps = Some(qps);
            }
            "--par-threshold" => {
                // 0 is meaningful (every call takes the parallel path), so
                // only a non-numeric value is rejected.
                let threshold: usize = value("--par-threshold")?
                    .parse()
                    .map_err(|e| format!("--par-threshold: {e}"))?;
                opts.par_threshold = Some(threshold);
            }
            "--rule" => opts.lint_rule = Some(value("--rule")?),
            "--fixtures" => opts.fixtures = true,
            other if !other.starts_with('-') => opts.files.push(other.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
        i += 1;
    }
    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    Ok(opts)
}

fn config(opts: &CliOptions, default_runs: usize) -> ExperimentConfig {
    ExperimentConfig {
        runs: opts.runs.unwrap_or(default_runs),
        scale: opts.scale,
        seed: opts.seed,
        epsilon: opts.epsilon,
    }
}

fn emit(table: &Table, csv: bool) {
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.to_aligned());
    }
}

// The `all` arm builds its table list with sequential pushes: the experiment
// sequence reads better that way than as one giant vec![] literal.
#[allow(clippy::vec_init_then_push)]
fn run_command(opts: &CliOptions) -> Result<Vec<Table>, String> {
    // Reject flags that the selected command would silently ignore — a user
    // who names a file or knob must not get a success report for something
    // else (same policy as `bench`'s workload-flag rejection below).
    if opts.budget.is_some() && opts.command != "bench" {
        return Err(format!(
            "--budget only applies to `bench`, not `{}`",
            opts.command
        ));
    }
    if !opts.files.is_empty() && opts.command != "bench-history" {
        return Err(format!(
            "positional file arguments only apply to `bench-history`, not `{}`",
            opts.command
        ));
    }
    if opts.baseline_only && opts.command != "bench-check" {
        return Err(format!(
            "--baseline-only only applies to `bench-check`, not `{}`",
            opts.command
        ));
    }
    if opts.tolerance_explicit && opts.command != "bench-compare" {
        return Err(format!(
            "--tolerance only applies to `bench-compare`, not `{}`",
            opts.command
        ));
    }
    if opts.attack_trials.is_some() && opts.command != "attack" {
        return Err(format!(
            "--trials only applies to `attack`, not `{}`",
            opts.command
        ));
    }
    if opts.significance.is_some() && opts.command != "attack" {
        return Err(format!(
            "--significance only applies to `attack`, not `{}`",
            opts.command
        ));
    }
    if opts.quick && opts.command != "attack" && opts.command != "serve-bench" {
        return Err(format!(
            "--quick only applies to `attack` and `serve-bench`, not `{}`",
            opts.command
        ));
    }
    if opts.tenants.is_some() && opts.command != "serve-bench" {
        return Err(format!(
            "--tenants only applies to `serve-bench`, not `{}`",
            opts.command
        ));
    }
    if opts.duration.is_some() && opts.command != "serve-bench" {
        return Err(format!(
            "--duration only applies to `serve-bench`, not `{}`",
            opts.command
        ));
    }
    if opts.qps.is_some() && opts.command != "serve-bench" {
        return Err(format!(
            "--qps only applies to `serve-bench`, not `{}`",
            opts.command
        ));
    }
    if opts.par_threshold.is_some() && opts.command != "serve-bench" {
        return Err(format!(
            "--par-threshold only applies to `serve-bench`, not `{}`",
            opts.command
        ));
    }
    if opts.lint_rule.is_some() && opts.command != "lint" {
        return Err(format!(
            "--rule only applies to `lint`, not `{}`",
            opts.command
        ));
    }
    if opts.fixtures && opts.command != "lint" {
        return Err(format!(
            "--fixtures only applies to `lint`, not `{}`",
            opts.command
        ));
    }
    if opts.json_explicit
        && !matches!(
            opts.command.as_str(),
            "bench" | "serve-bench" | "bench-check" | "bench-compare" | "lint"
        )
    {
        return Err(format!(
            "--json only applies to `bench`, `serve-bench`, `bench-check`, `bench-compare`, and `lint`, not `{}`",
            opts.command
        ));
    }
    if opts.baseline_explicit
        && opts.command != "bench-compare"
        && !(opts.command == "bench-check" && opts.baseline_only)
    {
        return Err(format!(
            "--baseline only applies to `bench-compare` (or `bench-check --baseline-only`), not `{}`",
            opts.command
        ));
    }
    let tables = match opts.command.as_str() {
        "bench" => {
            // The throughput grid uses a fixed synthetic workload at ε = 0.7
            // so recorded baselines stay comparable across PRs; reject
            // options that would otherwise be silently ignored.
            if let Some(flag) = opts.workload_flags.first() {
                return Err(format!(
                    "`bench` uses a fixed synthetic workload; {flag} is not supported (only --runs, --seed, --csv, --json apply)"
                ));
            }
            if opts.runs.is_some() && opts.budget.is_some() {
                return Err("--runs and --budget are mutually exclusive".into());
            }
            let defaults = perf::BenchConfig::default();
            let bench_config = perf::BenchConfig {
                seed: opts.seed,
                runs: opts.runs,
                budget_secs: opts.budget.unwrap_or(defaults.budget_secs),
            };
            let records = perf::run_grid(&bench_config);
            std::fs::write(&opts.json, perf::to_json(opts.seed, &records))
                .map_err(|e| format!("writing {}: {e}", opts.json))?;
            eprintln!("wrote {}", opts.json);
            vec![perf::to_table(&records)]
        }
        "serve-bench" => {
            // The serving benchmark scripts its own tenants/workload;
            // reject options it would silently ignore.
            if let Some(flag) = opts.workload_flags.first() {
                return Err(format!(
                    "`serve-bench` scripts a fixed per-tenant workload; {flag} is not supported (only --tenants, --duration, --qps, --par-threshold, --quick, --seed, --csv, --json apply)"
                ));
            }
            if opts.runs.is_some() {
                return Err(
                    "`serve-bench` sizes its load with --tenants/--duration, not --runs"
                        .to_string(),
                );
            }
            let mut cfg = if opts.quick {
                free_gap_serve::ServeBenchConfig::quick(opts.seed)
            } else {
                free_gap_serve::ServeBenchConfig::full(opts.seed)
            };
            if let Some(tenants) = opts.tenants {
                cfg.tenants = tenants;
            }
            cfg.duration_cap_secs = opts.duration;
            cfg.qps = opts.qps;
            cfg.par_threshold = opts.par_threshold;
            let report =
                free_gap_serve::bench::run(&cfg).map_err(|e| format!("serve-bench: {e}"))?;
            // serve-bench writes its own schema; default to its own file
            // rather than clobbering BENCH_mechanisms.json.
            let json_path = if opts.json_explicit {
                opts.json.clone()
            } else {
                "BENCH_serve.json".to_string()
            };
            std::fs::write(&json_path, free_gap_serve::bench::to_json(&cfg, &report))
                .map_err(|e| format!("writing {json_path}: {e}"))?;
            eprintln!("wrote {json_path}");
            let mut table = Table::new(
                format!(
                    "serve-bench: {} tenants × {} requests over {} workers (ε = {:.1}/tenant, digest {:#018x}{})",
                    cfg.tenants,
                    cfg.requests_per_tenant,
                    cfg.workers,
                    cfg.epsilon_per_tenant,
                    report.digest,
                    if report.truncated { ", TRUNCATED" } else { "" },
                ),
                &[
                    "completed",
                    "rejected",
                    "budget_rejected",
                    "evictions",
                    "p50_us",
                    "p95_us",
                    "p99_us",
                    "req/s",
                ],
            );
            table.push_row(vec![
                Cell::Int(report.completed as i64),
                Cell::Int(report.rejected as i64),
                Cell::Int(report.budget_rejected as i64),
                Cell::Int(report.evictions as i64),
                report.p50_us.into(),
                report.p95_us.into(),
                report.p99_us.into(),
                report.requests_per_sec.into(),
            ]);
            vec![table]
        }
        "bench-check" => {
            // Read-only: checks coverage of an already-written file, never
            // re-times the grid. `--baseline-only` pins the invocation to
            // the committed baseline so CI's stale-baseline check cannot be
            // silently redirected at a scratch file.
            if opts.baseline_only && opts.json_explicit {
                return Err(
                    "--baseline-only checks the committed baseline; drop --json".to_string()
                );
            }
            let path = if opts.baseline_only {
                &opts.baseline
            } else {
                &opts.json
            };
            let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let missing = perf::missing_cells(&json);
            if !missing.is_empty() {
                return Err(format!(
                    "{path} has {} missing bench cell(s):\n  {}",
                    missing.len(),
                    missing.join("\n  ")
                ));
            }
            eprintln!("{path}: all mechanism × path cells present");
            Vec::new()
        }
        "bench-compare" => {
            let fresh = std::fs::read_to_string(&opts.json)
                .map_err(|e| format!("reading {}: {e}", opts.json))?;
            let baseline = std::fs::read_to_string(&opts.baseline)
                .map_err(|e| format!("reading {}: {e}", opts.baseline))?;
            let report = perf::compare_against_baseline(&fresh, &baseline, opts.tolerance)?;
            eprintln!(
                "{} vs {}: {} cells, machine-speed factor {:.2}",
                opts.json, opts.baseline, report.cells, report.speed_factor
            );
            if !report.regressions.is_empty() {
                return Err(format!(
                    "{} cell(s) regressed beyond {:.0}% tolerance:\n  {}",
                    report.regressions.len(),
                    opts.tolerance * 100.0,
                    report.regressions.join("\n  ")
                ));
            }
            eprintln!(
                "no cell regressed beyond {:.0}% tolerance",
                opts.tolerance * 100.0
            );
            Vec::new()
        }
        "bench-history" => {
            // Aggregate uploaded bench artifacts (oldest commit first) into
            // a cell × artifact trend table — the triage view behind a
            // bench-compare failure.
            if opts.files.is_empty() {
                return Err("bench-history needs at least one bench JSON file argument".to_string());
            }
            let mut loaded = Vec::with_capacity(opts.files.len());
            for path in &opts.files {
                let json =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                loaded.push((path.clone(), json));
            }
            vec![perf::bench_history(&loaded)?]
        }
        "attack" => {
            // The suite is a self-contained audit over fixed synthetic
            // workloads; reject options it would silently ignore.
            if let Some(flag) = opts.workload_flags.first() {
                return Err(format!(
                    "`attack` audits fixed adversarial workloads; {flag} is not supported (only --trials, --significance, --quick, --seed, --csv apply)"
                ));
            }
            if opts.runs.is_some() {
                return Err(
                    "`attack` sizes its Monte-Carlo phases with --trials, not --runs".to_string(),
                );
            }
            let mut cfg = if opts.quick {
                free_gap_attack::AttackConfig::quick(opts.seed)
            } else {
                free_gap_attack::AttackConfig::full(opts.seed)
            };
            if let Some(trials) = opts.attack_trials {
                cfg.estimate_trials = trials;
                // Keep the dp-sniper phase split: the search phase explores
                // every (pair, classifier) cell at ~1/8 of the estimate
                // budget the chosen cell then gets.
                cfg.search_trials = (trials / 8).max(1_000);
            }
            if let Some(alpha) = opts.significance {
                cfg.alpha = alpha;
            }
            let report = free_gap_attack::run_suite(&cfg);
            let mut table = Table::new(
                format!(
                    "Adversarial privacy audit (α = {}, {} estimate trials/side)",
                    cfg.alpha, cfg.estimate_trials
                ),
                &[
                    "target",
                    "claimed ε",
                    "ε̂ ≥",
                    "expected",
                    "verdict",
                    "pair",
                    "classifier",
                    "hits D",
                    "hits D'",
                ],
            );
            for row in &report.rows {
                let r = &row.result;
                table.push_row(vec![
                    r.name.into(),
                    r.claimed_epsilon.into(),
                    r.epsilon_lower_bound.into(),
                    if row.expect_broken {
                        "broken"
                    } else {
                        "correct"
                    }
                    .into(),
                    match (r.flagged, row.verdict_ok()) {
                        (true, true) => "FLAGGED ✓",
                        (false, true) => "pass ✓",
                        (true, false) => "FLAGGED ✗ (false positive)",
                        (false, false) => "escaped ✗",
                    }
                    .into(),
                    r.pair.into(),
                    r.classifier.into(),
                    Cell::Int(r.counts.0 as i64),
                    Cell::Int(r.counts.1 as i64),
                ]);
            }
            emit(&table, opts.csv);
            let false_flags: Vec<&str> = report.false_flags().map(|r| r.result.name).collect();
            let escapes: Vec<&str> = report.escapes().map(|r| r.result.name).collect();
            if !false_flags.is_empty() || !escapes.is_empty() {
                return Err(format!(
                    "attack suite failed: {} correct mechanism(s) falsely flagged [{}], {} broken variant(s) escaped [{}]",
                    false_flags.len(),
                    false_flags.join(", "),
                    escapes.len(),
                    escapes.join(", ")
                ));
            }
            eprintln!(
                "all {} verdicts correct: every zoo variant flagged, every correct mechanism passed",
                report.rows.len()
            );
            Vec::new()
        }
        "lint" => {
            // Static analysis over the checkout: no workload, no RNG.
            if let Some(flag) = opts.workload_flags.first() {
                return Err(format!(
                    "`lint` is a static check; {flag} is not supported (only --rule, --fixtures, --json apply)"
                ));
            }
            if opts.runs.is_some() {
                return Err("`lint` is a static check; --runs does not apply".to_string());
            }
            if opts.fixtures && opts.json_explicit {
                return Err(
                    "--json reports tree findings; it does not apply to `lint --fixtures`"
                        .to_string(),
                );
            }
            let rules: Vec<free_gap_lint::Rule> = match &opts.lint_rule {
                Some(name) => vec![free_gap_lint::Rule::from_name(name).ok_or_else(|| {
                    format!(
                        "unknown rule `{name}` (expected one of: {})",
                        free_gap_lint::Rule::ALL
                            .map(free_gap_lint::Rule::name)
                            .join(", ")
                    )
                })?],
                None => free_gap_lint::Rule::ALL.to_vec(),
            };
            if opts.fixtures {
                // Power mode: the corpus of historical bugs must still fire
                // its rule, and each fixed twin must still lint clean.
                let rows =
                    free_gap_lint::power_check().map_err(|e| format!("reading fixtures: {e}"))?;
                let rows: Vec<_> = rows
                    .into_iter()
                    .filter(|r| rules.contains(&r.fixture.rule))
                    .collect();
                let mut failed = 0usize;
                for row in &rows {
                    let expect = if row.fixture.expect_flagged {
                        "must flag"
                    } else {
                        "must pass"
                    };
                    let got = if row.ok { "ok" } else { "POWER FAILURE" };
                    eprintln!(
                        "  [{}] {:<24} {:>9} … {} ({} finding(s))",
                        row.fixture.rule,
                        row.fixture.path,
                        expect,
                        got,
                        row.diagnostics.len()
                    );
                    if !row.ok {
                        failed += 1;
                        for d in &row.diagnostics {
                            eprintln!("      {d}");
                        }
                    }
                }
                if failed > 0 {
                    return Err(format!(
                        "{failed} of {} fixture power check(s) failed: a rule lost the ability to catch (or over-fires on) its historical bug",
                        rows.len()
                    ));
                }
                eprintln!("all {} fixture power checks passed", rows.len());
            } else {
                let layout = free_gap_lint::TreeLayout::at(std::path::Path::new("."));
                layout.validate()?;
                // The full report keeps allow-suppressed findings so the JSON
                // artifact doubles as a machine-readable allow inventory; the
                // pass/fail verdict only counts the active ones.
                let report = free_gap_lint::lint_tree_report(&layout, &rules)
                    .map_err(|e| format!("linting: {e}"))?;
                if opts.json_explicit {
                    // Written before the verdict so CI still gets the artifact
                    // when the lint fails — that run is exactly the one whose
                    // report someone needs to read.
                    std::fs::write(&opts.json, free_gap_lint::report_json(&rules, &report))
                        .map_err(|e| format!("writing {}: {e}", opts.json))?;
                    eprintln!("wrote {}", opts.json);
                }
                let diagnostics: Vec<_> = report
                    .into_iter()
                    .filter(|d| d.allow == free_gap_lint::AllowState::None)
                    .collect();
                if !diagnostics.is_empty() {
                    let mut msg = format!("{} invariant violation(s):\n", diagnostics.len());
                    for d in &diagnostics {
                        msg.push_str(&format!("  {d}\n"));
                    }
                    msg.push_str(
                        "fix the violation or justify it with `// lint:allow(rule): reason`",
                    );
                    return Err(msg);
                }
                eprintln!(
                    "free-gap-lint: clean under {} ({} rule(s))",
                    rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    rules.len()
                );
            }
            Vec::new()
        }
        "datasets" => vec![experiments::datasets::run(&config(opts, 1))],
        "fig1a" => vec![experiments::fig1::run(
            &config(opts, 1000),
            Panel::Svt,
            Dataset::BmsPos,
            &k_grid(),
        )],
        "fig1b" => vec![experiments::fig1::run(
            &config(opts, 1000),
            Panel::TopK,
            Dataset::BmsPos,
            &k_grid(),
        )],
        "fig2a" => vec![experiments::fig2::run(
            &config(opts, 300),
            Panel::Svt,
            Dataset::Kosarak,
            10,
            &epsilon_grid(),
        )],
        "fig2b" => vec![experiments::fig2::run(
            &config(opts, 300),
            Panel::TopK,
            Dataset::Kosarak,
            10,
            &epsilon_grid(),
        )],
        "fig3" => vec![experiments::fig3::run(
            &config(opts, 300),
            opts.dataset,
            &k_grid(),
        )],
        "fig4" => vec![experiments::fig4::run(
            &config(opts, 300),
            &Dataset::ALL,
            &k_grid(),
        )],
        "ablation-theta" => vec![experiments::ablations::theta_sweep(
            &config(opts, 300),
            10,
            &[0.05, 0.1, 0.177, 0.3, 0.5, 0.7, 0.9],
        )],
        "ablation-sigma" => vec![experiments::ablations::sigma_sweep(
            &config(opts, 300),
            10,
            &[0.5, 1.0, 2.0, 3.0, 4.0, 6.0],
        )],
        "ablation-split" => vec![experiments::ablations::split_sweep(
            &config(opts, 500),
            opts.dataset,
            10,
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        )],
        "ablation-branches" => vec![experiments::ablations::branches_sweep(
            &config(opts, 300),
            opts.dataset,
            10,
            &[1, 2, 3, 4, 5],
        )],
        "all" => {
            let mut all = Vec::new();
            all.push(experiments::datasets::run(&config(opts, 1)));
            all.push(experiments::fig1::run(
                &config(opts, 1000),
                Panel::Svt,
                Dataset::BmsPos,
                &k_grid(),
            ));
            all.push(experiments::fig1::run(
                &config(opts, 1000),
                Panel::TopK,
                Dataset::BmsPos,
                &k_grid(),
            ));
            all.push(experiments::fig2::run(
                &config(opts, 300),
                Panel::Svt,
                Dataset::Kosarak,
                10,
                &epsilon_grid(),
            ));
            all.push(experiments::fig2::run(
                &config(opts, 300),
                Panel::TopK,
                Dataset::Kosarak,
                10,
                &epsilon_grid(),
            ));
            for ds in Dataset::ALL {
                all.push(experiments::fig3::run(&config(opts, 300), ds, &k_grid()));
            }
            all.push(experiments::fig4::run(
                &config(opts, 300),
                &Dataset::ALL,
                &k_grid(),
            ));
            all.push(experiments::ablations::theta_sweep(
                &config(opts, 300),
                10,
                &[0.05, 0.1, 0.177, 0.3, 0.5, 0.7, 0.9],
            ));
            all.push(experiments::ablations::sigma_sweep(
                &config(opts, 300),
                10,
                &[0.5, 1.0, 2.0, 3.0, 4.0, 6.0],
            ));
            all.push(experiments::ablations::split_sweep(
                &config(opts, 500),
                opts.dataset,
                10,
                &[0.1, 0.3, 0.5, 0.7, 0.9],
            ));
            all.push(experiments::ablations::branches_sweep(
                &config(opts, 300),
                opts.dataset,
                10,
                &[1, 2, 3, 4, 5],
            ));
            all
        }
        other => return Err(format!("unknown command `{other}` (try `repro all`)")),
    };
    Ok(tables)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: repro <bench|serve-bench|bench-check|bench-compare|bench-history FILE..|attack|lint|datasets|fig1a|fig1b|fig2a|fig2b|fig3|fig4|ablation-theta|ablation-sigma|ablation-split|ablation-branches|all> [--runs N] [--scale F] [--seed N] [--eps F] [--dataset NAME] [--budget F] [--csv] [--json PATH] [--baseline PATH] [--tolerance F] [--baseline-only] [--trials N] [--significance F] [--quick] [--tenants N] [--duration F] [--qps F] [--par-threshold N] [--rule NAME] [--fixtures]");
            return ExitCode::FAILURE;
        }
    };
    match run_command(&opts) {
        Ok(tables) => {
            for t in &tables {
                emit(t, opts.csv);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_attack_options() {
        let opts = parse_args(&args(&[
            "attack",
            "--trials",
            "5000",
            "--significance",
            "0.05",
            "--quick",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(opts.command, "attack");
        assert_eq!(opts.attack_trials, Some(5000));
        assert_eq!(opts.significance, Some(0.05));
        assert!(opts.quick);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn validates_attack_option_values() {
        assert!(parse_args(&args(&["attack", "--trials", "0"])).is_err());
        assert!(parse_args(&args(&["attack", "--significance", "0.7"])).is_err());
        assert!(parse_args(&args(&["attack", "--significance", "0"])).is_err());
        assert!(parse_args(&args(&["attack", "--significance", "nan"])).is_err());
    }

    #[test]
    fn attack_options_are_rejected_on_other_commands() {
        // The cross-command flag-rejection pattern: a flag the selected
        // command would silently ignore is an error, not a no-op.
        for flags in [
            vec!["fig1a", "--trials", "5000"],
            vec!["bench", "--significance", "0.05"],
            vec!["all", "--quick"],
        ] {
            let opts = parse_args(&args(&flags)).unwrap();
            let err = run_command(&opts).unwrap_err();
            assert!(err.contains("only applies to `attack`"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn attack_rejects_foreign_flags() {
        for flags in [
            vec!["attack", "--eps", "0.5"],
            vec!["attack", "--dataset", "kosarak"],
            vec!["attack", "--scale", "0.5"],
        ] {
            let opts = parse_args(&args(&flags)).unwrap();
            let err = run_command(&opts).unwrap_err();
            assert!(err.contains("not supported"), "{flags:?}: {err}");
        }
        let opts = parse_args(&args(&["attack", "--runs", "10"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("--trials, not --runs"), "{err}");
        // --budget is still bench-only.
        let opts = parse_args(&args(&["attack", "--budget", "1.0"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("--budget only applies to `bench`"), "{err}");
    }

    #[test]
    fn parses_serve_bench_options() {
        let opts = parse_args(&args(&[
            "serve-bench",
            "--tenants",
            "16",
            "--duration",
            "2.5",
            "--qps",
            "5000",
            "--par-threshold",
            "32",
            "--quick",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert_eq!(opts.command, "serve-bench");
        assert_eq!(opts.tenants, Some(16));
        assert_eq!(opts.duration, Some(2.5));
        assert_eq!(opts.qps, Some(5000.0));
        assert_eq!(opts.par_threshold, Some(32));
        assert!(opts.quick);
        assert_eq!(opts.seed, 9);
    }

    #[test]
    fn validates_serve_bench_option_values() {
        assert!(parse_args(&args(&["serve-bench", "--tenants", "0"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "--duration", "0"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "--duration", "nan"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "--qps", "-5"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "--qps", "inf"])).is_err());
        assert!(parse_args(&args(&["serve-bench", "--par-threshold", "x"])).is_err());
        // 0 means "every call": valid.
        let opts = parse_args(&args(&["serve-bench", "--par-threshold", "0"])).unwrap();
        assert_eq!(opts.par_threshold, Some(0));
    }

    #[test]
    fn serve_bench_options_are_rejected_on_other_commands() {
        for flags in [
            vec!["fig1a", "--tenants", "4"],
            vec!["bench", "--duration", "1.0"],
            vec!["attack", "--qps", "100"],
            vec!["all", "--tenants", "2"],
            vec!["bench", "--par-threshold", "64"],
        ] {
            let opts = parse_args(&args(&flags)).unwrap();
            let err = run_command(&opts).unwrap_err();
            assert!(
                err.contains("only applies to `serve-bench`"),
                "{flags:?}: {err}"
            );
        }
    }

    #[test]
    fn serve_bench_rejects_foreign_flags() {
        for flags in [
            vec!["serve-bench", "--eps", "0.5"],
            vec!["serve-bench", "--dataset", "kosarak"],
            vec!["serve-bench", "--scale", "0.5"],
        ] {
            let opts = parse_args(&args(&flags)).unwrap();
            let err = run_command(&opts).unwrap_err();
            assert!(err.contains("not supported"), "{flags:?}: {err}");
        }
        let opts = parse_args(&args(&["serve-bench", "--runs", "10"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("not --runs"), "{err}");
        // The neighbouring commands' flags stay rejected too.
        let opts = parse_args(&args(&["serve-bench", "--trials", "100"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("only applies to `attack`"), "{err}");
        let opts = parse_args(&args(&["serve-bench", "--budget", "1.0"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("only applies to `bench`"), "{err}");
    }

    #[test]
    fn lint_options_are_rejected_on_other_commands() {
        for flags in [
            vec!["fig1a", "--rule", "panic-freedom"],
            vec!["bench", "--rule", "taxonomy"],
            vec!["attack", "--fixtures"],
            vec!["all", "--fixtures"],
        ] {
            let opts = parse_args(&args(&flags)).unwrap();
            let err = run_command(&opts).unwrap_err();
            assert!(err.contains("only applies to `lint`"), "{flags:?}: {err}");
        }
    }

    #[test]
    fn lint_rejects_foreign_flags_and_unknown_rules() {
        for flags in [
            vec!["lint", "--eps", "0.5"],
            vec!["lint", "--dataset", "kosarak"],
            vec!["lint", "--scale", "0.5"],
        ] {
            let opts = parse_args(&args(&flags)).unwrap();
            let err = run_command(&opts).unwrap_err();
            assert!(err.contains("not supported"), "{flags:?}: {err}");
        }
        let opts = parse_args(&args(&["lint", "--runs", "10"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("--runs does not apply"), "{err}");
        let opts = parse_args(&args(&["lint", "--rule", "no-such-rule"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        assert!(err.contains("stream-discipline"), "{err}");
    }

    #[test]
    fn json_is_rejected_on_commands_that_never_write_it() {
        for flags in [
            vec!["fig1a", "--json", "/tmp/out.json"],
            vec!["attack", "--json", "/tmp/out.json"],
            vec!["datasets", "--json", "/tmp/out.json"],
            vec!["all", "--json", "/tmp/out.json"],
        ] {
            let opts = parse_args(&args(&flags)).unwrap();
            let err = run_command(&opts).unwrap_err();
            assert!(err.contains("--json only applies to"), "{flags:?}: {err}");
        }
        // Fixture power mode has no tree report to serialize.
        let opts = parse_args(&args(&["lint", "--fixtures", "--json", "/tmp/out.json"])).unwrap();
        let err = run_command(&opts).unwrap_err();
        assert!(err.contains("does not apply to `lint --fixtures`"), "{err}");
    }

    #[test]
    fn lint_json_writes_a_stable_report() {
        // `lint --json` must produce the machine-readable report and exit
        // clean on the real tree — and two runs must agree byte-for-byte.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let dir = std::env::temp_dir().join("repro-lint-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("report.json");
        let cwd = std::env::current_dir().unwrap();
        std::env::set_current_dir(&root).unwrap();
        let mut opts = parse_args(&args(&["lint", "--json", out.to_str().unwrap()])).unwrap();
        let first = run_command(&opts);
        let run_a = std::fs::read_to_string(&out);
        opts = parse_args(&args(&["lint", "--json", out.to_str().unwrap()])).unwrap();
        let second = run_command(&opts);
        let run_b = std::fs::read_to_string(&out);
        std::env::set_current_dir(cwd).unwrap();
        first.expect("real tree lints clean");
        second.expect("real tree lints clean");
        let (a, b) = (run_a.unwrap(), run_b.unwrap());
        assert_eq!(a, b, "lint --json must be byte-stable across runs");
        assert!(a.contains("\"schema\": \"free-gap-lint/1\""));
        assert!(a.contains("\"active\": 0"));
    }
}
