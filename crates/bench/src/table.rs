//! Plain-text table / CSV emission for experiment results.
//!
//! Each experiment produces a [`Table`]; the `repro` binary prints it both
//! as an aligned human-readable table and as CSV (behind `--csv`), matching
//! the series the paper plots so EXPERIMENTS.md comparisons are one-to-one.

// lint:allow-file(panic-freedom): table assembly asserts row shape; a mismatch is a driver bug that must abort rather than render a misaligned report

use std::fmt;

/// A cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Text cell.
    Text(String),
    /// Integer cell.
    Int(i64),
    /// Float cell, printed with 3 decimals.
    Float(f64),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => write!(f, "{s}"),
            Cell::Int(i) => write!(f, "{i}"),
            Cell::Float(x) => write!(f, "{x:.3}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// An experiment result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment title (printed as a `#` comment line).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows; each must match `columns` in length.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the header.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV (title as a `#` comment).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n{}\n", self.title, self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned, human-readable table.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("demo", &["k", "value"]);
        t.push_row(vec![2usize.into(), 1.23456.into()]);
        t.push_row(vec![10usize.into(), "n/a".into()]);
        t
    }

    #[test]
    fn csv_round_shape() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "# demo");
        assert_eq!(lines[1], "k,value");
        assert_eq!(lines[2], "2,1.235");
        assert_eq!(lines[3], "10,n/a");
    }

    #[test]
    fn aligned_includes_all_cells() {
        let s = table().to_aligned();
        assert!(s.contains("demo"));
        assert!(s.contains("1.235"));
        assert!(s.contains("n/a"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec![1usize.into()]);
    }
}
