//! Dataset → query-workload loading for the experiments.
//!
//! The mechanisms only consume the per-item count vector, so each dataset is
//! generated once per `(dataset, scale, seed)` and reduced to a
//! [`QueryAnswers`] (monotone counting queries). Thresholds follow the §7.2
//! protocol: the count value at a uniformly random descending rank in
//! `[2k, 8k]`, redrawn per run.

use free_gap_core::QueryAnswers;
use free_gap_data::workload::rank_random_threshold;
use free_gap_data::{Dataset, ItemCounts};
use rand::Rng;

/// A dataset reduced to its counting-query workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which dataset this came from.
    pub dataset: Dataset,
    /// Raw per-item counts (for threshold ranks and ground truth).
    pub counts: ItemCounts,
    /// The counts as monotone query answers (mechanism input).
    pub answers: QueryAnswers,
}

impl Workload {
    /// Generates the workload at `scale` (record-count fraction) with `seed`.
    pub fn load(dataset: Dataset, scale: f64, seed: u64) -> Self {
        let db = dataset.generate_scaled(scale, seed);
        let counts = db.item_counts();
        let answers = QueryAnswers::from_counts(counts.as_u64());
        Self {
            dataset,
            counts,
            answers,
        }
    }

    /// Number of queries (items).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the workload is empty (never, for the shipped datasets).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Draws the §7.2 rank-random threshold for parameter `k`.
    pub fn draw_threshold<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> f64 {
        rank_random_threshold(&self.counts, k, rng)
    }

    /// Ground-truth indices with counts at or above `threshold`.
    pub fn truly_above(&self, threshold: f64) -> Vec<usize> {
        free_gap_data::workload::truly_above(&self.counts, threshold)
    }
}

/// Parses a dataset name as used by the `repro` CLI.
pub fn parse_dataset(name: &str) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "bms-pos" | "bmspos" | "bms" => Some(Dataset::BmsPos),
        "kosarak" => Some(Dataset::Kosarak),
        "t40" | "t40i10d100k" => Some(Dataset::T40I10D100K),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn load_small_scale() {
        let w = Workload::load(Dataset::T40I10D100K, 0.01, 5);
        assert_eq!(w.len(), 942);
        assert!(w.answers.monotonic());
        assert!(!w.is_empty());
    }

    #[test]
    fn threshold_in_count_range() {
        let w = Workload::load(Dataset::T40I10D100K, 0.01, 5);
        let mut rng = rng_from_seed(1);
        let t = w.draw_threshold(5, &mut rng);
        let sorted = w.counts.sorted_desc();
        assert!(t <= sorted[10] as f64, "t = {t} above rank-2k value");
        assert!(t >= sorted[40.min(sorted.len() - 1)] as f64);
    }

    #[test]
    fn parse_names() {
        assert_eq!(parse_dataset("BMS-POS"), Some(Dataset::BmsPos));
        assert_eq!(parse_dataset("kosarak"), Some(Dataset::Kosarak));
        assert_eq!(parse_dataset("T40"), Some(Dataset::T40I10D100K));
        assert_eq!(parse_dataset("nope"), None);
    }
}
