//! Exact binomial confidence machinery for statistically sound empirical
//! privacy bounds.
//!
//! A Monte-Carlo privacy attack observes an event `E` with frequency
//! `x_A / n` under input `D` and `x_B / n` under the neighbor `D'`, and wants
//! to report a **lower bound** on the true privacy loss
//! `ln(P(E | D) / P(E | D'))` that holds with high probability over the
//! sampling randomness — a raw plug-in ratio overstates the loss whenever
//! the favorable side got lucky. Following the dp-sniper recipe, the sound
//! construction is a one-sided [Clopper–Pearson] interval on each side:
//!
//! * `p_A ≥ lower(x_A, n, α/2)` with confidence `1 - α/2`, and
//! * `p_B ≤ upper(x_B, n, α/2)` with confidence `1 - α/2`,
//!
//! so `ε ≥ ln(lower / upper)` with confidence `1 - α` by a union bound —
//! see [`epsilon_lower_bound`]. The Clopper–Pearson bounds are *exact*
//! (they invert the binomial tail rather than a normal approximation), so
//! the guarantee needs no large-`n` caveat; the price is conservatism,
//! which for a lower bound is the safe direction.
//!
//! The quantile inversion runs through the regularized incomplete beta
//! function ([`beta_inc_reg`], Lentz-style continued fraction), the same
//! route every statistics library takes; [`binomial_cdf`] exposes the exact
//! tail it inverts so the test-suite can cross-check the two against a
//! direct pmf summation.
//!
//! [Clopper–Pearson]: https://en.wikipedia.org/wiki/Binomial_proportion_confidence_interval

/// Natural log of the gamma function (Lanczos approximation, `g = 7`,
/// 9 coefficients — ~15 significant digits for `x > 0`).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Reflection is unnecessary for x > 0; shift into the stable region.
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9_f64;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the beta function `B(a, b)`.
fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Continued-fraction evaluation for the incomplete beta function (modified
/// Lentz algorithm; converges for `x < (a + 1) / (a + b + 2)`).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
pub fn beta_inc_reg(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must lie in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();
    // Use the continued fraction on whichever side converges fast and
    // reflect for the other.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// Exact binomial CDF `P(X ≤ k)` for `X ~ Binomial(n, p)`, through the
/// incomplete-beta identity `P(X ≤ k) = I_{1-p}(n - k, k + 1)`.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    assert!(n > 0, "need at least one trial");
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1], got {p}");
    if k >= n {
        return 1.0;
    }
    beta_inc_reg((n - k) as f64, (k + 1) as f64, 1.0 - p)
}

/// Quantile of the `Beta(a, b)` distribution by bisection on
/// [`beta_inc_reg`] (monotone in `x`; 90 halvings put the answer well below
/// `f64` resolution).
fn beta_quantile(q: f64, a: f64, b: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must lie in [0, 1]"
    );
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
    for _ in 0..90 {
        let mid = 0.5 * (lo + hi);
        if beta_inc_reg(a, b, mid) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One-sided exact lower confidence bound for a binomial proportion: the
/// largest `p_lo` with `P(X ≥ x | n, p_lo) ≤ alpha`, so
/// `P(p ≥ p_lo) ≥ 1 - alpha` for the true `p`. Zero when `x = 0` (no
/// nontrivial lower bound exists).
pub fn binomial_lower_bound(x: u64, n: u64, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one trial");
    assert!(x <= n, "successes cannot exceed trials");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must lie in (0, 1), got {alpha}"
    );
    if x == 0 {
        return 0.0;
    }
    beta_quantile(alpha, x as f64, (n - x + 1) as f64)
}

/// One-sided exact upper confidence bound for a binomial proportion: the
/// smallest `p_hi` with `P(X ≤ x | n, p_hi) ≤ alpha`. One when `x = n`.
/// Strictly positive even when `x = 0` (`1 - alpha^{1/n}` in closed form) —
/// which is what keeps ratio bounds against a zero count finite.
pub fn binomial_upper_bound(x: u64, n: u64, alpha: f64) -> f64 {
    assert!(n > 0, "need at least one trial");
    assert!(x <= n, "successes cannot exceed trials");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must lie in (0, 1), got {alpha}"
    );
    if x == n {
        return 1.0;
    }
    beta_quantile(1.0 - alpha, (x + 1) as f64, (n - x) as f64)
}

/// Two-sided Clopper–Pearson interval at confidence `1 - alpha`.
pub fn clopper_pearson(x: u64, n: u64, alpha: f64) -> (f64, f64) {
    (
        binomial_lower_bound(x, n, alpha / 2.0),
        binomial_upper_bound(x, n, alpha / 2.0),
    )
}

/// Statistically sound empirical lower bound on the privacy loss of an
/// event observed `count_a` times in `trials` runs on `D` and `count_b`
/// times in `trials` runs on `D'`.
///
/// Returns `max(0, ln(lower_{α/2}(count_a) / upper_{α/2}(count_b)))`: with
/// probability at least `1 - alpha` over the sampling randomness, the true
/// `ln(P(E|D) / P(E|D'))` — and therefore the mechanism's true `ε` — is at
/// least the returned value. A zero `count_b` yields a **finite** bound
/// (the upper bound at zero successes is `1 - (α/2)^{1/n} > 0`): disjoint
/// empirical support claims only as much privacy loss as `trials` runs can
/// actually witness, growing like `ln(n)` rather than jumping to `∞`.
pub fn epsilon_lower_bound(count_a: u64, count_b: u64, trials: u64, alpha: f64) -> f64 {
    let lo = binomial_lower_bound(count_a, trials, alpha / 2.0);
    let hi = binomial_upper_bound(count_b, trials, alpha / 2.0);
    if lo <= 0.0 {
        return 0.0;
    }
    (lo / hi).ln().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference binomial CDF by direct log-space pmf summation — slow and
    /// only for small `n`, but independent of the incomplete-beta path.
    fn cdf_by_summation(k: u64, n: u64, p: f64) -> f64 {
        let ln_p = p.ln();
        let ln_q = (1.0 - p).ln();
        (0..=k)
            .map(|i| {
                let ln_choose = ln_gamma((n + 1) as f64)
                    - ln_gamma((i + 1) as f64)
                    - ln_gamma((n - i + 1) as f64);
                (ln_choose + i as f64 * ln_p + (n - i) as f64 * ln_q).exp()
            })
            .sum()
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn beta_inc_matches_direct_binomial_sums() {
        // I_{1-p}(n-k, k+1) must agree with Σ pmf across a (k, p) grid.
        let n = 40;
        for k in [0u64, 1, 5, 20, 35, 39] {
            for p in [0.01, 0.2, 0.5, 0.77, 0.99] {
                let via_beta = binomial_cdf(k, n, p);
                let via_sum = cdf_by_summation(k, n, p);
                assert!(
                    (via_beta - via_sum).abs() < 1e-10,
                    "k={k} p={p}: {via_beta} vs {via_sum}"
                );
            }
        }
    }

    #[test]
    fn bounds_invert_the_exact_tails() {
        // Defining equations: P(X ≥ x | n, lo) = alpha and
        // P(X ≤ x | n, hi) = alpha, checked through the independent
        // summation CDF.
        let (n, x, alpha) = (50u64, 13u64, 0.025);
        let lo = binomial_lower_bound(x, n, alpha);
        let hi = binomial_upper_bound(x, n, alpha);
        let upper_tail_at_lo = 1.0 - cdf_by_summation(x - 1, n, lo);
        let lower_tail_at_hi = cdf_by_summation(x, n, hi);
        assert!(
            (upper_tail_at_lo - alpha).abs() < 1e-9,
            "{upper_tail_at_lo}"
        );
        assert!(
            (lower_tail_at_hi - alpha).abs() < 1e-9,
            "{lower_tail_at_hi}"
        );
        assert!(lo < x as f64 / n as f64 && (x as f64 / n as f64) < hi);
    }

    #[test]
    fn edge_counts() {
        assert_eq!(binomial_lower_bound(0, 100, 0.05), 0.0);
        assert_eq!(binomial_upper_bound(100, 100, 0.05), 1.0);
        // Zero successes still upper-bounds p away from zero: the closed
        // form is 1 - alpha^(1/n).
        let hi = binomial_upper_bound(0, 100, 0.05);
        let expect = 1.0 - 0.05_f64.powf(1.0 / 100.0);
        assert!((hi - expect).abs() < 1e-9, "{hi} vs {expect}");
        // Full successes lower-bound p near one: alpha^(1/n).
        let lo = binomial_lower_bound(100, 100, 0.05);
        assert!((lo - 0.05_f64.powf(1.0 / 100.0)).abs() < 1e-9);
    }

    #[test]
    fn clopper_pearson_contains_the_point_estimate() {
        for (x, n) in [(5u64, 20u64), (50, 100), (1, 1000), (999, 1000)] {
            let (lo, hi) = clopper_pearson(x, n, 0.05);
            let p_hat = x as f64 / n as f64;
            assert!(lo <= p_hat && p_hat <= hi, "({lo}, {hi}) vs {p_hat}");
            // Tighter alpha widens the interval.
            let (lo2, hi2) = clopper_pearson(x, n, 0.001);
            assert!(lo2 <= lo && hi <= hi2);
        }
    }

    #[test]
    fn epsilon_lower_bound_behaves() {
        // Identical counts: no evidence of loss.
        assert_eq!(epsilon_lower_bound(500, 500, 10_000, 0.05), 0.0);
        // Heavier side A: positive, below the plug-in ratio.
        let b = epsilon_lower_bound(2_000, 500, 10_000, 0.05);
        let plug_in = (2_000.0_f64 / 500.0).ln();
        assert!(b > 0.0 && b < plug_in, "bound {b}, plug-in {plug_in}");
        // More trials at the same frequencies tighten toward the plug-in.
        let tighter = epsilon_lower_bound(20_000, 5_000, 100_000, 0.05);
        assert!(tighter > b);
        // Zero count on the neighbor: finite, grows with trials.
        let z1 = epsilon_lower_bound(900, 0, 1_000, 0.05);
        let z2 = epsilon_lower_bound(90_000, 0, 100_000, 0.05);
        assert!(z1.is_finite() && z2.is_finite());
        assert!(z2 > z1, "{z2} should exceed {z1}");
        // Zero count on A: no lower bound.
        assert_eq!(epsilon_lower_bound(0, 0, 1_000, 0.05), 0.0);
    }
}
