//! The alignment checker: executes the proof obligations of Lemma 1 on
//! concrete runs.

use crate::mechanism::AlignedMechanism;
use crate::source::{RecordingSource, ReplaySource};
use crate::tape::NoiseTape;
use rand::rngs::StdRng;
use std::fmt;

/// Everything observed during one alignment check.
#[derive(Debug, Clone)]
pub struct AlignmentReport {
    /// The recorded original tape `H`.
    pub original_tape: NoiseTape,
    /// The aligned tape `H' = φ(H)`.
    pub aligned_tape: NoiseTape,
    /// Definition-6 cost of the alignment on this execution.
    pub cost: f64,
    /// The mechanism's budget `ε` the cost was checked against.
    pub epsilon: f64,
}

/// Ways an alignment check can fail.
#[derive(Debug)]
pub enum AlignmentError {
    /// `M(D', φ(H))` produced a different output than `M(D, H)`.
    OutputMismatch {
        /// Debug rendering of `M(D, H)`.
        original: String,
        /// Debug rendering of `M(D', φ(H))`.
        aligned: String,
    },
    /// The alignment cost exceeded the mechanism's `ε`.
    CostExceeded {
        /// Observed Definition-6 cost.
        cost: f64,
        /// The budget it was checked against.
        epsilon: f64,
    },
    /// The neighbor execution did not consume exactly the aligned tape.
    TapeNotDrained {
        /// Draws left unconsumed.
        remaining: usize,
    },
    /// The neighbor execution requested more draws than the original run
    /// took — its control flow diverged past the original stopping point.
    TapeOverrun {
        /// Extra draws requested beyond the tape.
        extra: usize,
    },
}

impl fmt::Display for AlignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignmentError::OutputMismatch { original, aligned } => {
                write!(
                    f,
                    "aligned run diverged: M(D,H) = {original} but M(D',φ(H)) = {aligned}"
                )
            }
            AlignmentError::CostExceeded { cost, epsilon } => {
                write!(f, "alignment cost {cost} exceeds ε = {epsilon}")
            }
            AlignmentError::TapeNotDrained { remaining } => {
                write!(
                    f,
                    "aligned run left {remaining} draws unconsumed (draw structure diverged)"
                )
            }
            AlignmentError::TapeOverrun { extra } => {
                write!(
                    f,
                    "aligned run requested {extra} draws past the tape (control flow diverged)"
                )
            }
        }
    }
}

impl std::error::Error for AlignmentError {}

/// Numerical slack applied to the `cost <= ε` comparison (the cost is a sum
/// of float divisions; exact-boundary alignments like Noisy-Top-K's
/// monotone case land within a few ulps of ε).
const COST_SLACK: f64 = 1e-9;

/// Runs one end-to-end alignment check:
///
/// 1. `ω = M(D, H)` with fresh recorded noise `H`;
/// 2. `H' = φ_{D,D',ω}(H)` from the mechanism's alignment constructor;
/// 3. `ω' = M(D', H')` by replay (verifying draw-for-draw scale equality);
/// 4. check `ω' = ω`, the tape is fully drained, and `cost(φ) ≤ ε`.
///
/// Returns the report on success, or the first violated condition.
pub fn check_alignment<M: AlignedMechanism>(
    mechanism: &M,
    input: &M::Input,
    neighbor: &M::Input,
    rng: &mut StdRng,
) -> Result<AlignmentReport, AlignmentError> {
    // (1) original execution with recording.
    let mut recorder = RecordingSource::new(rng);
    let output = mechanism.run(input, &mut recorder);
    let original_tape = recorder.into_tape();

    // (2) build the aligned tape.
    let aligned_tape = mechanism.align(input, neighbor, &original_tape, &output);

    // (3) neighbor execution by replay.
    let mut replay = ReplaySource::new(aligned_tape.clone());
    let aligned_output = mechanism.run(neighbor, &mut replay);
    if replay.overrun() > 0 {
        return Err(AlignmentError::TapeOverrun {
            extra: replay.overrun(),
        });
    }
    if !replay.fully_consumed() {
        return Err(AlignmentError::TapeNotDrained {
            remaining: replay.remaining(),
        });
    }

    // (4) verify the two Lemma-1 obligations.
    if !mechanism.outputs_match(&output, &aligned_output) {
        return Err(AlignmentError::OutputMismatch {
            original: format!("{output:?}"),
            aligned: format!("{aligned_output:?}"),
        });
    }
    let cost = original_tape.alignment_cost(&aligned_tape);
    let epsilon = mechanism.epsilon();
    if cost > epsilon + COST_SLACK {
        return Err(AlignmentError::CostExceeded { cost, epsilon });
    }

    Ok(AlignmentReport {
        original_tape,
        aligned_tape,
        cost,
        epsilon,
    })
}

/// Convenience: runs [`check_alignment`] for `trials` independent noise
/// draws and returns the maximum observed cost. Any failure aborts with the
/// underlying error.
pub fn check_alignment_many<M: AlignedMechanism>(
    mechanism: &M,
    input: &M::Input,
    neighbor: &M::Input,
    trials: usize,
    rng: &mut StdRng,
) -> Result<f64, AlignmentError> {
    let mut max_cost: f64 = 0.0;
    for _ in 0..trials {
        let report = check_alignment(mechanism, input, neighbor, rng)?;
        max_cost = max_cost.max(report.cost);
    }
    Ok(max_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::AlignedMechanism;
    use crate::source::NoiseSource;
    use free_gap_noise::rng::rng_from_seed;

    /// Example 1 of the paper: the Laplace mechanism on a sum query, aligned
    /// by η'₁ = η₁ + q(D) - q(D').
    struct LaplaceSum {
        epsilon: f64,
        sensitivity: f64,
    }

    impl AlignedMechanism for LaplaceSum {
        type Input = f64;
        // Noisy output discretized so PartialEq is meaningful: the alignment
        // reproduces the *exact* real number, so raw f64 equality works too.
        type Output = f64;

        fn run(&self, input: &f64, source: &mut dyn NoiseSource) -> f64 {
            input + source.laplace(self.sensitivity / self.epsilon)
        }

        fn align(&self, input: &f64, neighbor: &f64, tape: &NoiseTape, _: &f64) -> NoiseTape {
            tape.aligned_by(|_, _| input - neighbor)
        }

        fn epsilon(&self) -> f64 {
            self.epsilon
        }

        fn outputs_match(&self, a: &f64, b: &f64) -> bool {
            // Continuous output: equal up to re-association rounding.
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
        }
    }

    #[test]
    fn laplace_mechanism_aligns_exactly() {
        let mech = LaplaceSum {
            epsilon: 0.3,
            sensitivity: 100.0,
        };
        let mut rng = rng_from_seed(8);
        let max = check_alignment_many(&mech, &5_000.0, &4_930.0, 300, &mut rng).unwrap();
        // cost = |q - q'| * eps / sensitivity = 70 * 0.3/100 = 0.21 exactly.
        assert!((max - 0.21).abs() < 1e-12, "max cost = {max}");
    }

    #[test]
    fn over_budget_alignment_reports_cost() {
        let mech = LaplaceSum {
            epsilon: 0.3,
            sensitivity: 100.0,
        };
        let mut rng = rng_from_seed(8);
        // |q - q'| = 200 > sensitivity: cost 0.6 > ε.
        let err = check_alignment(&mech, &5_000.0, &4_800.0, &mut rng).unwrap_err();
        match err {
            AlignmentError::CostExceeded { cost, epsilon } => {
                assert!((cost - 0.6).abs() < 1e-12);
                assert_eq!(epsilon, 0.3);
            }
            other => panic!("expected CostExceeded, got {other}"),
        }
    }

    /// A mechanism whose neighbor execution consumes fewer draws — the
    /// checker must flag the undrained tape.
    struct ShrinkingDraws;

    impl AlignedMechanism for ShrinkingDraws {
        type Input = usize;
        type Output = usize;

        fn run(&self, input: &usize, source: &mut dyn NoiseSource) -> usize {
            for _ in 0..*input {
                source.laplace(1.0);
            }
            *input
        }

        fn align(&self, _: &usize, _: &usize, tape: &NoiseTape, _: &usize) -> NoiseTape {
            tape.clone()
        }

        fn epsilon(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn undrained_tape_is_detected() {
        let mut rng = rng_from_seed(1);
        let err = check_alignment(&ShrinkingDraws, &3usize, &2usize, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            AlignmentError::TapeNotDrained { remaining: 1 }
        ));
    }

    #[test]
    fn output_mismatch_is_detected_before_cost() {
        // ShrinkingDraws with neighbor > input panics in replay (exhausted);
        // with equal draw counts but different outputs we get OutputMismatch.
        struct EchoInput;
        impl AlignedMechanism for EchoInput {
            type Input = usize;
            type Output = usize;
            fn run(&self, input: &usize, source: &mut dyn NoiseSource) -> usize {
                source.laplace(1.0);
                *input
            }
            fn align(&self, _: &usize, _: &usize, tape: &NoiseTape, _: &usize) -> NoiseTape {
                tape.clone()
            }
            fn epsilon(&self) -> f64 {
                1.0
            }
        }
        let mut rng = rng_from_seed(1);
        let err = check_alignment(&EchoInput, &1usize, &2usize, &mut rng).unwrap_err();
        assert!(
            matches!(err, AlignmentError::OutputMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn errors_display_readably() {
        let e = AlignmentError::CostExceeded {
            cost: 1.5,
            epsilon: 1.0,
        };
        assert!(e.to_string().contains("1.5"));
        let e = AlignmentError::TapeNotDrained { remaining: 2 };
        assert!(e.to_string().contains("2 draws"));
    }
}
