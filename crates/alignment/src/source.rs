//! Noise sources: the sampling interface mechanisms draw through.
//!
//! Mechanisms take `&mut dyn NoiseSource` instead of an RNG directly. In
//! production they are driven by a [`RecordingSource`] (fresh Laplace
//! samples; the recording costs one `Vec` push per draw). In alignment
//! checks the *same mechanism code* is re-run against a [`ReplaySource`]
//! loaded with the aligned tape `H' = φ(H)`, which also verifies that the
//! second execution requests draws with exactly the same scales in exactly
//! the same order — any divergence means the alignment changed the draw
//! structure and the Definition-6 cost accounting would be meaningless.

use crate::tape::{DrawKind, NoiseTape};
use free_gap_noise::{
    ContinuousDistribution, DiscreteDistribution, DiscreteLaplace, Exponential, Gumbel, Laplace,
    Staircase,
};
use rand::rngs::StdRng;

/// The sampling interface used by alignable mechanisms.
pub trait NoiseSource {
    /// Draws one zero-mean Laplace(`scale`) variate.
    ///
    /// # Panics
    /// Replay sources panic when the requested scale differs from the
    /// recorded one (see module docs).
    fn laplace(&mut self, scale: f64) -> f64;

    /// Draws one zero-mean discrete Laplace variate over `{kγ}` with
    /// per-unit privacy rate `unit_epsilon` (pmf ∝ `e^{-unit_epsilon·|kγ|}`).
    ///
    /// The recorded Definition-6 scale is `1/unit_epsilon`, so a shift of
    /// `Δ` costs `unit_epsilon·|Δ|` — the discrete analogue of the Laplace
    /// accounting.
    fn discrete_laplace(&mut self, unit_epsilon: f64, gamma: f64) -> f64;

    /// Draws one standard-shape Gumbel(`scale`) variate (location 0) — the
    /// exponential-mechanism race noise. Recorded with
    /// [`DrawKind::Gumbel`]; no Definition-6 cost accounting applies (see
    /// the kind's docs), replay verifies family and scale fidelity only.
    fn gumbel(&mut self, scale: f64) -> f64;

    /// Draws one one-sided Exponential(`scale`) variate. Same accounting
    /// caveat as [`gumbel`](NoiseSource::gumbel).
    fn exponential(&mut self, scale: f64) -> f64;

    /// Draws one staircase variate at privacy parameter `epsilon`,
    /// sensitivity `sensitivity` and stair split `gamma` — the
    /// measurement-baseline noise. The distribution is constructed per draw
    /// (the draw-exact reference cost the scratch paths hoist); recorded
    /// scale is `sensitivity / epsilon`.
    fn staircase(&mut self, epsilon: f64, sensitivity: f64, gamma: f64) -> f64;

    /// Number of draws served so far.
    fn draws_taken(&self) -> usize;
}

/// Samples fresh noise from an RNG and records every draw.
pub struct RecordingSource<'a> {
    rng: &'a mut StdRng,
    tape: NoiseTape,
}

impl<'a> RecordingSource<'a> {
    /// Creates a recording source backed by `rng`.
    pub fn new(rng: &'a mut StdRng) -> Self {
        Self {
            rng,
            tape: NoiseTape::new(),
        }
    }

    /// Consumes the source, returning the recorded tape.
    pub fn into_tape(self) -> NoiseTape {
        self.tape
    }

    /// The tape recorded so far.
    pub fn tape(&self) -> &NoiseTape {
        &self.tape
    }
}

impl NoiseSource for RecordingSource<'_> {
    fn laplace(&mut self, scale: f64) -> f64 {
        let dist = Laplace::new(scale).expect("mechanism requested invalid scale");
        let v = dist.sample(self.rng);
        self.tape.push(v, scale);
        v
    }

    fn discrete_laplace(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        let dist =
            DiscreteLaplace::new(unit_epsilon, gamma).expect("mechanism requested invalid rate");
        let v = dist.sample_value(self.rng);
        self.tape
            .push_kind(v, 1.0 / unit_epsilon, DrawKind::DiscreteLaplace { gamma });
        v
    }

    fn gumbel(&mut self, scale: f64) -> f64 {
        let dist = Gumbel::new(scale).expect("mechanism requested invalid scale");
        let v = dist.sample(self.rng);
        self.tape.push_kind(v, scale, DrawKind::Gumbel);
        v
    }

    fn exponential(&mut self, scale: f64) -> f64 {
        let dist = Exponential::new(scale).expect("mechanism requested invalid scale");
        let v = dist.sample(self.rng);
        self.tape.push_kind(v, scale, DrawKind::Exponential);
        v
    }

    fn staircase(&mut self, epsilon: f64, sensitivity: f64, gamma: f64) -> f64 {
        let dist =
            Staircase::new(epsilon, sensitivity, gamma).expect("mechanism requested invalid shape");
        let v = dist.sample(self.rng);
        self.tape.push_kind(
            v,
            sensitivity / epsilon,
            DrawKind::Staircase { sensitivity, gamma },
        );
        v
    }

    fn draws_taken(&self) -> usize {
        self.tape.len()
    }
}

/// Samples fresh noise without recording — the zero-overhead production
/// path. Use [`RecordingSource`] only when a tape is actually needed.
pub struct SamplingSource<'a> {
    rng: &'a mut StdRng,
    count: usize,
}

impl<'a> SamplingSource<'a> {
    /// Creates a sampling source backed by `rng`.
    pub fn new(rng: &'a mut StdRng) -> Self {
        Self { rng, count: 0 }
    }
}

impl NoiseSource for SamplingSource<'_> {
    fn laplace(&mut self, scale: f64) -> f64 {
        let dist = Laplace::new(scale).expect("mechanism requested invalid scale");
        self.count += 1;
        dist.sample(self.rng)
    }

    fn discrete_laplace(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        let dist =
            DiscreteLaplace::new(unit_epsilon, gamma).expect("mechanism requested invalid rate");
        self.count += 1;
        dist.sample_value(self.rng)
    }

    fn gumbel(&mut self, scale: f64) -> f64 {
        let dist = Gumbel::new(scale).expect("mechanism requested invalid scale");
        self.count += 1;
        dist.sample(self.rng)
    }

    fn exponential(&mut self, scale: f64) -> f64 {
        let dist = Exponential::new(scale).expect("mechanism requested invalid scale");
        self.count += 1;
        dist.sample(self.rng)
    }

    fn staircase(&mut self, epsilon: f64, sensitivity: f64, gamma: f64) -> f64 {
        let dist =
            Staircase::new(epsilon, sensitivity, gamma).expect("mechanism requested invalid shape");
        self.count += 1;
        dist.sample(self.rng)
    }

    fn draws_taken(&self) -> usize {
        self.count
    }
}

/// Replays a pre-built (typically aligned) tape, verifying draw structure.
pub struct ReplaySource {
    tape: NoiseTape,
    cursor: usize,
    overrun: usize,
}

impl ReplaySource {
    /// Creates a replay source over `tape`.
    pub fn new(tape: NoiseTape) -> Self {
        Self {
            tape,
            cursor: 0,
            overrun: 0,
        }
    }

    /// Number of unconsumed draws remaining.
    pub fn remaining(&self) -> usize {
        self.tape.len() - self.cursor
    }

    /// Draws requested *beyond* the tape's end. Non-zero means the aligned
    /// execution took a longer path than the original — a divergence the
    /// checker reports (broken alignments do this when a decision flips and
    /// the replayed run keeps going past the original stopping point).
    pub fn overrun(&self) -> usize {
        self.overrun
    }

    /// True when every recorded draw has been consumed — the paper's
    /// condition (ii) of Lemma 1 (the number of variables used is determined
    /// by the output) implies a complete replay must drain the tape.
    pub fn fully_consumed(&self) -> bool {
        self.remaining() == 0
    }
}

impl ReplaySource {
    /// Shared replay step: validates scale and family, returns the value.
    fn next_draw(&mut self, scale: f64, kind: DrawKind) -> f64 {
        if self.cursor >= self.tape.len() {
            self.overrun += 1;
            return 0.0;
        }
        let d = self.tape.draw(self.cursor);
        assert!(
            (d.scale - scale).abs() <= 1e-12 * d.scale.max(scale).max(1.0),
            "draw {}: aligned execution requested scale {scale} but original drew at {}",
            self.cursor,
            d.scale
        );
        assert!(
            d.kind == kind,
            "draw {}: aligned execution requested {kind:?} but original drew {:?}",
            self.cursor,
            d.kind
        );
        self.cursor += 1;
        d.value
    }
}

impl NoiseSource for ReplaySource {
    /// Returns the next recorded draw. Past the tape's end, records the
    /// overrun and returns 0.0 — the run's output is already known to
    /// diverge at that point, so the value is immaterial; the checker turns
    /// a non-zero [`overrun`](ReplaySource::overrun) into an error.
    fn laplace(&mut self, scale: f64) -> f64 {
        self.next_draw(scale, DrawKind::Laplace)
    }

    fn discrete_laplace(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        self.next_draw(1.0 / unit_epsilon, DrawKind::DiscreteLaplace { gamma })
    }

    fn gumbel(&mut self, scale: f64) -> f64 {
        self.next_draw(scale, DrawKind::Gumbel)
    }

    fn exponential(&mut self, scale: f64) -> f64 {
        self.next_draw(scale, DrawKind::Exponential)
    }

    fn staircase(&mut self, epsilon: f64, sensitivity: f64, gamma: f64) -> f64 {
        self.next_draw(
            sensitivity / epsilon,
            DrawKind::Staircase { sensitivity, gamma },
        )
    }

    fn draws_taken(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn recording_source_records_all_draws() {
        let mut rng = rng_from_seed(1);
        let mut src = RecordingSource::new(&mut rng);
        let a = src.laplace(1.0);
        let b = src.laplace(2.0);
        assert_eq!(src.draws_taken(), 2);
        let tape = src.into_tape();
        assert_eq!(tape.len(), 2);
        assert_eq!(tape.value(0), a);
        assert_eq!(tape.value(1), b);
        assert_eq!(tape.draw(0).scale, 1.0);
        assert_eq!(tape.draw(1).scale, 2.0);
    }

    #[test]
    fn recording_matches_direct_sampling() {
        // Same rng stream => same values as sampling the distribution directly.
        let mut rng1 = rng_from_seed(9);
        let mut rng2 = rng_from_seed(9);
        let mut src = RecordingSource::new(&mut rng1);
        let v = src.laplace(3.0);
        let direct = Laplace::new(3.0).unwrap().sample(&mut rng2);
        assert_eq!(v, direct);
    }

    #[test]
    fn sampling_source_matches_recording_stream() {
        let mut rng1 = rng_from_seed(6);
        let mut rng2 = rng_from_seed(6);
        let mut fast = SamplingSource::new(&mut rng1);
        let mut rec = RecordingSource::new(&mut rng2);
        for scale in [1.0, 2.0, 0.5] {
            assert_eq!(fast.laplace(scale), rec.laplace(scale));
        }
        assert_eq!(fast.draws_taken(), 3);
    }

    #[test]
    fn baseline_families_record_and_replay() {
        // Gumbel/Exponential/Staircase draws: recording matches direct
        // sampling, the tape carries the right kinds, and replay verifies
        // family fidelity.
        let mut rng1 = rng_from_seed(17);
        let mut rng2 = rng_from_seed(17);
        let mut rec = RecordingSource::new(&mut rng1);
        let g = rec.gumbel(2.0);
        let e = rec.exponential(0.5);
        let s = rec.staircase(1.0, 1.0, 0.25);
        assert_eq!(g, Gumbel::new(2.0).unwrap().sample(&mut rng2));
        assert_eq!(e, Exponential::new(0.5).unwrap().sample(&mut rng2));
        assert_eq!(s, Staircase::new(1.0, 1.0, 0.25).unwrap().sample(&mut rng2));
        let tape = rec.into_tape();
        assert_eq!(tape.draw(0).kind, DrawKind::Gumbel);
        assert_eq!(tape.draw(1).kind, DrawKind::Exponential);
        assert_eq!(
            tape.draw(2).kind,
            DrawKind::Staircase {
                sensitivity: 1.0,
                gamma: 0.25
            }
        );
        let mut replay = ReplaySource::new(tape);
        assert_eq!(replay.gumbel(2.0), g);
        assert_eq!(replay.exponential(0.5), e);
        assert_eq!(replay.staircase(1.0, 1.0, 0.25), s);
        assert!(replay.fully_consumed());
    }

    #[test]
    #[should_panic(expected = "requested")]
    fn replay_panics_on_family_divergence() {
        let mut tape = NoiseTape::new();
        tape.push_kind(0.0, 1.0, DrawKind::Gumbel);
        let mut src = ReplaySource::new(tape);
        src.exponential(1.0);
    }

    #[test]
    fn replay_returns_tape_values_in_order() {
        let mut tape = NoiseTape::new();
        tape.push(0.25, 1.0);
        tape.push(-1.5, 2.0);
        let mut src = ReplaySource::new(tape);
        assert_eq!(src.remaining(), 2);
        assert_eq!(src.laplace(1.0), 0.25);
        assert_eq!(src.laplace(2.0), -1.5);
        assert!(src.fully_consumed());
    }

    #[test]
    fn replay_records_overrun_past_tape_end() {
        let mut src = ReplaySource::new(NoiseTape::new());
        assert_eq!(src.overrun(), 0);
        assert_eq!(src.laplace(1.0), 0.0);
        assert_eq!(src.laplace(1.0), 0.0);
        assert_eq!(src.overrun(), 2);
        assert_eq!(src.draws_taken(), 0);
    }

    #[test]
    #[should_panic(expected = "requested scale")]
    fn replay_panics_on_scale_divergence() {
        let mut tape = NoiseTape::new();
        tape.push(0.0, 1.0);
        let mut src = ReplaySource::new(tape);
        src.laplace(2.0);
    }
}
