//! Adjacent query-answer vectors.
//!
//! The paper's mechanisms consume a vector `q(D) = (q₁(D), …, qₙ(D))` of
//! sensitivity-1 query answers. Database adjacency `D ~ D'` induces a
//! perturbation `q(D') = q(D) + δ` with:
//!
//! * general sensitivity-1 queries: `δᵢ ∈ [-1, 1]` independently;
//! * monotone queries (Definition 7, e.g. counting queries under
//!   add/remove-one adjacency): all `δᵢ ∈ [0, 1]` or all `δᵢ ∈ [-1, 0]`.
//!
//! [`AdjacencyModel`] generates random perturbations of the right shape for
//! alignment checking and empirical-ε audits.

use rand::Rng;

/// Which family of adjacent inputs to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdjacencyModel {
    /// Each query may move independently by at most 1 in either direction.
    General,
    /// All queries move up together (each by `[0, 1]`).
    MonotoneUp,
    /// All queries move down together (each by `[0, 1]`).
    MonotoneDown,
}

/// A concrete perturbation `δ` with `q(D') = q(D) + δ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbation {
    deltas: Vec<f64>,
}

impl Perturbation {
    /// Draws a random perturbation of length `n` under `model`.
    pub fn random<R: Rng + ?Sized>(model: AdjacencyModel, n: usize, rng: &mut R) -> Self {
        let deltas = (0..n)
            .map(|_| {
                let u: f64 = rng.gen(); // [0, 1)
                match model {
                    AdjacencyModel::General => 2.0 * u - 1.0,
                    AdjacencyModel::MonotoneUp => u,
                    AdjacencyModel::MonotoneDown => -u,
                }
            })
            .collect();
        Self { deltas }
    }

    /// The extreme integer perturbation for `model` (every delta at ±1):
    /// worst case for alignment cost.
    pub fn extreme(model: AdjacencyModel, n: usize, sign_pattern: u64) -> Self {
        let deltas = (0..n)
            .map(|i| match model {
                AdjacencyModel::General => {
                    if (sign_pattern >> (i % 64)) & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                }
                AdjacencyModel::MonotoneUp => 1.0,
                AdjacencyModel::MonotoneDown => -1.0,
            })
            .collect();
        Self { deltas }
    }

    /// Wraps explicit deltas, validating the sensitivity-1 constraint.
    ///
    /// # Panics
    /// Panics if any `|δᵢ| > 1` or is non-finite.
    pub fn from_deltas(deltas: Vec<f64>) -> Self {
        for (i, d) in deltas.iter().enumerate() {
            assert!(
                d.is_finite() && d.abs() <= 1.0,
                "delta {i} = {d} violates sensitivity 1"
            );
        }
        Self { deltas }
    }

    /// The raw deltas.
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// Applies the perturbation: `q(D') = q(D) + δ`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn apply(&self, answers: &[f64]) -> Vec<f64> {
        assert_eq!(answers.len(), self.deltas.len(), "length mismatch");
        answers
            .iter()
            .zip(&self.deltas)
            .map(|(a, d)| a + d)
            .collect()
    }

    /// True when the perturbation is monotone (all non-negative or all
    /// non-positive) — the Definition-7 precondition for the tighter
    /// mechanism budgets.
    pub fn is_monotone(&self) -> bool {
        self.deltas.iter().all(|&d| d >= 0.0) || self.deltas.iter().all(|&d| d <= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn general_stays_in_band() {
        let mut rng = rng_from_seed(4);
        let p = Perturbation::random(AdjacencyModel::General, 100, &mut rng);
        assert!(p.deltas().iter().all(|d| (-1.0..=1.0).contains(d)));
    }

    #[test]
    fn monotone_models_are_monotone() {
        let mut rng = rng_from_seed(4);
        let up = Perturbation::random(AdjacencyModel::MonotoneUp, 50, &mut rng);
        assert!(up.is_monotone());
        assert!(up.deltas().iter().all(|&d| (0.0..=1.0).contains(&d)));
        let down = Perturbation::random(AdjacencyModel::MonotoneDown, 50, &mut rng);
        assert!(down.is_monotone());
        assert!(down.deltas().iter().all(|&d| (-1.0..=0.0).contains(&d)));
    }

    #[test]
    fn extreme_patterns() {
        let p = Perturbation::extreme(AdjacencyModel::General, 4, 0b0101);
        assert_eq!(p.deltas(), &[1.0, -1.0, 1.0, -1.0]);
        let up = Perturbation::extreme(AdjacencyModel::MonotoneUp, 3, 0);
        assert_eq!(up.deltas(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn apply_adds_deltas() {
        let p = Perturbation::from_deltas(vec![0.5, -1.0]);
        assert_eq!(p.apply(&[10.0, 20.0]), vec![10.5, 19.0]);
    }

    #[test]
    #[should_panic(expected = "sensitivity 1")]
    fn from_deltas_validates() {
        Perturbation::from_deltas(vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_checks_length() {
        Perturbation::from_deltas(vec![0.0]).apply(&[1.0, 2.0]);
    }

    #[test]
    fn mixed_deltas_not_monotone() {
        assert!(!Perturbation::from_deltas(vec![0.5, -0.5]).is_monotone());
        assert!(Perturbation::from_deltas(vec![0.0, 0.0]).is_monotone());
    }
}
