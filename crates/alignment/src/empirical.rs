//! Black-box empirical privacy-loss estimation.
//!
//! For mechanisms with a small discrete output space, the differential
//! privacy inequality `P(M(D) = ω) ≤ e^ε · P(M(D') = ω)` can be audited by
//! Monte-Carlo: estimate both output histograms and take the largest
//! log-ratio over outputs that occur often enough for the ratio to be
//! statistically meaningful. An estimate `ε̂` well above the claimed `ε`
//! (beyond sampling noise) witnesses a privacy bug; `ε̂ ≤ ε` on all tested
//! pairs is (only) supporting evidence, which is exactly the role empirical
//! audits play next to the alignment checker.

use rand::rngs::StdRng;
use std::collections::HashMap;
use std::hash::Hash;

/// Result of an empirical privacy audit on one `(D, D')` pair.
#[derive(Debug, Clone)]
pub struct EmpiricalEpsilon {
    /// Largest observed `|ln(p̂_D(ω) / p̂_D'(ω))|` over qualifying outputs.
    ///
    /// `f64::INFINITY` when some output occurred at least `min_count` times
    /// under one input and **never** under the other — statistically
    /// overwhelming evidence of an unbounded privacy loss (a pure-DP
    /// mechanism assigns every output positive probability under both).
    pub epsilon_hat: f64,
    /// Add-one-smoothed twin of [`epsilon_hat`](Self::epsilon_hat):
    /// largest `|ln((c_D(ω) + 1) / (c_D'(ω) + 1))|` over outputs frequent
    /// enough on at least one side (`max(c_D, c_D') ≥ min_count`).
    ///
    /// **Always finite**, including for outputs never seen on one side —
    /// an event observed `c` times against zero claims only `ln(c + 1)` of
    /// loss, which is the most `trials` runs can statistically witness.
    /// This is the value to compare against a claimed `ε` when a finite
    /// one-sided bound is needed (the `∞` sentinel in `epsilon_hat` stays
    /// as the unambiguous disjoint-support flag). For bounds with explicit
    /// confidence levels, use
    /// [`crate::binomial::epsilon_lower_bound`] on the underlying counts.
    pub epsilon_hat_smoothed: f64,
    /// The output achieving `epsilon_hat` (its `Debug` rendering).
    pub witness: String,
    /// Number of distinct outputs observed across both runs.
    pub distinct_outputs: usize,
    /// Trials per database.
    pub trials: usize,
}

/// Estimates the empirical privacy loss of `mechanism` between two inputs.
///
/// `mechanism` is called `trials` times per input with the provided RNG; its
/// output must be hashable (discretize continuous outputs first — e.g. round
/// gaps to a coarse grid — otherwise every output is unique and no ratio is
/// estimable). Outputs seen fewer than `min_count` times in *either*
/// histogram are skipped: rare-event ratios are pure noise.
pub fn empirical_epsilon<K, F>(
    mut mechanism: F,
    input_a: &[f64],
    input_b: &[f64],
    trials: usize,
    min_count: usize,
    rng: &mut StdRng,
) -> EmpiricalEpsilon
where
    K: Eq + Hash + std::fmt::Debug,
    F: FnMut(&[f64], &mut StdRng) -> K,
{
    assert!(trials > 0, "need at least one trial");
    assert!(min_count > 0, "min_count must be positive");

    let mut hist_a: HashMap<K, usize> = HashMap::new();
    for _ in 0..trials {
        *hist_a.entry(mechanism(input_a, rng)).or_insert(0) += 1;
    }
    let mut hist_b: HashMap<K, usize> = HashMap::new();
    for _ in 0..trials {
        *hist_b.entry(mechanism(input_b, rng)).or_insert(0) += 1;
    }

    let mut keys: Vec<&K> = hist_a.keys().collect();
    for k in hist_b.keys() {
        if !hist_a.contains_key(k) {
            keys.push(k);
        }
    }
    let distinct_outputs = keys.len();

    let mut epsilon_hat: f64 = 0.0;
    let mut epsilon_hat_smoothed: f64 = 0.0;
    let mut witness = String::from("<none qualified>");
    for k in keys {
        let ca = hist_a.get(k).copied().unwrap_or(0);
        let cb = hist_b.get(k).copied().unwrap_or(0);
        if ca.max(cb) >= min_count {
            // Add-one smoothing keeps the ratio finite even on disjoint
            // support, so the smoothed estimate never degenerates to ∞/NaN.
            let smoothed = (((ca + 1) as f64) / ((cb + 1) as f64)).ln().abs();
            epsilon_hat_smoothed = epsilon_hat_smoothed.max(smoothed);
        }
        // Disjoint support: frequent on one side, never on the other. Under
        // pure ε-DP this has probability ≲ trials·e^{-ε·min_count}; treat as
        // an unbounded-loss witness rather than skipping it.
        if (ca >= min_count && cb == 0) || (cb >= min_count && ca == 0) {
            if !epsilon_hat.is_infinite() {
                epsilon_hat = f64::INFINITY;
                witness = format!("{k:?} (one-sided: {ca} vs {cb})");
            }
            continue;
        }
        if ca < min_count || cb < min_count {
            continue;
        }
        let ratio = ((ca as f64) / (cb as f64)).ln().abs();
        if ratio > epsilon_hat {
            epsilon_hat = ratio;
            witness = format!("{k:?}");
        }
    }

    EmpiricalEpsilon {
        epsilon_hat,
        epsilon_hat_smoothed,
        witness,
        distinct_outputs,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::{ContinuousDistribution, Laplace};

    /// Index-only noisy max over 3 queries — a tiny output space {0, 1, 2}.
    fn noisy_argmax(answers: &[f64], rng: &mut StdRng) -> usize {
        let lap = Laplace::new(2.0 / 1.0).unwrap(); // eps = 1, scale 2/eps
        let mut best = 0;
        let mut best_val = f64::NEG_INFINITY;
        for (i, &a) in answers.iter().enumerate() {
            let v = a + lap.sample(rng);
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best
    }

    #[test]
    fn noisy_max_epsilon_hat_below_budget() {
        let mut rng = rng_from_seed(2024);
        let d: Vec<f64> = vec![3.0, 2.0, 1.0];
        let dprime: Vec<f64> = vec![2.0, 3.0, 2.0]; // each query moved by <= 1
        let audit = empirical_epsilon(noisy_argmax, &d, &dprime, 60_000, 300, &mut rng);
        // Budget is ε = 1; allow generous sampling slack.
        assert!(
            audit.epsilon_hat < 1.15,
            "ε̂ = {} via {}",
            audit.epsilon_hat,
            audit.witness
        );
        assert_eq!(audit.distinct_outputs, 3);
    }

    #[test]
    fn detects_a_blatantly_non_private_mechanism() {
        // Deterministic argmax: infinite true ε; the estimate must blow past 1.
        fn argmax(answers: &[f64], _rng: &mut StdRng) -> usize {
            answers
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        }
        let mut rng = rng_from_seed(5);
        // Both inputs must produce *some* overlap to qualify; use randomized
        // tie via different orderings. Deterministic outputs never overlap,
        // so qualifying outputs vanish and ε̂ stays 0 — that's the documented
        // limitation; test the near-deterministic variant instead.
        fn leaky(answers: &[f64], rng: &mut StdRng) -> usize {
            let lap = Laplace::new(0.05).unwrap(); // way too little noise
            let mut best = 0;
            let mut best_val = f64::NEG_INFINITY;
            for (i, &a) in answers.iter().enumerate() {
                let v = a + lap.sample(rng);
                if v > best_val {
                    best_val = v;
                    best = i;
                }
            }
            best
        }
        let _ = argmax(&[1.0, 0.0], &mut rng); // exercise the helper
                                               // Gap 0.15 against Lap(0.05) noise keeps both outputs frequent enough
                                               // to qualify while the true log-ratio is ln(0.938/0.062) ≈ 2.7.
        let d = vec![0.15, 0.0];
        let dprime = vec![0.0, 0.15];
        let audit = empirical_epsilon(leaky, &d, &dprime, 40_000, 50, &mut rng);
        assert!(audit.epsilon_hat > 2.0, "ε̂ = {}", audit.epsilon_hat);
    }

    #[test]
    fn rare_outputs_are_skipped() {
        // An output that appears once in A and never in B must not produce
        // an infinite ratio.
        let mut rng = rng_from_seed(1);
        let audit = empirical_epsilon(
            |answers: &[f64], rng: &mut StdRng| {
                (answers[0] + Laplace::new(1.0).unwrap().sample(rng)).round() as i64
            },
            &[0.0],
            &[1.0],
            5_000,
            25,
            &mut rng,
        );
        assert!(audit.epsilon_hat.is_finite());
        assert!(audit.epsilon_hat > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn rejects_zero_trials() {
        let mut rng = rng_from_seed(1);
        empirical_epsilon(|_: &[f64], _: &mut StdRng| 0u8, &[], &[], 0, 1, &mut rng);
    }

    #[test]
    fn one_sided_events_get_a_finite_smoothed_bound() {
        // Regression for the zero-count edge case: an output frequent on one
        // database and absent on the neighbor keeps the ∞ sentinel in
        // `epsilon_hat` but must also report a finite one-sided bound.
        let mut rng = rng_from_seed(9);
        let audit = empirical_epsilon(
            |answers: &[f64], _: &mut StdRng| answers[0] as i64,
            &[0.0],
            &[1.0],
            1_000,
            100,
            &mut rng,
        );
        assert!(audit.epsilon_hat.is_infinite());
        assert!(
            audit.epsilon_hat_smoothed.is_finite(),
            "smoothed bound must never be infinite"
        );
        // 1000 observations vs 0 → ln(1001 / 1) ≈ 6.9.
        let expect = 1001.0_f64.ln();
        assert!(
            (audit.epsilon_hat_smoothed - expect).abs() < 1e-9,
            "{} vs {expect}",
            audit.epsilon_hat_smoothed
        );
    }

    #[test]
    fn smoothed_bound_tracks_the_ratio_on_overlapping_support() {
        // When both sides are frequent, smoothing barely moves the estimate:
        // the smoothed value stays within ~2% of the raw log-ratio and never
        // exceeds max over events of the smoothed ratio by construction.
        let mut rng = rng_from_seed(2024);
        let d: Vec<f64> = vec![3.0, 2.0, 1.0];
        let dprime: Vec<f64> = vec![2.0, 3.0, 2.0];
        let audit = empirical_epsilon(noisy_argmax, &d, &dprime, 60_000, 300, &mut rng);
        assert!(audit.epsilon_hat.is_finite());
        assert!(
            (audit.epsilon_hat_smoothed - audit.epsilon_hat).abs()
                < 0.05 * audit.epsilon_hat.max(1.0),
            "smoothed {} strayed from raw {}",
            audit.epsilon_hat_smoothed,
            audit.epsilon_hat
        );
    }

    #[test]
    fn disjoint_support_yields_infinite_epsilon() {
        // A "mechanism" that copies its input exactly: supports never overlap.
        let mut rng = rng_from_seed(2);
        let audit = empirical_epsilon(
            |answers: &[f64], _: &mut StdRng| answers[0] as i64,
            &[0.0],
            &[1.0],
            1_000,
            100,
            &mut rng,
        );
        assert!(audit.epsilon_hat.is_infinite());
        assert!(audit.witness.contains("one-sided"), "{}", audit.witness);
    }
}
