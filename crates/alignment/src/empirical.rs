//! Black-box empirical privacy-loss estimation.
//!
//! For mechanisms with a small discrete output space, the differential
//! privacy inequality `P(M(D) = ω) ≤ e^ε · P(M(D') = ω)` can be audited by
//! Monte-Carlo: estimate both output histograms and take the largest
//! log-ratio over outputs that occur often enough for the ratio to be
//! statistically meaningful. An estimate `ε̂` well above the claimed `ε`
//! (beyond sampling noise) witnesses a privacy bug; `ε̂ ≤ ε` on all tested
//! pairs is (only) supporting evidence, which is exactly the role empirical
//! audits play next to the alignment checker.

use rand::rngs::StdRng;
use std::collections::HashMap;
use std::hash::Hash;

/// Result of an empirical privacy audit on one `(D, D')` pair.
#[derive(Debug, Clone)]
pub struct EmpiricalEpsilon {
    /// Largest observed `|ln(p̂_D(ω) / p̂_D'(ω))|` over qualifying outputs.
    ///
    /// `f64::INFINITY` when some output occurred at least `min_count` times
    /// under one input and **never** under the other — statistically
    /// overwhelming evidence of an unbounded privacy loss (a pure-DP
    /// mechanism assigns every output positive probability under both).
    pub epsilon_hat: f64,
    /// The output achieving it (its `Debug` rendering).
    pub witness: String,
    /// Number of distinct outputs observed across both runs.
    pub distinct_outputs: usize,
    /// Trials per database.
    pub trials: usize,
}

/// Estimates the empirical privacy loss of `mechanism` between two inputs.
///
/// `mechanism` is called `trials` times per input with the provided RNG; its
/// output must be hashable (discretize continuous outputs first — e.g. round
/// gaps to a coarse grid — otherwise every output is unique and no ratio is
/// estimable). Outputs seen fewer than `min_count` times in *either*
/// histogram are skipped: rare-event ratios are pure noise.
pub fn empirical_epsilon<K, F>(
    mut mechanism: F,
    input_a: &[f64],
    input_b: &[f64],
    trials: usize,
    min_count: usize,
    rng: &mut StdRng,
) -> EmpiricalEpsilon
where
    K: Eq + Hash + std::fmt::Debug,
    F: FnMut(&[f64], &mut StdRng) -> K,
{
    assert!(trials > 0, "need at least one trial");
    assert!(min_count > 0, "min_count must be positive");

    let mut hist_a: HashMap<K, usize> = HashMap::new();
    for _ in 0..trials {
        *hist_a.entry(mechanism(input_a, rng)).or_insert(0) += 1;
    }
    let mut hist_b: HashMap<K, usize> = HashMap::new();
    for _ in 0..trials {
        *hist_b.entry(mechanism(input_b, rng)).or_insert(0) += 1;
    }

    let mut keys: Vec<&K> = hist_a.keys().collect();
    for k in hist_b.keys() {
        if !hist_a.contains_key(k) {
            keys.push(k);
        }
    }
    let distinct_outputs = keys.len();

    let mut epsilon_hat: f64 = 0.0;
    let mut witness = String::from("<none qualified>");
    for k in keys {
        let ca = hist_a.get(k).copied().unwrap_or(0);
        let cb = hist_b.get(k).copied().unwrap_or(0);
        // Disjoint support: frequent on one side, never on the other. Under
        // pure ε-DP this has probability ≲ trials·e^{-ε·min_count}; treat as
        // an unbounded-loss witness rather than skipping it.
        if (ca >= min_count && cb == 0) || (cb >= min_count && ca == 0) {
            epsilon_hat = f64::INFINITY;
            witness = format!("{k:?} (one-sided: {ca} vs {cb})");
            break;
        }
        if ca < min_count || cb < min_count {
            continue;
        }
        let ratio = ((ca as f64) / (cb as f64)).ln().abs();
        if ratio > epsilon_hat {
            epsilon_hat = ratio;
            witness = format!("{k:?}");
        }
    }

    EmpiricalEpsilon {
        epsilon_hat,
        witness,
        distinct_outputs,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::{ContinuousDistribution, Laplace};

    /// Index-only noisy max over 3 queries — a tiny output space {0, 1, 2}.
    fn noisy_argmax(answers: &[f64], rng: &mut StdRng) -> usize {
        let lap = Laplace::new(2.0 / 1.0).unwrap(); // eps = 1, scale 2/eps
        let mut best = 0;
        let mut best_val = f64::NEG_INFINITY;
        for (i, &a) in answers.iter().enumerate() {
            let v = a + lap.sample(rng);
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best
    }

    #[test]
    fn noisy_max_epsilon_hat_below_budget() {
        let mut rng = rng_from_seed(2024);
        let d: Vec<f64> = vec![3.0, 2.0, 1.0];
        let dprime: Vec<f64> = vec![2.0, 3.0, 2.0]; // each query moved by <= 1
        let audit = empirical_epsilon(noisy_argmax, &d, &dprime, 60_000, 300, &mut rng);
        // Budget is ε = 1; allow generous sampling slack.
        assert!(
            audit.epsilon_hat < 1.15,
            "ε̂ = {} via {}",
            audit.epsilon_hat,
            audit.witness
        );
        assert_eq!(audit.distinct_outputs, 3);
    }

    #[test]
    fn detects_a_blatantly_non_private_mechanism() {
        // Deterministic argmax: infinite true ε; the estimate must blow past 1.
        fn argmax(answers: &[f64], _rng: &mut StdRng) -> usize {
            answers
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        }
        let mut rng = rng_from_seed(5);
        // Both inputs must produce *some* overlap to qualify; use randomized
        // tie via different orderings. Deterministic outputs never overlap,
        // so qualifying outputs vanish and ε̂ stays 0 — that's the documented
        // limitation; test the near-deterministic variant instead.
        fn leaky(answers: &[f64], rng: &mut StdRng) -> usize {
            let lap = Laplace::new(0.05).unwrap(); // way too little noise
            let mut best = 0;
            let mut best_val = f64::NEG_INFINITY;
            for (i, &a) in answers.iter().enumerate() {
                let v = a + lap.sample(rng);
                if v > best_val {
                    best_val = v;
                    best = i;
                }
            }
            best
        }
        let _ = argmax(&[1.0, 0.0], &mut rng); // exercise the helper
                                               // Gap 0.15 against Lap(0.05) noise keeps both outputs frequent enough
                                               // to qualify while the true log-ratio is ln(0.938/0.062) ≈ 2.7.
        let d = vec![0.15, 0.0];
        let dprime = vec![0.0, 0.15];
        let audit = empirical_epsilon(leaky, &d, &dprime, 40_000, 50, &mut rng);
        assert!(audit.epsilon_hat > 2.0, "ε̂ = {}", audit.epsilon_hat);
    }

    #[test]
    fn rare_outputs_are_skipped() {
        // An output that appears once in A and never in B must not produce
        // an infinite ratio.
        let mut rng = rng_from_seed(1);
        let audit = empirical_epsilon(
            |answers: &[f64], rng: &mut StdRng| {
                (answers[0] + Laplace::new(1.0).unwrap().sample(rng)).round() as i64
            },
            &[0.0],
            &[1.0],
            5_000,
            25,
            &mut rng,
        );
        assert!(audit.epsilon_hat.is_finite());
        assert!(audit.epsilon_hat > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn rejects_zero_trials() {
        let mut rng = rng_from_seed(1);
        empirical_epsilon(|_: &[f64], _: &mut StdRng| 0u8, &[], &[], 0, 1, &mut rng);
    }

    #[test]
    fn disjoint_support_yields_infinite_epsilon() {
        // A "mechanism" that copies its input exactly: supports never overlap.
        let mut rng = rng_from_seed(2);
        let audit = empirical_epsilon(
            |answers: &[f64], _: &mut StdRng| answers[0] as i64,
            &[0.0],
            &[1.0],
            1_000,
            100,
            &mut rng,
        );
        assert!(audit.epsilon_hat.is_infinite());
        assert!(audit.witness.contains("one-sided"), "{}", audit.witness);
    }
}
