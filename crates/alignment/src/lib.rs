//! # free-gap-alignment
//!
//! An executable randomness-alignment framework, mechanizing §4 and §8 of
//! Ding et al., *Free Gap Information from the Differentially Private Sparse
//! Vector and Noisy Max Mechanisms* (VLDB 2019).
//!
//! The paper proves its mechanisms private with *local alignments*
//! (Definition 4): for every pair of adjacent inputs `D ~ D'` and output `ω`,
//! a map `φ_{D,D',ω}` from noise vectors `H` to noise vectors `H'` such that
//! `M(D, H) = ω  ⇒  M(D', H') = ω`, with bounded *cost*
//! `Σᵢ |ηᵢ - η'ᵢ| / αᵢ ≤ ε` (Definition 6) and acyclicity (Definition 5).
//! Lemma 1 then yields ε-differential privacy.
//!
//! This crate turns those proof obligations into machine-checkable artifacts:
//!
//! * [`tape::NoiseTape`] — a recorded sequence of `(value, scale)` noise
//!   draws, the concrete prefix of the paper's `H`.
//! * [`source::NoiseSource`] — the sampling interface mechanisms draw
//!   through. A [`source::RecordingSource`] samples fresh noise and records
//!   it; a [`source::ReplaySource`] replays a (possibly aligned) tape and
//!   verifies that scales match draw-for-draw — catching mechanisms whose
//!   draw *structure* depends on data in unaligned ways.
//! * [`mechanism::AlignedMechanism`] — a mechanism plus its local-alignment
//!   constructor `φ`.
//! * [`checker`] — runs `M(D, H)`, builds `H' = φ(H)`, runs `M(D', H')`, and
//!   checks (i) output equality and (ii) `cost(φ) ≤ ε` on that concrete
//!   execution. Running this over many random `(D, D', H)` triples is a
//!   statistical audit of the paper's Lemma 2 / Lemma 4 proofs.
//! * [`adjacency`] — generators for adjacent query-answer vectors (general
//!   sensitivity-1 and monotone, per Definition 7).
//! * [`empirical`] — a black-box `ε̂` estimator over discretized output
//!   histograms, the classic sanity check for small output spaces.
//!
//! The checker validates *necessary* conditions on sampled executions; the
//! paper's theorems remain the proof. What the checker adds is exactly what
//! the paper's §1 credits program verification with: catching the subtle
//! bugs (wrong branch budgets, reused noise, missing `+1` threshold shifts)
//! that hand-written alignment arguments historically got wrong.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod binomial;
pub mod checker;
pub mod empirical;
pub mod mechanism;
pub mod source;
pub mod tape;

pub use adjacency::{AdjacencyModel, Perturbation};
pub use binomial::{clopper_pearson, epsilon_lower_bound};
pub use checker::{check_alignment, AlignmentError, AlignmentReport};
pub use mechanism::AlignedMechanism;
pub use source::{NoiseSource, RecordingSource, ReplaySource, SamplingSource};
pub use tape::{Draw, NoiseTape};
