//! The [`AlignedMechanism`] trait: a randomized mechanism packaged with its
//! local-alignment constructor.

use crate::source::NoiseSource;
use crate::tape::NoiseTape;
use std::fmt::Debug;

/// A randomized mechanism together with the local alignment `φ_{D,D',ω}`
/// from its privacy proof (paper Definition 4).
///
/// Implementors provide:
///
/// * [`run`](Self::run) — the mechanism itself, drawing noise only through
///   the given [`NoiseSource`] (this is what makes record/replay possible);
/// * [`align`](Self::align) — given the input `D`, a neighbor `D'`, the
///   recorded noise `H` and the produced output `ω`, the aligned noise
///   `H' = φ_{D,D',ω}(H)` under which `M(D', H')` must reproduce `ω`;
/// * [`epsilon`](Self::epsilon) — the privacy budget the alignment cost must
///   not exceed (Definition 6 / Lemma 1 condition (iv)).
pub trait AlignedMechanism {
    /// Input type (typically a query-answer vector).
    type Input: ?Sized;
    /// Output type; equality of outputs is the alignment's correctness
    /// criterion, so it must be comparable and printable.
    type Output: PartialEq + Debug;

    /// Executes the mechanism on `input`, drawing noise from `source`.
    fn run(&self, input: &Self::Input, source: &mut dyn NoiseSource) -> Self::Output;

    /// Builds the aligned tape `H' = φ_{D,D',ω}(H)`.
    ///
    /// `input` is `D` (the run that produced `tape` and `output`),
    /// `neighbor` is `D'`.
    fn align(
        &self,
        input: &Self::Input,
        neighbor: &Self::Input,
        tape: &NoiseTape,
        output: &Self::Output,
    ) -> NoiseTape;

    /// The privacy budget `ε` that bounds the alignment cost.
    fn epsilon(&self) -> f64;

    /// Whether two outputs count as "the same ω".
    ///
    /// Defaults to exact equality, which is right for discrete outputs
    /// (indices, branch tags). Mechanisms whose outputs contain real numbers
    /// (gaps!) must override with a tolerance: the alignment reproduces the
    /// gap algebraically, but floating-point re-association across the two
    /// executions perturbs the last few ulps.
    fn outputs_match(&self, a: &Self::Output, b: &Self::Output) -> bool {
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_alignment;
    use free_gap_noise::rng::rng_from_seed;

    /// The paper's Example 2: output ⊤ iff `q(D) + η₁ >= threshold`, with
    /// alignment η'₁ = η₁ ± sensitivity depending on the branch.
    struct ThresholdMechanism {
        threshold: f64,
        sensitivity: f64,
        epsilon: f64,
    }

    impl AlignedMechanism for ThresholdMechanism {
        type Input = f64;
        type Output = bool;

        fn run(&self, input: &f64, source: &mut dyn NoiseSource) -> bool {
            let scale = self.sensitivity / self.epsilon;
            input + source.laplace(scale) >= self.threshold
        }

        fn align(
            &self,
            _input: &f64,
            _neighbor: &f64,
            tape: &NoiseTape,
            output: &bool,
        ) -> NoiseTape {
            // Example 2's piecewise alignment: push the noise up for ⊤ runs,
            // down for ⊥ runs, by the full sensitivity.
            let delta = if *output {
                self.sensitivity
            } else {
                -self.sensitivity
            };
            tape.aligned_by(|_, _| delta)
        }

        fn epsilon(&self) -> f64 {
            self.epsilon
        }
    }

    #[test]
    fn example2_alignment_checks_out() {
        let mech = ThresholdMechanism {
            threshold: 10_000.0,
            sensitivity: 100.0,
            epsilon: 0.5,
        };
        let mut rng = rng_from_seed(17);
        for trial in 0..200 {
            let d = 9_900.0 + (trial as f64);
            // any |d - d'| <= 100 neighbor
            let dprime = d - 100.0;
            let report = check_alignment(&mech, &d, &dprime, &mut rng).unwrap();
            assert!(report.cost <= mech.epsilon() + 1e-9, "cost {}", report.cost);
        }
    }

    #[test]
    fn example2_wrong_alignment_is_caught() {
        /// Deliberately broken alignment (shifts the wrong way for ⊥).
        struct Broken(ThresholdMechanism);
        impl AlignedMechanism for Broken {
            type Input = f64;
            type Output = bool;
            fn run(&self, input: &f64, source: &mut dyn NoiseSource) -> bool {
                self.0.run(input, source)
            }
            fn align(&self, _: &f64, _: &f64, tape: &NoiseTape, _: &bool) -> NoiseTape {
                tape.aligned_by(|_, _| 0.0) // identity: cannot preserve the output
            }
            fn epsilon(&self) -> f64 {
                self.0.epsilon()
            }
        }

        let mech = Broken(ThresholdMechanism {
            threshold: 10_000.0,
            sensitivity: 100.0,
            epsilon: 0.5,
        });
        let mut rng = rng_from_seed(3);
        let mut failures = 0;
        for _ in 0..400 {
            // Sit right at the threshold so the identity alignment flips
            // outputs with noticeable probability.
            let d = 10_000.0;
            let dprime = 9_900.0;
            if check_alignment(&mech, &d, &dprime, &mut rng).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "broken alignment was never caught");
    }
}
