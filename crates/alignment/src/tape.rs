//! Recorded noise tapes: the concrete, finite prefix of the paper's `H`.

use std::fmt;

/// Which distribution family a draw came from.
///
/// Definition 6's cost `Σ|ηᵢ - η'ᵢ|/αᵢ` applies verbatim to both families
/// (the discrete Laplace's log-pmf ratio is bounded by `|x - y|/α` for
/// support-aligned `x, y`), but an alignment is only sound if the aligned
/// draw stays in the *same* family — replay verifies this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DrawKind {
    /// Continuous zero-mean Laplace.
    Laplace,
    /// Discrete Laplace over multiples of `gamma`; alignment shifts must be
    /// multiples of `gamma` to stay on the support.
    DiscreteLaplace {
        /// The support step `γ`.
        gamma: f64,
    },
    /// Standard-shape Gumbel (location 0). Gumbel's log-density ratio is
    /// *not* bounded by `|x - y|/β` (the `e^{-x/β}` double-exponential term
    /// blows up leftward), so Definition-6 cost accounting does not apply;
    /// the kind exists so replay can verify family fidelity for the
    /// exponential-mechanism baseline, whose privacy argument is the
    /// classical McSherry–Talwar one.
    Gumbel,
    /// One-sided exponential. Same caveat as [`DrawKind::Gumbel`]: the
    /// support is bounded below, so draw-for-draw alignment accounting does
    /// not apply.
    Exponential,
    /// Staircase (Geng–Viswanath). Piecewise-constant density: the
    /// log-density ratio is not bounded pointwise by `|x - y|/α` (see
    /// `free_gap_core::staircase_mech`), so this kind also carries no
    /// Definition-6 accounting — replay verifies family and parameters only.
    Staircase {
        /// The stair width `Δ` (sensitivity).
        sensitivity: f64,
        /// The stair-split parameter `γ`.
        gamma: f64,
    },
}

/// One recorded noise draw: the sampled value, the scale `αᵢ` it was drawn
/// with (the divisor in the Definition-6 alignment cost), and its family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Draw {
    /// The sampled noise value `ηᵢ`.
    pub value: f64,
    /// The scale `αᵢ` of the distribution it was drawn from (for discrete
    /// Laplace, the reciprocal of the per-unit privacy rate).
    pub scale: f64,
    /// The distribution family.
    pub kind: DrawKind,
}

/// A finite sequence of noise draws, in program order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseTape {
    draws: Vec<Draw>,
}

impl NoiseTape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tape from raw draws.
    pub fn from_draws(draws: Vec<Draw>) -> Self {
        Self { draws }
    }

    /// Appends a continuous Laplace draw.
    pub fn push(&mut self, value: f64, scale: f64) {
        self.draws.push(Draw {
            value,
            scale,
            kind: DrawKind::Laplace,
        });
    }

    /// Appends a draw with an explicit family.
    pub fn push_kind(&mut self, value: f64, scale: f64, kind: DrawKind) {
        self.draws.push(Draw { value, scale, kind });
    }

    /// Number of draws.
    pub fn len(&self) -> usize {
        self.draws.len()
    }

    /// True when no draws were recorded.
    pub fn is_empty(&self) -> bool {
        self.draws.is_empty()
    }

    /// The recorded draws.
    pub fn draws(&self) -> &[Draw] {
        &self.draws
    }

    /// The draw at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn draw(&self, i: usize) -> Draw {
        self.draws[i]
    }

    /// The value at position `i` (convenience for alignment constructors).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn value(&self, i: usize) -> f64 {
        self.draws[i].value
    }

    /// Produces an aligned copy of this tape by adding `shift(i, draw)` to
    /// each value (scales and kinds are preserved — alignments move noise,
    /// they never change the distribution it was drawn from).
    ///
    /// # Panics
    /// Panics (debug builds) if a discrete draw is shifted by a non-multiple
    /// of its support step: such a tape has zero probability and the cost
    /// bound would be vacuous.
    pub fn aligned_by<F: FnMut(usize, Draw) -> f64>(&self, mut shift: F) -> NoiseTape {
        NoiseTape {
            draws: self
                .draws
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let s = shift(i, d);
                    if let DrawKind::DiscreteLaplace { gamma } = d.kind {
                        let steps = s / gamma;
                        debug_assert!(
                            (steps - steps.round()).abs() < 1e-9,
                            "draw {i}: shift {s} is not a multiple of γ = {gamma}"
                        );
                    }
                    Draw {
                        value: d.value + s,
                        scale: d.scale,
                        kind: d.kind,
                    }
                })
                .collect(),
        }
    }

    /// Definition 6 alignment cost between this tape (`H`) and an aligned
    /// tape (`H'`): `Σᵢ |ηᵢ - η'ᵢ| / αᵢ`.
    ///
    /// # Panics
    /// Panics if the tapes have different lengths or mismatched scales —
    /// both indicate an alignment that changed the draw structure, which
    /// Definition 6 does not permit.
    pub fn alignment_cost(&self, aligned: &NoiseTape) -> f64 {
        assert_eq!(
            self.len(),
            aligned.len(),
            "aligned tape must have the same number of draws"
        );
        self.draws
            .iter()
            .zip(aligned.draws())
            .enumerate()
            .map(|(i, (a, b))| {
                assert!(
                    (a.scale - b.scale).abs() <= 1e-12 * a.scale.max(b.scale).max(1.0),
                    "draw {i}: scale changed {} -> {}",
                    a.scale,
                    b.scale
                );
                assert!(
                    a.kind == b.kind,
                    "draw {i}: kind changed {:?} -> {:?}",
                    a.kind,
                    b.kind
                );
                (a.value - b.value).abs() / a.scale
            })
            .sum()
    }
}

impl fmt::Display for NoiseTape {
    /// Prints `value@scale` pairs, e.g. `[1.0000@2.000, -0.5000@4.000]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.draws.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{:.4}@{:.3}", d.value, d.scale)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tape() -> NoiseTape {
        let mut t = NoiseTape::new();
        t.push(1.0, 2.0);
        t.push(-0.5, 4.0);
        t
    }

    #[test]
    fn push_and_access() {
        let t = tape();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.value(0), 1.0);
        assert_eq!(
            t.draw(1),
            Draw {
                value: -0.5,
                scale: 4.0,
                kind: DrawKind::Laplace
            }
        );
    }

    #[test]
    fn discrete_draws_round_trip_and_validate_shifts() {
        let mut t = NoiseTape::new();
        t.push_kind(3.0, 2.0, DrawKind::DiscreteLaplace { gamma: 0.5 });
        let a = t.aligned_by(|_, _| 1.5); // 3 steps of γ: fine
        assert_eq!(a.value(0), 4.5);
        assert_eq!(a.draw(0).kind, DrawKind::DiscreteLaplace { gamma: 0.5 });
        assert!((t.alignment_cost(&a) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a multiple")]
    fn discrete_shift_off_support_is_rejected() {
        let mut t = NoiseTape::new();
        t.push_kind(3.0, 2.0, DrawKind::DiscreteLaplace { gamma: 0.5 });
        let _ = t.aligned_by(|_, _| 0.3);
    }

    #[test]
    fn aligned_by_shifts_values_keeps_scales() {
        let t = tape();
        let a = t.aligned_by(|i, _| if i == 0 { 2.0 } else { 0.0 });
        assert_eq!(a.value(0), 3.0);
        assert_eq!(a.value(1), -0.5);
        assert_eq!(a.draw(0).scale, 2.0);
    }

    #[test]
    fn cost_matches_definition6() {
        let t = tape();
        let a = t.aligned_by(|i, _| if i == 0 { 2.0 } else { -1.0 });
        // |2|/2 + |-1|/4 = 1.25
        assert!((t.alignment_cost(&a) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn zero_shift_zero_cost() {
        let t = tape();
        assert_eq!(t.alignment_cost(&t.clone()), 0.0);
    }

    #[test]
    #[should_panic(expected = "same number of draws")]
    fn cost_rejects_length_mismatch() {
        let t = tape();
        t.alignment_cost(&NoiseTape::new());
    }

    #[test]
    #[should_panic(expected = "scale changed")]
    fn cost_rejects_scale_mismatch() {
        let t = tape();
        let mut other = NoiseTape::new();
        other.push(1.0, 2.0);
        other.push(-0.5, 5.0);
        t.alignment_cost(&other);
    }

    #[test]
    fn display_compact() {
        assert_eq!(format!("{}", tape()), "[1.0000@2.000, -0.5000@4.000]");
    }
}
