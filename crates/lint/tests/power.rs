//! Power checks for the lint itself, in the same corrupted-reference
//! discipline as the chi-square and attack layers: each rule must flag the
//! historical bug it was written for (reproduced verbatim in `fixtures/`),
//! must stay silent on the shipped fix, and must pass the real tree clean.
//! A rule that stops firing on its fixture — or starts firing on the fix —
//! fails here before it can rot in CI.

use free_gap_lint::{
    fixtures_dir, lint_fixture, lint_tree, lint_tree_report, power_check, report_json, taxonomy,
    AllowState, Diagnostic, Rule, TreeLayout, FIXTURES,
};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn every_bad_fixture_is_flagged_by_its_rule() {
    for fixture in FIXTURES.iter().filter(|f| f.expect_flagged) {
        let diags = lint_fixture(fixture).expect("fixture lints");
        assert!(
            !diags.is_empty(),
            "{} must be flagged by {} — the rule lost its power against the \
             historical bug it encodes",
            fixture.path,
            fixture.rule
        );
        assert!(
            diags.iter().all(|d| d.rule == fixture.rule),
            "{}: unexpected rules in {diags:?}",
            fixture.path
        );
    }
}

#[test]
fn every_fixed_fixture_lints_clean() {
    for fixture in FIXTURES.iter().filter(|f| !f.expect_flagged) {
        let diags = lint_fixture(fixture).expect("fixture lints");
        assert!(
            diags.is_empty(),
            "{} must lint clean under {} but got:\n{}",
            fixture.path,
            fixture.rule,
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn power_check_api_agrees_with_fixture_expectations() {
    let rows = power_check().expect("power check runs");
    assert_eq!(rows.len(), FIXTURES.len());
    for row in rows {
        assert!(
            row.ok,
            "power row failed for {} (expect_flagged={}): {:?}",
            row.fixture.path, row.fixture.expect_flagged, row.diagnostics
        );
    }
}

#[test]
fn bad_fixtures_are_verbatim_reproductions() {
    // The stream-discipline fixture must carry the exact PR-4 line (a raw
    // `sample_value(self.rng)` inside the ScratchDraws provider) and the
    // panic-freedom fixture the exact PR-5 sort. If someone "cleans up" the
    // fixtures, the power check would silently test a strawman.
    let sd = std::fs::read_to_string(fixtures_dir().join("stream_discipline_bad.rs")).unwrap();
    assert!(sd.contains(".sample_value(self.rng)"));
    assert!(sd.contains("DiscreteLaplace::new(unit_epsilon, gamma)"));
    let pf = std::fs::read_to_string(fixtures_dir().join("panic_freedom_bad.rs")).unwrap();
    assert!(pf.contains("b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1))"));
    let eg = std::fs::read_to_string(fixtures_dir().join("endpoint_guard_bad.rs")).unwrap();
    assert!(eg.contains("(1.0 - 2.0 * u.abs()).ln()"));
    // Dataflow-tier fixtures: the load-bearing bad lines, verbatim.
    let read = |p: &str| std::fs::read_to_string(fixtures_dir().join(p)).unwrap();
    assert!(read("budget_debit_bad.rs").contains("let _ = tenant.ledger.try_debit(cost);"));
    assert!(read("budget_refund_bad.rs")
        .contains("Err(e) => MechanismResponse::Rejected(RejectReason::Invalid(e)),"));
    let dr = read("budget_double_release_bad.rs");
    assert_eq!(dr.matches(".release(session.cost)").count(), 2);
    assert!(read("lock_order_bad.rs").contains("for t in map.values()"));
    assert!(read("lock_poison_bad.rs").contains("self.inner.lock().unwrap()"));
    assert!(read("par_capture_bad.rs").contains("filled += 1;"));
    assert!(read("par_entropy_bad.rs").contains("let mut rng = thread_rng();"));
    let ft = read("float_totality_bad.rs");
    assert!(ft.contains("b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1))"));
    assert!(ft.contains("fold(f64::NEG_INFINITY, f64::max)"));
    assert!(ft.contains("if a < b { Ordering::Less } else { Ordering::Greater }"));
}

#[test]
fn dataflow_tier_has_a_bad_and_fixed_pair_per_shape() {
    // The R5–R8 tier ships 8 bad/fixed pairs (16 fixtures): three R5
    // shapes (debit-without-reject, reject-without-release, double
    // release), two R6 (lock order, poison handling), two R7 (captured
    // accumulator, entropy source), one R8 (partial comparisons).
    let tier: Vec<_> = FIXTURES
        .iter()
        .filter(|f| {
            matches!(
                f.rule,
                Rule::BudgetBalance | Rule::LockDiscipline | Rule::ParPurity | Rule::FloatTotality
            )
        })
        .collect();
    assert_eq!(tier.len(), 16);
    assert_eq!(tier.iter().filter(|f| f.expect_flagged).count(), 8);
    assert_eq!(
        tier.iter()
            .filter(|f| f.rule == Rule::BudgetBalance)
            .count(),
        6
    );
    assert_eq!(
        tier.iter()
            .filter(|f| f.rule == Rule::LockDiscipline)
            .count(),
        4
    );
    assert_eq!(tier.iter().filter(|f| f.rule == Rule::ParPurity).count(), 4);
    assert_eq!(
        tier.iter()
            .filter(|f| f.rule == Rule::FloatTotality)
            .count(),
        2
    );
}

#[test]
fn json_report_schema_is_stable_and_escaped() {
    let diags = vec![
        Diagnostic {
            file: PathBuf::from("crates/serve/src/server.rs"),
            line: 7,
            rule: Rule::LockDiscipline,
            message: "guard `map` crosses `.lock()` — \"ordering\"\thazard".into(),
            allow: AllowState::Line,
        },
        Diagnostic {
            file: PathBuf::from("crates/core/src/api.rs"),
            line: 3,
            rule: Rule::BudgetBalance,
            message: "debit without reject".into(),
            allow: AllowState::None,
        },
    ];
    let json = report_json(&[Rule::BudgetBalance, Rule::LockDiscipline], &diags);
    assert!(json.contains("\"schema\": \"free-gap-lint/1\""));
    assert!(json.contains("\"rules\": [\"budget-balance\", \"lock-discipline\"]"));
    assert!(json.contains("\"active\": 1"));
    assert!(json.contains("\"allowed\": 1"));
    assert!(json.contains("\"allow\": \"line\""));
    assert!(json.contains("\"allow\": \"none\""));
    // Quotes and tabs in messages must arrive escaped, never raw.
    assert!(json.contains("\\\"ordering\\\"\\thazard"));
    // Input order is preserved verbatim (lint_tree_report pre-sorts).
    let first = json.find("lock-discipline").unwrap();
    let second = json.find("budget-balance").unwrap();
    assert!(second > first || json.find("\"rules\"").unwrap() < first);
    // Empty finding set still carries the full envelope.
    let empty = report_json(&Rule::ALL, &[]);
    assert!(empty.contains("\"active\": 0"));
    assert!(empty.contains("\"findings\": []"));
}

#[test]
fn json_report_of_the_real_tree_is_byte_stable() {
    let layout = TreeLayout::at(&repo_root());
    layout.validate().expect("repo layout");
    let a = lint_tree_report(&layout, &Rule::ALL).expect("first pass");
    let b = lint_tree_report(&layout, &Rule::ALL).expect("second pass");
    let ja = report_json(&Rule::ALL, &a);
    let jb = report_json(&Rule::ALL, &b);
    assert_eq!(ja, jb, "two identical runs must serialize identically");
    // The report keeps the allow-suppressed findings (that is its point:
    // the allow inventory stays machine-readable) while lint_tree drops
    // them; on today's tree everything active is fixed, so the two differ
    // exactly by the suppressed set.
    assert!(a.iter().any(|d| d.allow != AllowState::None));
    assert!(a
        .windows(2)
        .all(|w| (&w[0].file, w[0].line) <= (&w[1].file, w[1].line)));
}

#[test]
fn real_tree_lints_clean_under_all_rules() {
    let layout = TreeLayout::at(&repo_root());
    layout.validate().expect("repo layout");
    let diags = lint_tree(&layout, &Rule::ALL).expect("tree lints");
    assert!(
        diags.is_empty(),
        "the real tree must be finding-free (fix or lint:allow each):\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn taxonomy_inventory_pins_todays_mechanism_list() {
    // Exhaustiveness seed: the exact set of benched mechanisms today. Adding
    // a mechanism to MECHANISM_PATHS updates this list — and R4 then forces
    // the scratch_equivalence entry and the `_into` twin to exist before the
    // tree lints clean again. Removing one must also be deliberate.
    let layout = TreeLayout::at(&repo_root());
    let inv = taxonomy::inventory(&layout.core_src, &layout.equivalence, &layout.perf)
        .expect("inventory");
    assert_eq!(
        inv.grid_mechanisms(),
        [
            "AdaptiveSparseVector",
            "ClassicNoisyTopK",
            "ClassicSparseVector",
            "DiscreteNoisyTopKWithGap",
            "DiscreteSparseVectorWithGap",
            "ExponentialMechanism",
            "MultiBranchAdaptiveSparseVector",
            "NoisyTopKWithGap",
            "SparseVectorWithGap",
            "StaircaseMechanism",
        ],
        "MECHANISM_PATHS changed: update this seed AND make sure the \
         scratch_equivalence + _into taxonomy is complete for the new set"
    );
    // Every benched mechanism's type must be in the scratch-fn inventory.
    let types = inv.mechanism_types();
    for m in inv.grid_mechanisms() {
        assert!(
            types.contains(&m),
            "grid mechanism {m} has no *_with_scratch entry point"
        );
    }
}
