//! Power checks for the lint itself, in the same corrupted-reference
//! discipline as the chi-square and attack layers: each rule must flag the
//! historical bug it was written for (reproduced verbatim in `fixtures/`),
//! must stay silent on the shipped fix, and must pass the real tree clean.
//! A rule that stops firing on its fixture — or starts firing on the fix —
//! fails here before it can rot in CI.

use free_gap_lint::{
    fixtures_dir, lint_fixture, lint_tree, power_check, taxonomy, Rule, TreeLayout, FIXTURES,
};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn every_bad_fixture_is_flagged_by_its_rule() {
    for fixture in FIXTURES.iter().filter(|f| f.expect_flagged) {
        let diags = lint_fixture(fixture).expect("fixture lints");
        assert!(
            !diags.is_empty(),
            "{} must be flagged by {} — the rule lost its power against the \
             historical bug it encodes",
            fixture.path,
            fixture.rule
        );
        assert!(
            diags.iter().all(|d| d.rule == fixture.rule),
            "{}: unexpected rules in {diags:?}",
            fixture.path
        );
    }
}

#[test]
fn every_fixed_fixture_lints_clean() {
    for fixture in FIXTURES.iter().filter(|f| !f.expect_flagged) {
        let diags = lint_fixture(fixture).expect("fixture lints");
        assert!(
            diags.is_empty(),
            "{} must lint clean under {} but got:\n{}",
            fixture.path,
            fixture.rule,
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn power_check_api_agrees_with_fixture_expectations() {
    let rows = power_check().expect("power check runs");
    assert_eq!(rows.len(), FIXTURES.len());
    for row in rows {
        assert!(
            row.ok,
            "power row failed for {} (expect_flagged={}): {:?}",
            row.fixture.path, row.fixture.expect_flagged, row.diagnostics
        );
    }
}

#[test]
fn bad_fixtures_are_verbatim_reproductions() {
    // The stream-discipline fixture must carry the exact PR-4 line (a raw
    // `sample_value(self.rng)` inside the ScratchDraws provider) and the
    // panic-freedom fixture the exact PR-5 sort. If someone "cleans up" the
    // fixtures, the power check would silently test a strawman.
    let sd = std::fs::read_to_string(fixtures_dir().join("stream_discipline_bad.rs")).unwrap();
    assert!(sd.contains(".sample_value(self.rng)"));
    assert!(sd.contains("DiscreteLaplace::new(unit_epsilon, gamma)"));
    let pf = std::fs::read_to_string(fixtures_dir().join("panic_freedom_bad.rs")).unwrap();
    assert!(pf.contains("b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1))"));
    let eg = std::fs::read_to_string(fixtures_dir().join("endpoint_guard_bad.rs")).unwrap();
    assert!(eg.contains("(1.0 - 2.0 * u.abs()).ln()"));
}

#[test]
fn real_tree_lints_clean_under_all_rules() {
    let layout = TreeLayout::at(&repo_root());
    layout.validate().expect("repo layout");
    let diags = lint_tree(&layout, &Rule::ALL).expect("tree lints");
    assert!(
        diags.is_empty(),
        "the real tree must be finding-free (fix or lint:allow each):\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn taxonomy_inventory_pins_todays_mechanism_list() {
    // Exhaustiveness seed: the exact set of benched mechanisms today. Adding
    // a mechanism to MECHANISM_PATHS updates this list — and R4 then forces
    // the scratch_equivalence entry and the `_into` twin to exist before the
    // tree lints clean again. Removing one must also be deliberate.
    let layout = TreeLayout::at(&repo_root());
    let inv = taxonomy::inventory(&layout.core_src, &layout.equivalence, &layout.perf)
        .expect("inventory");
    assert_eq!(
        inv.grid_mechanisms(),
        [
            "AdaptiveSparseVector",
            "ClassicNoisyTopK",
            "ClassicSparseVector",
            "DiscreteNoisyTopKWithGap",
            "DiscreteSparseVectorWithGap",
            "ExponentialMechanism",
            "MultiBranchAdaptiveSparseVector",
            "NoisyTopKWithGap",
            "SparseVectorWithGap",
            "StaircaseMechanism",
        ],
        "MECHANISM_PATHS changed: update this seed AND make sure the \
         scratch_equivalence + _into taxonomy is complete for the new set"
    );
    // Every benched mechanism's type must be in the scratch-fn inventory.
    let types = inv.mechanism_types();
    for m in inv.grid_mechanisms() {
        assert!(
            types.contains(&m),
            "grid mechanism {m} has no *_with_scratch entry point"
        );
    }
}
