//! R7 power-check fixture — shared accumulator captured by a block-fill
//! closure.
//!
//! The parallel fill's whole contract is that block `b` is a pure
//! function of `(run_seed, b)` — that is what makes `call_par`
//! bit-identical for every thread count. This draft threaded a progress
//! counter through the fill closure: the captured accumulator reintroduces
//! cross-thread ordering, and anything derived from it (logging cadence,
//! adaptive chunking) varies run to run.

fn par_fill_offset_blocks(dist: &Laplace, run_seed: u64, first_block: u64, threads: usize, base: &[f64], out: &mut [f64]) {
    let mut filled = 0u64;
    for_each_block_sharded(threads, base, out, |blk, b, o| {
        let mut rng = derive_fast_stream(run_seed, first_block + blk);
        dist.fill_into_offset(&mut rng, b, o);
        filled += 1;
    });
}
