//! R6 fixed twin of `lock_poison_bad.rs`: poisoning is absorbed — the
//! state behind the mutex is consistent at every unlock, so recovering
//! the guard is always safe and the server keeps serving.

impl Tenant {
    fn lock(&self) -> MutexGuard<'_, TenantInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
