//! R1 power-check fixture — the shipped per-block fill. Must lint clean.
//!
//! Bulk fills reserve the run's next block indices and delegate to the
//! sequential engine, which derives one sub-stream per block index; scalar
//! draws ride the reserved scalar stream through the internal tape. No
//! method in either provider touches a raw generator.

impl DrawProvider for ParallelDraws {
    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        self.inner.fill_offset_engine(base, scale, out, self.threads)
    }

    fn gumbel_next(&mut self, beta: f64) -> f64 {
        self.inner.gumbel_next(beta)
    }
}

impl DrawProvider for BlockSeqDraws {
    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        self.fill_offset_engine(base, scale, out, 1)
    }

    fn next(&mut self, scale: f64) -> f64 {
        self.tape.next_scaled(&mut self.scalar_rng, scale)
    }
}
