//! R5 power-check fixture — debit-without-reject.
//!
//! An early draft of the serving loop debited the tenant ledger and
//! discarded the result: a tenant past its budget still got an answer, and
//! the ledger's accounting silently drifted from the responses actually
//! served. Every `try_debit` must put a typed rejection on its failure
//! path before any noise is drawn.

impl QueryServer {
    fn handle_call(&self, tenant: &Tenant, cost: f64, worker: &mut Worker) -> MechanismResponse {
        let _ = tenant.ledger.try_debit(cost);
        let mut rng = derive_fast_stream(tenant.seed, 1);
        self.run(&mut rng, worker)
    }
}
