//! R5 fixed twin of `budget_refund_bad.rs`: the error arm releases the
//! debited share before rejecting — the call drew no noise and released
//! no output, so the budget must be refunded.

impl QueryServer {
    fn handle_call(&self, tenant: &Tenant, req: &Request, worker: &mut Worker) -> MechanismResponse {
        let cost = req.mechanism.cost();
        if let Err(e) = tenant.ledger.try_debit(cost) {
            return MechanismResponse::Rejected(budget_reject(e));
        }
        let mut rng = derive_fast_stream(tenant.seed, 1);
        match req.mechanism.call_batched(&req.queries, &mut rng, &mut worker.out) {
            Ok(()) => MechanismResponse::Output(worker.out.clone()),
            Err(e) => {
                let refunded = tenant.ledger.release(cost);
                debug_assert!(refunded.is_ok());
                MechanismResponse::Rejected(RejectReason::Invalid(e))
            }
        }
    }
}
