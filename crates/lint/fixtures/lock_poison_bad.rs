//! R6 power-check fixture — lock poisoning propagated as a panic.
//!
//! `.lock().unwrap()` turns one worker's panic into a poison panic on
//! every thread that touches the same tenant afterwards: a single bad
//! request takes the whole server down. The guarded state is only ever
//! mutated through methods that leave it consistent, so the house pattern
//! absorbs poisoning with `unwrap_or_else(PoisonError::into_inner)`.

impl Tenant {
    fn lock(&self) -> MutexGuard<'_, TenantInner> {
        self.inner.lock().unwrap()
    }
}
