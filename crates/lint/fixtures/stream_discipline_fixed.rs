//! R1 power-check fixture — the shipped fix. Must lint clean.
//!
//! Discrete draws are served from the shared raw-uniform tape, and the
//! provider-generic core draws only through `DrawProvider` methods. The
//! draw-exact providers (`RngDraws`, `SourceDraws`) legitimately sample
//! directly — the rule must not fire on them.

impl<R: Rng + ?Sized> DrawProvider for ScratchDraws<'_, R> {
    #[inline]
    fn next(&mut self, scale: f64) -> f64 {
        self.scratch.next_scaled(self.rng, scale)
    }

    #[inline]
    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        // Served from the shared raw-uniform tape: any buffered lookahead
        // is consumed first, so discrete and continuous draws interleave
        // without breaking the stream discipline.
        self.scratch.discrete_next(self.rng, unit_epsilon, gamma)
    }
}

impl<'a, R: Rng + ?Sized> DrawProvider for RngDraws<'a, R> {
    fn next(&mut self, scale: f64) -> f64 {
        // Draw-exact by design: this provider IS the raw stream.
        Laplace::new(scale)
            .expect("mechanism-validated scale")
            .sample(self.rng)
    }

    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        DiscreteLaplace::new(unit_epsilon, gamma)
            .expect("mechanism-validated rate")
            .sample_value(self.rng)
    }
}

/// Provider-generic core drawing exclusively through the provider.
fn run_core<P: DrawProvider>(provider: &mut P, threshold: f64) -> f64 {
    let rho = provider.next(1.0);
    let eta = provider.discrete_next(0.5, 1.0);
    rho + eta + threshold
}

/// Out-of-scope helper: free functions without a provider bound may touch
/// RNGs (this is where RngDraws itself gets built).
fn seed_stream(seed: u64) -> FastRng {
    rng_from_seed(seed)
}
