//! R2 power-check fixture — the shipped convention. Must lint clean.
//!
//! Every `.ln()` whose operand derives from a tape uniform is clamped with
//! `.max(f64::MIN_POSITIVE)`. Pure-math helpers (`quantile`, CDFs) take
//! caller probabilities, not tape uniforms, and are out of scope by the
//! transform-naming convention.

impl SingleUniform for Laplace {
    #[inline]
    fn sample_from_uniform(&self, u: f64) -> f64 {
        let u = u - 0.5;
        let magnitude = -self.scale * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln();
        if u < 0.0 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl Gumbel {
    fn fill_from_uniforms(&self, uniforms: &[f64], out: &mut [f64]) {
        for (slot, &u) in out.iter_mut().zip(uniforms) {
            let e = -(u.max(f64::MIN_POSITIVE).ln());
            *slot = -self.scale * e.max(f64::MIN_POSITIVE).ln();
        }
    }

    /// Out of scope: the argument is a caller-supplied probability with a
    /// validated open-interval domain, not a tape uniform.
    fn quantile(&self, p: f64) -> f64 {
        -self.scale * (-(p.ln())).ln()
    }
}
