//! R7 power-check fixture — OS entropy inside a parallel fill.
//!
//! Seeding each worker from `thread_rng` makes the fill irreproducible:
//! the serve layer's determinism contract (same seed + same request order
//! → bit-identical responses, any worker count) dies the moment one block
//! draws from an entropy source instead of its derived sub-stream.

fn par_fill_jitter(threads: usize, out: &mut [f64]) {
    std::thread::scope(|scope| {
        for chunk in out.chunks_mut(BLOCK_LEN) {
            scope.spawn(move || {
                let mut rng = thread_rng();
                for v in chunk {
                    *v = rng.sample_value();
                }
            });
        }
    });
}
