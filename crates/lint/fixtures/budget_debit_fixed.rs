//! R5 fixed twin of `budget_debit_bad.rs`: the failed debit returns a
//! typed rejection before any randomness is consumed, so the ledger and
//! the response stream cannot diverge.

impl QueryServer {
    fn handle_call(&self, tenant: &Tenant, cost: f64, worker: &mut Worker) -> MechanismResponse {
        if let Err(e) = tenant.ledger.try_debit(cost) {
            return MechanismResponse::Rejected(budget_reject(e));
        }
        let mut rng = derive_fast_stream(tenant.seed, 1);
        self.run(&mut rng, worker)
    }
}
