//! R1 power-check fixture — a per-block parallel fill that bypasses the
//! sub-stream layout.
//!
//! The bulk fill re-seeds a raw generator off the provider's block count
//! and samples it directly, instead of deriving the documented per-block
//! sub-stream and filling through the tape-backed engine. Correct-looking
//! in isolation, it ties every sample to how many blocks earlier fills
//! happened to consume — so outputs differ between thread counts, which is
//! exactly the invariant the per-block layout exists to protect.

impl DrawProvider for ParallelDraws {
    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        out.clear();
        let mut rng = rng_from_seed(self.next_block);
        for b in base {
            out.push(b + scale * rng.gen_range(0.0..1.0));
        }
    }
}
