//! R5 power-check fixture — rejection after a successful debit without a
//! release.
//!
//! The serving loop debits *before* running the mechanism (so a crashed
//! call cannot have served un-paid-for output), which means every error
//! exit after the debit must refund the share: this draft rejected an
//! invalid workload but kept the debit, burning tenant budget on calls
//! that produced no output — a slow denial-of-budget on malformed input.

impl QueryServer {
    fn handle_call(&self, tenant: &Tenant, req: &Request, worker: &mut Worker) -> MechanismResponse {
        let cost = req.mechanism.cost();
        if let Err(e) = tenant.ledger.try_debit(cost) {
            return MechanismResponse::Rejected(budget_reject(e));
        }
        let mut rng = derive_fast_stream(tenant.seed, 1);
        match req.mechanism.call_batched(&req.queries, &mut rng, &mut worker.out) {
            Ok(()) => MechanismResponse::Output(worker.out.clone()),
            Err(e) => MechanismResponse::Rejected(RejectReason::Invalid(e)),
        }
    }
}
