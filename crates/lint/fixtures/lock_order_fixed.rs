//! R6 fixed twin of `lock_order_bad.rs`: snapshot the tenant handles and
//! drop the map guard before touching any per-tenant lock — at most one
//! lock is ever held, so no ordering can deadlock.

impl QueryServer {
    fn evicted_total(&self) -> u64 {
        let map = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        let tenants: Vec<Arc<Tenant>> = map.values().map(Arc::clone).collect();
        drop(map);
        let mut total = 0;
        for t in tenants {
            total += t.inner.lock().unwrap_or_else(PoisonError::into_inner).evicted;
        }
        total
    }
}
