//! R7 fixed twin of `par_entropy_bad.rs`: every block's generator is
//! derived from `(run_seed, block index)` — scheduling, thread identity,
//! and wall clock cannot reach the values.

fn par_fill_jitter(run_seed: u64, threads: usize, out: &mut [f64]) {
    std::thread::scope(|scope| {
        for (i, chunk) in out.chunks_mut(BLOCK_LEN).enumerate() {
            scope.spawn(move || {
                let mut rng = derive_fast_stream(run_seed, i as u64);
                for v in chunk {
                    *v = rng.sample_value();
                }
            });
        }
    });
}
