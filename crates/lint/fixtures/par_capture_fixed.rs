//! R7 fixed twin of `par_capture_bad.rs`: the closure touches only the
//! run seed, its block index, and its disjoint slab — the shipped
//! `free_gap_noise::par` engine, verbatim. Progress accounting, if
//! needed, belongs after the join, derived from the shard sizes.

fn par_fill_offset_blocks(dist: &Laplace, run_seed: u64, first_block: u64, threads: usize, base: &[f64], out: &mut [f64]) {
    for_each_block_sharded(threads, base, out, |blk, b, o| {
        let mut rng = derive_fast_stream(run_seed, first_block + blk);
        dist.fill_into_offset(&mut rng, b, o);
    });
}
