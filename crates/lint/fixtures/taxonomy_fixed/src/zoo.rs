//! Deliberately-broken variant zoo: attacked by the privacy-attack harness,
//! never benched — exempt from the taxonomy as a whole file.
// lint:allow-file(taxonomy): the zoo is an attack target, not a benched mechanism

impl LeakyZooVariant {
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers<'_>,
        scratch: &mut SvtScratch,
        rng: &mut R,
    ) -> Vec<GapOutcome> {
        run_leaky_core(answers, &mut ScratchDraws::new(scratch, rng))
    }
}
