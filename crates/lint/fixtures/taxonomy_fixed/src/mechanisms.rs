//! R4 power-check fixture tree — a complete taxonomy. Must lint clean.

/// Full pair: scratch fast path + allocation-free `_into` twin, with an
/// equivalence entry and a bench grid cell.
impl GoodMechanism {
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers<'_>,
        scratch: &mut SvtScratch,
        rng: &mut R,
    ) -> Vec<GapOutcome> {
        run_core(answers, &mut ScratchDraws::new(scratch, rng))
    }

    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers<'_>,
        scratch: &mut SvtScratch,
        rng: &mut R,
        out: &mut Vec<GapOutcome>,
    ) {
        run_core_into(answers, &mut ScratchDraws::new(scratch, rng), out)
    }
}

impl ScalarMechanism {
    /// Returns a single winner index — there is no output buffer to reuse,
    /// so the `_into` twin is exempted rather than invented.
    // lint:allow(taxonomy): scalar winner index; no buffer for an _into twin to reuse
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers<'_>,
        scratch: &mut SvtScratch,
        rng: &mut R,
    ) -> usize {
        select_core(answers, &mut ScratchDraws::new(scratch, rng))
    }
}
