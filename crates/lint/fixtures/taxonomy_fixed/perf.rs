//! Bench grid of the fixed fixture tree.

pub const MECHANISM_PATHS: [(&str, &[&str]); 2] = [
    ("GoodMechanism", &["dyn", "scratch"]),
    ("ScalarMechanism", &["dyn", "scratch"]),
];
