//! Equivalence suite of the fixed fixture tree: every taxonomy participant
//! has an entry.

#[test]
fn good_mechanism_scratch_matches_dyn() {
    let mech = GoodMechanism::new(1.0);
    assert_paths_agree(&mech);
}

#[test]
fn scalar_mechanism_scratch_matches_dyn() {
    let mech = ScalarMechanism::new(1.0);
    assert_winner_agrees(&mech);
}
