//! R5 power-check fixture — double release on one path.
//!
//! A deferred ε₂ share must reach *exactly one* `release`: this draft of
//! session close refunded the share and then refunded it again on the
//! cleanup path below, minting budget out of thin air — the dual of the
//! budget-burning bug, and the exact class of accounting error Lyu et
//! al.'s SVT-variant survey shows real deployments ship.

impl QueryServer {
    fn release_session(&self, tenant: &Tenant, session: &Session) {
        let refunded = tenant.ledger.release(session.cost);
        debug_assert!(refunded.is_ok());
        tenant.ledger.release(session.cost);
    }
}
