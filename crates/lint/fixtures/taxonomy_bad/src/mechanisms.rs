//! R4 power-check fixture tree — every way the taxonomy can go incomplete.

/// Has a scratch fast path but no `_into` twin, and no equivalence entry:
/// the bench grid lists it, yet nothing proves the fast path correct and
/// the timed loops cannot drive it allocation-free.
impl BadMechanism {
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers<'_>,
        scratch: &mut SvtScratch,
        rng: &mut R,
    ) -> Vec<GapOutcome> {
        run_core(answers, &mut ScratchDraws::new(scratch, rng))
    }
}

/// Complete pair and equivalence entry — but never declared in
/// `MECHANISM_PATHS`, so bench-check cannot guard its cell.
impl UnbenchedMechanism {
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers<'_>,
        scratch: &mut SvtScratch,
        rng: &mut R,
    ) -> Vec<GapOutcome> {
        run_core(answers, &mut ScratchDraws::new(scratch, rng))
    }

    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers<'_>,
        scratch: &mut SvtScratch,
        rng: &mut R,
        out: &mut Vec<GapOutcome>,
    ) {
        run_core_into(answers, &mut ScratchDraws::new(scratch, rng), out)
    }
}
