//! Bench grid of the bad fixture tree. `GhostMechanism` is declared here
//! but no type of that name exposes a scratch entry point anywhere.

pub const MECHANISM_PATHS: [(&str, &[&str]); 2] = [
    ("BadMechanism", &["dyn", "scratch"]),
    ("GhostMechanism", &["dyn", "scratch"]),
];
