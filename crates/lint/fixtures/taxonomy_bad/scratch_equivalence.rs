//! Equivalence suite of the bad fixture tree: covers `UnbenchedMechanism`
//! only — `BadMechanism` and `GhostMechanism` have no entry.

#[test]
fn unbenched_mechanism_scratch_matches_dyn() {
    let mech = UnbenchedMechanism::new(1.0);
    assert_paths_agree(&mech);
}
