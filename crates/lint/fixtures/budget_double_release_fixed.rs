//! R5 fixed twin of `budget_double_release_bad.rs`: the share reaches
//! exactly one `release`; eviction and explicit close share this single
//! exit point instead of each refunding on their own.

impl QueryServer {
    fn release_session(&self, tenant: &Tenant, session: &Session) {
        let refunded = tenant.ledger.release(session.cost);
        debug_assert!(refunded.is_ok());
    }
}
