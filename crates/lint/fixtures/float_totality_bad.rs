//! R8 power-check fixture — partial float comparisons in selection
//! positions, the PR-5 NaN bug as a permanent rule.
//!
//! Three shapes of the same mistake: the PR-5 sort (`partial_cmp` +
//! `unwrap` panics on NaN, `unwrap_or(Equal)` band-aids mis-select), a
//! `fold(f64::max)` reduction that silently *drops* NaN (`max(NaN, x) =
//! x`, so a poisoned utility wins or vanishes depending on argument
//! order), and a raw `<` comparator closure, which violates strict weak
//! ordering on NaN (`sort_by` panics on that since Rust 1.81).

impl ExponentialMechanism {
    fn sample_top_k(&self, scores: &mut Vec<(f64, usize)>, k: usize) -> Vec<usize> {
        scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scores.iter().take(k).map(|&(_, i)| i).collect()
    }

    fn max_utility(&self, values: &[f64]) -> f64 {
        values.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    fn rank_ratios(&self, ratios: &mut Vec<f64>) {
        ratios.sort_by(|a, b| if a < b { Ordering::Less } else { Ordering::Greater });
    }
}
