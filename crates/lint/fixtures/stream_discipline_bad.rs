//! R1 power-check fixture — the PR-4 stream-discipline bug, verbatim.
//!
//! `ScratchDraws::discrete_next` sampled the RNG directly instead of going
//! through the scratch tape. Correct *in isolation* (the comment even argues
//! why), it silently desynchronized the stream once blocked lookahead
//! buffered uniforms ahead of the cursor: the direct draw consumed RNG
//! words the tape had already committed to serving, so scratch runs
//! diverged from the dyn reference only on workloads that interleave
//! discrete and continuous draws after a lookahead. The scratch-equivalence
//! suite caught it at Monte-Carlo cost; this rule catches it at read time.

impl<R: Rng + ?Sized> DrawProvider for ScratchDraws<'_, R> {
    #[inline]
    fn next(&mut self, scale: f64) -> f64 {
        self.scratch.next_scaled(self.rng, scale)
    }

    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        // Discrete draws are rare (no batched fast path yet): sample
        // directly, preserving the sequential stream position.
        DiscreteLaplace::new(unit_epsilon, gamma)
            .expect("mechanism-validated rate")
            .sample_value(self.rng)
    }
}

/// A provider-generic core that falls back to a raw RNG for its final
/// draw — the other way the discipline breaks.
fn run_core<P: DrawProvider>(provider: &mut P, threshold: f64) -> f64 {
    let rho = provider.next(1.0);
    let mut rng = rng_from_seed(42);
    rho + threshold + rng.gen_range(0.0..1.0)
}
