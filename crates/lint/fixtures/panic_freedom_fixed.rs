//! R3 power-check fixture — the shipped fix. Must lint clean.
//!
//! `total_cmp` gives NaN a defined order (no `Option` to unwrap), invalid
//! workloads return a typed `MechanismError`, the one load-bearing
//! invariant keeps a justified allow, and test modules may assert freely.

impl ExponentialMechanism {
    fn sample_top_k<R: Rng + ?Sized>(
        &self,
        qualities: &[f64],
        k: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        let mut scores: Vec<(f64, usize)> = qualities
            .iter()
            .enumerate()
            .map(|(i, &q)| (q * self.t + self.gumbel.sample(rng), i))
            .collect();
        scores.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scores.into_iter().take(k).map(|(_, i)| i).collect()
    }

    fn require_len(&self, answers: &[f64], k: usize) -> Result<usize, MechanismError> {
        if answers.len() <= k {
            return Err(MechanismError::NotEnoughQueries {
                needed: k + 1,
                got: answers.len(),
            });
        }
        Ok(answers.len())
    }

    fn tuple_slot(&self, draws: &[f64], arity: usize) -> f64 {
        // lint:allow(panic-freedom): arity is a compile-time caller property, never user input
        assert!(arity <= MAX_TUPLE, "tuple arity must be in 1..={MAX_TUPLE}");
        draws[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_assert_and_unwrap() {
        let m = ExponentialMechanism::default();
        assert_eq!(m.require_len(&[1.0, 2.0], 1).unwrap(), 2);
        let nan_ok = [f64::NAN, 1.0];
        assert!(m.require_len(&nan_ok, 1).is_ok());
        panic!("even an explicit panic is fine inside #[cfg(test)]");
    }
}
