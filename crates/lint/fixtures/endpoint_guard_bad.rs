//! R2 power-check fixture — the unclamped-endpoint bug, verbatim.
//!
//! The pre-PR-5 Laplace inverse-CDF transform evaluated `ln(1 - 2|u'|)`
//! directly. A tape uniform can be exactly 0, making the operand 0 and the
//! draw `-inf`; downstream comparisons against a `-inf` threshold noise then
//! mis-selected deterministically. The shipped convention clamps every such
//! operand with `.max(f64::MIN_POSITIVE)`.

impl SingleUniform for Laplace {
    #[inline]
    fn sample_from_uniform(&self, u: f64) -> f64 {
        let u = u - 0.5;
        let magnitude = -self.scale * (1.0 - 2.0 * u.abs()).ln();
        if u < 0.0 {
            -magnitude
        } else {
            magnitude
        }
    }
}

impl Gumbel {
    /// Double-ln transform: both logs take tape-uniform-derived operands,
    /// so both need the guard; here neither has it.
    fn fill_from_uniforms(&self, uniforms: &[f64], out: &mut [f64]) {
        for (slot, &u) in out.iter_mut().zip(uniforms) {
            let e = -(u.ln());
            *slot = -self.scale * e.ln();
        }
    }
}
