//! R3 power-check fixture — the PR-5 NaN-panic bug, verbatim.
//!
//! The Gumbel top-k reference sorted scores with `partial_cmp().unwrap()`.
//! A NaN utility (caller bug, but user-reachable input) made `partial_cmp`
//! return `None` and the serving path panic — or, with `unwrap_or(Equal)`
//! band-aids, silently mis-select. The fix is `f64::total_cmp`, which gives
//! NaN a defined order, plus typed `MechanismError` returns for the
//! genuinely invalid-input paths.

impl ExponentialMechanism {
    fn sample_top_k<R: Rng + ?Sized>(&self, qualities: &[f64], k: usize, rng: &mut R) -> Vec<usize> {
        let mut scores: Vec<(f64, usize)> = qualities
            .iter()
            .enumerate()
            .map(|(i, &q)| (q * self.t + self.gumbel.sample(rng), i))
            .collect();
        scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scores.into_iter().take(k).map(|(_, i)| i).collect()
    }

    fn require_len(&self, answers: &[f64], k: usize) -> usize {
        if answers.len() <= k {
            panic!("need at least {} queries, got {}", k + 1, answers.len());
        }
        answers.len()
    }
}
