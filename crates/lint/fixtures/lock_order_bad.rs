//! R6 power-check fixture — nested lock under a live guard.
//!
//! The eviction sweep held the tenant-map read guard and then took each
//! tenant's inner lock inside the loop. With any other path taking the
//! same two locks in the opposite order (tenant first, map second — e.g.
//! a handler resolving a peer tenant), two threads deadlock and every
//! tenant behind them stalls. A live guard must not cross another
//! `.lock()`/`.read()`/`.write()`.

impl QueryServer {
    fn evicted_total(&self) -> u64 {
        let map = self.tenants.read().unwrap_or_else(PoisonError::into_inner);
        let mut total = 0;
        for t in map.values() {
            total += t.inner.lock().unwrap_or_else(PoisonError::into_inner).evicted;
        }
        total
    }
}
