//! R8 fixed twin of `float_totality_bad.rs`: every ordering goes through
//! `f64::total_cmp`, which orders NaN deterministically — no panic, no
//! silent mis-selection, no strict-weak-ordering violation.

impl ExponentialMechanism {
    fn sample_top_k(&self, scores: &mut Vec<(f64, usize)>, k: usize) -> Vec<usize> {
        scores.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        scores.iter().take(k).map(|&(_, i)| i).collect()
    }

    fn max_utility(&self, values: &[f64]) -> f64 {
        values.iter().cloned().fold(f64::NEG_INFINITY, |a, b| {
            if a.total_cmp(&b).is_ge() {
                a
            } else {
                b
            }
        })
    }

    fn rank_ratios(&self, ratios: &mut Vec<f64>) {
        ratios.sort_by(f64::total_cmp);
    }
}
