//! `free-gap-lint` — a source-level invariant checker for the repo's
//! privacy-critical conventions.
//!
//! Every privacy bug this repo has shipped and then fixed was a
//! *source-level convention violation*, not a logic error: a raw-RNG draw
//! inside a provider-generic core silently broke the stream discipline
//! (PR 4), an unclamped `ln(u)` endpoint produced non-finite noise, and
//! `partial_cmp().unwrap()` panicked or mis-selected on NaN utilities
//! (PR 5). The dynamic layers (scratch equivalence, chi-square statistics,
//! the attack harness) catch these after the fact at Monte-Carlo cost; this
//! crate catches them at review time for free by enforcing four named rules
//! over `crates/{core,noise,serve}/src`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `stream-discipline` (R1) | no raw RNG/`NoiseSource` draws inside provider-generic cores or the blocked `ScratchDraws` provider — randomness flows through [`DrawProvider`] methods only |
//! | `endpoint-guard` (R2) | every `.ln()` in a uniform transform clamps its operand with `.max(f64::MIN_POSITIVE)` |
//! | `panic-freedom` (R3) | no `unwrap`/`expect`/`panic!`/`assert!` in non-test mechanism code — typed `MechanismError` or a justified allow |
//! | `taxonomy` (R4) | every `*_with_scratch` fast path has its `_into` twin, a `scratch_equivalence` entry, and a `MECHANISM_PATHS` bench cell (cross-file) |
//! | `budget-balance` (R5) | every `try_debit` handles its failure with a typed rejection; a debited share reaches exactly one `release` on every error path (dataflow) |
//! | `lock-discipline` (R6) | a live guard never crosses another `.lock()` or a mechanism `call_*`; lock results absorb poisoning via `PoisonError::into_inner` (dataflow) |
//! | `par-purity` (R7) | parallel block-fill closures are pure functions of (run seed, block index, disjoint slab) — no captured `&mut`, thread identity, statics, or entropy (dataflow) |
//! | `float-totality` (R8) | no `partial_cmp`, qualified `f64::max|min`, or raw `<`/`>` comparator closures in selection/ordering positions — `f64::total_cmp` only (dataflow) |
//!
//! R1–R3 are token/scope-level (one structural pass, [`scanner`]); R5–R8
//! are intra-procedural dataflow rules over a statement/branch graph
//! ([`flow`]) — still the same dependency-free tokenizer underneath.
//!
//! Findings are suppressed by `// lint:allow(rule): reason` on or above the
//! offending line (file-wide: `lint:allow-file`); the reason is mandatory.
//! The analysis is a dependency-free hand-rolled tokenizer (the container
//! is offline, so `syn` is not an option) plus a single structural pass —
//! see [`lexer`] and [`scanner`].
//!
//! The fixture corpus under `fixtures/` reproduces each historical bug
//! verbatim and doubles as a power check: a rule that stops flagging its
//! fixture fails this crate's own tests, the same corrupted-reference
//! discipline as the chi-square and attack layers.
//!
//! [`DrawProvider`]: https://docs.rs/free-gap-core

pub mod allow;
pub mod flow;
pub mod lexer;
pub mod rules;
pub mod scanner;
pub mod taxonomy;

use rules::FileScope;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The eight invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1 — randomness in provider-generic cores flows through
    /// `DrawProvider` only.
    StreamDiscipline,
    /// R2 — `.ln()` operands in uniform transforms are clamped.
    EndpointGuard,
    /// R3 — non-test mechanism code never panics.
    PanicFreedom,
    /// R4 — the scratch/`_into`/equivalence/bench taxonomy is complete.
    Taxonomy,
    /// R5 — every `try_debit` is rejected-on-failure; debited shares reach
    /// exactly one `release` per path.
    BudgetBalance,
    /// R6 — live guards cross neither other locks nor mechanism calls;
    /// poisoning is absorbed, never unwrapped.
    LockDiscipline,
    /// R7 — parallel block fills are pure in (run seed, block index).
    ParPurity,
    /// R8 — float selection/ordering goes through `total_cmp` only.
    FloatTotality,
}

impl Rule {
    /// All rules, in documentation order.
    pub const ALL: [Rule; 8] = [
        Rule::StreamDiscipline,
        Rule::EndpointGuard,
        Rule::PanicFreedom,
        Rule::Taxonomy,
        Rule::BudgetBalance,
        Rule::LockDiscipline,
        Rule::ParPurity,
        Rule::FloatTotality,
    ];

    /// The kebab-case rule name used in diagnostics and allow annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::StreamDiscipline => "stream-discipline",
            Rule::EndpointGuard => "endpoint-guard",
            Rule::PanicFreedom => "panic-freedom",
            Rule::Taxonomy => "taxonomy",
            Rule::BudgetBalance => "budget-balance",
            Rule::LockDiscipline => "lock-discipline",
            Rule::ParPurity => "par-purity",
            Rule::FloatTotality => "float-totality",
        }
    }

    /// Parses a rule name (as accepted by `repro lint --rule`).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a finding relates to the allow annotations of its file. Active
/// findings fail the lint; suppressed ones are kept for the `--json`
/// report so the full allow inventory stays machine-readable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AllowState {
    /// Not suppressed — an active finding.
    None,
    /// Suppressed by a `// lint:allow(rule): reason` on or above the line.
    Line,
    /// Suppressed by a file-wide `// lint:allow-file(rule): reason`.
    File,
}

impl AllowState {
    /// The value used in the `--json` schema.
    pub fn as_str(self) -> &'static str {
        match self {
            AllowState::None => "none",
            AllowState::Line => "line",
            AllowState::File => "file",
        }
    }
}

/// One finding: `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// Whether (and how) an allow annotation suppresses it.
    pub allow: AllowState,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Recursively lists `.rs` files under `dir`, sorted for deterministic
/// diagnostic order.
pub fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the token-level and dataflow rules over every `.rs` file in `dir`
/// under the given [`FileScope`]. Returns *all* findings, suppressed ones
/// included — filter on [`Diagnostic::allow`] for the failing set.
pub fn lint_dir(dir: &Path, scope: FileScope, rules: &[Rule]) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for file in rust_files(dir)? {
        lint_file(&file, scope, rules, &mut out)?;
    }
    Ok(out)
}

/// Runs the token-level and dataflow rules over a single file. Suppressed
/// findings are pushed too, carrying their [`AllowState`].
pub fn lint_file(
    file: &Path,
    scope: FileScope,
    rules: &[Rule],
    out: &mut Vec<Diagnostic>,
) -> io::Result<()> {
    let src = std::fs::read_to_string(file)?;
    let lexed = lexer::lex(&src);
    let scoped = scanner::scan(&lexed.tokens);
    let allows = allow::parse(&lexed.comments);
    rules::check_file(file, &scoped, &allows, scope, rules, out);
    flow::check_file(file, &lexed.tokens, &allows, scope, rules, out);
    Ok(())
}

/// The layout of a tree to lint: where the linted crates' sources and the
/// two cross-file anchors (equivalence suite, bench grid) live.
#[derive(Debug, Clone)]
pub struct TreeLayout {
    /// `crates/core/src` — R1 + R3 scope.
    pub core_src: PathBuf,
    /// `crates/noise/src` — R2 + R3 scope.
    pub noise_src: PathBuf,
    /// `crates/serve/src` — R1 + R3 scope (the serving layer must never
    /// panic or touch raw streams from provider-generic code).
    pub serve_src: PathBuf,
    /// `crates/attack/src` — R3 + R8 scope (the audit harness must not
    /// panic mid-board or mis-rank on NaN statistics).
    pub attack_src: PathBuf,
    /// `crates/bench/src` — R3 + R8 scope (a panicking or NaN-unstable
    /// sort in the grid invalidates the baselines CI gates on).
    pub bench_src: PathBuf,
    /// `crates/core/tests/scratch_equivalence.rs` — R4 anchor.
    pub equivalence: PathBuf,
    /// `crates/bench/src/perf.rs` — R4 anchor (`MECHANISM_PATHS`).
    pub perf: PathBuf,
}

impl TreeLayout {
    /// The repo's conventional layout under `root`.
    pub fn at(root: &Path) -> TreeLayout {
        TreeLayout {
            core_src: root.join("crates/core/src"),
            noise_src: root.join("crates/noise/src"),
            serve_src: root.join("crates/serve/src"),
            attack_src: root.join("crates/attack/src"),
            bench_src: root.join("crates/bench/src"),
            equivalence: root.join("crates/core/tests/scratch_equivalence.rs"),
            perf: root.join("crates/bench/src/perf.rs"),
        }
    }

    /// Quick existence check with a readable error, so `repro lint` run
    /// from the wrong directory fails with a path, not an empty report.
    pub fn validate(&self) -> Result<(), String> {
        for (what, p) in [
            ("core sources", &self.core_src),
            ("noise sources", &self.noise_src),
            ("serve sources", &self.serve_src),
            ("attack sources", &self.attack_src),
            ("bench sources", &self.bench_src),
            ("scratch_equivalence suite", &self.equivalence),
            ("bench perf grid", &self.perf),
        ] {
            if !p.exists() {
                return Err(format!(
                    "{} not found at {} — run from the repository root",
                    what,
                    p.display()
                ));
            }
        }
        Ok(())
    }
}

/// Lints a whole tree and returns *every* finding — active and
/// allow-suppressed alike — deterministically sorted by
/// (file, line, rule, message). This is what the `--json` report is built
/// from: the suppressed findings are the machine-readable allow inventory.
pub fn lint_tree_report(layout: &TreeLayout, rules: &[Rule]) -> io::Result<Vec<Diagnostic>> {
    let mut out = lint_dir(&layout.core_src, FileScope::Core, rules)?;
    out.extend(lint_dir(&layout.noise_src, FileScope::Noise, rules)?);
    out.extend(lint_dir(&layout.serve_src, FileScope::Serve, rules)?);
    out.extend(lint_dir(&layout.attack_src, FileScope::Attack, rules)?);
    out.extend(lint_dir(&layout.bench_src, FileScope::Bench, rules)?);
    if rules.contains(&Rule::Taxonomy) {
        let inv = taxonomy::inventory(&layout.core_src, &layout.equivalence, &layout.perf)?;
        taxonomy::check(&inv, &layout.equivalence, &layout.perf, &mut out);
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.rule.name(), &a.message).cmp(&(
            &b.file,
            b.line,
            b.rule.name(),
            &b.message,
        ))
    });
    Ok(out)
}

/// Lints a whole tree with the selected rules and returns the *active*
/// findings (allow-suppressed ones filtered out). This is what
/// `repro lint` and CI gate on.
pub fn lint_tree(layout: &TreeLayout, rules: &[Rule]) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_tree_report(layout, rules)?
        .into_iter()
        .filter(|d| d.allow == AllowState::None)
        .collect())
}

/// Renders a finding set as the stable `free-gap-lint/1` JSON schema:
///
/// ```json
/// {
///   "schema": "free-gap-lint/1",
///   "rules": ["stream-discipline", …],
///   "active": 0,
///   "allowed": 3,
///   "findings": [
///     { "file": "…", "line": 7, "rule": "lock-discipline",
///       "allow": "line", "message": "…" }
///   ]
/// }
/// ```
///
/// Input order is preserved ([`lint_tree_report`] already sorts by
/// (file, line, rule, message)), keys are emitted in a fixed order, and no
/// map types are involved — so the output is byte-stable across runs.
pub fn report_json(rules: &[Rule], findings: &[Diagnostic]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }
    let active = findings
        .iter()
        .filter(|d| d.allow == AllowState::None)
        .count();
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"free-gap-lint/1\",\n  \"rules\": [");
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\"", r.name()));
    }
    s.push_str("],\n");
    s.push_str(&format!("  \"active\": {active},\n"));
    s.push_str(&format!("  \"allowed\": {},\n", findings.len() - active));
    s.push_str("  \"findings\": [");
    for (i, d) in findings.iter().enumerate() {
        s.push_str(if i > 0 { "," } else { "" });
        s.push_str("\n    { ");
        s.push_str(&format!(
            "\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"allow\": \"{}\", \"message\": \"{}\"",
            esc(&d.file.display().to_string()),
            d.line,
            d.rule.name(),
            d.allow.as_str(),
            esc(&d.message)
        ));
        s.push_str(" }");
    }
    if !findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Directory holding the fixture corpus (compiled into the binary; valid
/// wherever the workspace checkout lives).
pub fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

/// One fixture: a file (or taxonomy tree) that must — or must not — be
/// flagged by a specific rule.
#[derive(Debug, Clone, Copy)]
pub struct Fixture {
    /// Path relative to [`fixtures_dir`].
    pub path: &'static str,
    /// The rule under test.
    pub rule: Rule,
    /// Token-rule scope the fixture is linted under (ignored for R4 trees).
    pub scope: FileScope,
    /// Whether the rule must flag the fixture (`true`: the historical bug,
    /// reproduced verbatim) or must stay silent (`false`: the shipped fix).
    pub expect_flagged: bool,
}

/// The corpus: known-bad snippets per rule — each reproducing a historical
/// (or concretely possible) bug verbatim — plus the corrected twin that
/// must lint clean (so a rule can neither under- nor over-fire without
/// failing the power checks).
pub const FIXTURES: [Fixture; 26] = [
    Fixture {
        path: "stream_discipline_bad.rs",
        rule: Rule::StreamDiscipline,
        scope: FileScope::Core,
        expect_flagged: true,
    },
    Fixture {
        path: "stream_discipline_fixed.rs",
        rule: Rule::StreamDiscipline,
        scope: FileScope::Core,
        expect_flagged: false,
    },
    Fixture {
        path: "parallel_fill_bad.rs",
        rule: Rule::StreamDiscipline,
        scope: FileScope::Core,
        expect_flagged: true,
    },
    Fixture {
        path: "parallel_fill_fixed.rs",
        rule: Rule::StreamDiscipline,
        scope: FileScope::Core,
        expect_flagged: false,
    },
    Fixture {
        path: "endpoint_guard_bad.rs",
        rule: Rule::EndpointGuard,
        scope: FileScope::Noise,
        expect_flagged: true,
    },
    Fixture {
        path: "endpoint_guard_fixed.rs",
        rule: Rule::EndpointGuard,
        scope: FileScope::Noise,
        expect_flagged: false,
    },
    Fixture {
        path: "panic_freedom_bad.rs",
        rule: Rule::PanicFreedom,
        scope: FileScope::Core,
        expect_flagged: true,
    },
    Fixture {
        path: "panic_freedom_fixed.rs",
        rule: Rule::PanicFreedom,
        scope: FileScope::Core,
        expect_flagged: false,
    },
    Fixture {
        path: "taxonomy_bad",
        rule: Rule::Taxonomy,
        scope: FileScope::Core,
        expect_flagged: true,
    },
    Fixture {
        path: "taxonomy_fixed",
        rule: Rule::Taxonomy,
        scope: FileScope::Core,
        expect_flagged: false,
    },
    // --- dataflow tier (R5–R8) ------------------------------------------
    Fixture {
        path: "budget_debit_bad.rs",
        rule: Rule::BudgetBalance,
        scope: FileScope::Serve,
        expect_flagged: true,
    },
    Fixture {
        path: "budget_debit_fixed.rs",
        rule: Rule::BudgetBalance,
        scope: FileScope::Serve,
        expect_flagged: false,
    },
    Fixture {
        path: "budget_refund_bad.rs",
        rule: Rule::BudgetBalance,
        scope: FileScope::Serve,
        expect_flagged: true,
    },
    Fixture {
        path: "budget_refund_fixed.rs",
        rule: Rule::BudgetBalance,
        scope: FileScope::Serve,
        expect_flagged: false,
    },
    Fixture {
        path: "budget_double_release_bad.rs",
        rule: Rule::BudgetBalance,
        scope: FileScope::Serve,
        expect_flagged: true,
    },
    Fixture {
        path: "budget_double_release_fixed.rs",
        rule: Rule::BudgetBalance,
        scope: FileScope::Serve,
        expect_flagged: false,
    },
    Fixture {
        path: "lock_order_bad.rs",
        rule: Rule::LockDiscipline,
        scope: FileScope::Serve,
        expect_flagged: true,
    },
    Fixture {
        path: "lock_order_fixed.rs",
        rule: Rule::LockDiscipline,
        scope: FileScope::Serve,
        expect_flagged: false,
    },
    Fixture {
        path: "lock_poison_bad.rs",
        rule: Rule::LockDiscipline,
        scope: FileScope::Serve,
        expect_flagged: true,
    },
    Fixture {
        path: "lock_poison_fixed.rs",
        rule: Rule::LockDiscipline,
        scope: FileScope::Serve,
        expect_flagged: false,
    },
    Fixture {
        path: "par_capture_bad.rs",
        rule: Rule::ParPurity,
        scope: FileScope::Noise,
        expect_flagged: true,
    },
    Fixture {
        path: "par_capture_fixed.rs",
        rule: Rule::ParPurity,
        scope: FileScope::Noise,
        expect_flagged: false,
    },
    Fixture {
        path: "par_entropy_bad.rs",
        rule: Rule::ParPurity,
        scope: FileScope::Noise,
        expect_flagged: true,
    },
    Fixture {
        path: "par_entropy_fixed.rs",
        rule: Rule::ParPurity,
        scope: FileScope::Noise,
        expect_flagged: false,
    },
    Fixture {
        path: "float_totality_bad.rs",
        rule: Rule::FloatTotality,
        scope: FileScope::Core,
        expect_flagged: true,
    },
    Fixture {
        path: "float_totality_fixed.rs",
        rule: Rule::FloatTotality,
        scope: FileScope::Core,
        expect_flagged: false,
    },
];

/// Lints one fixture with its rule; returns the *active* diagnostics
/// (fixtures exercise the rules, not the allow machinery).
pub fn lint_fixture(fixture: &Fixture) -> io::Result<Vec<Diagnostic>> {
    let path = fixtures_dir().join(fixture.path);
    let mut out = Vec::new();
    if fixture.rule == Rule::Taxonomy {
        let layout = TreeLayout {
            core_src: path.join("src"),
            noise_src: path.join("src"),
            serve_src: path.join("src"),
            attack_src: path.join("src"),
            bench_src: path.join("src"),
            equivalence: path.join("scratch_equivalence.rs"),
            perf: path.join("perf.rs"),
        };
        let inv = taxonomy::inventory(&layout.core_src, &layout.equivalence, &layout.perf)?;
        taxonomy::check(&inv, &layout.equivalence, &layout.perf, &mut out);
    } else {
        lint_file(&path, fixture.scope, &[fixture.rule], &mut out)?;
        out.retain(|d| d.allow == AllowState::None);
    }
    Ok(out)
}

/// Result row of a fixture power check.
#[derive(Debug)]
pub struct PowerRow {
    /// The fixture.
    pub fixture: Fixture,
    /// Diagnostics its rule produced.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the outcome matched `expect_flagged`.
    pub ok: bool,
}

/// Runs every fixture; each bad fixture must be flagged by its rule and
/// each fixed twin must lint clean.
pub fn power_check() -> io::Result<Vec<PowerRow>> {
    let mut rows = Vec::new();
    for fixture in FIXTURES {
        let diagnostics = lint_fixture(&fixture)?;
        let ok = diagnostics.is_empty() != fixture.expect_flagged;
        rows.push(PowerRow {
            fixture,
            diagnostics,
            ok,
        });
    }
    Ok(rows)
}
