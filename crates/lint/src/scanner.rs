//! Structural context over the flat token stream.
//!
//! One forward pass assigns every token the context the rules scope on:
//! whether it sits inside a `#[cfg(test)]` item, the name and signature of
//! the enclosing function, and the header of the enclosing `impl`/`trait`
//! block. Signatures and headers are stored as identifier soups — the rules
//! only ever ask "does the signature mention `DrawProvider`", never anything
//! positional, so a space-joined identifier list is exactly enough and stays
//! robust against formatting.

use crate::lexer::{Token, TokenKind};
use std::rc::Rc;

/// Context of one token.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    /// Inside an item annotated `#[cfg(test)]` (at any nesting depth).
    pub in_test: bool,
    /// Name of the innermost enclosing function body, if any.
    pub fn_name: Option<Rc<str>>,
    /// Identifier soup of that function's signature (generics, parameters,
    /// return type, where clause).
    pub fn_sig: Option<Rc<str>>,
    /// Identifier soup of the enclosing `impl`/`trait` header, if any.
    pub header: Option<Rc<str>>,
}

/// A token paired with its structural context.
#[derive(Debug)]
pub struct ScopedToken<'a> {
    /// The token.
    pub tok: &'a Token,
    /// Context at that token.
    pub ctx: Ctx,
}

#[derive(Clone, Default)]
struct Scope {
    ctx: Ctx,
}

/// Runs the context pass. Brace-balanced scopes inherit their parent
/// context; `fn`, `impl`/`trait`, and `#[cfg(test)]` immediately before a
/// `{` stamp the new scope.
pub fn scan(tokens: &[Token]) -> Vec<ScopedToken<'_>> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut stack: Vec<Scope> = vec![Scope::default()];
    let mut pending_test = false;
    let mut pending_fn: Option<(Rc<str>, Rc<str>)> = None;
    let mut pending_header: Option<Rc<str>> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        let top = stack.last().expect("scope stack never empties").clone();
        out.push(ScopedToken {
            tok: t,
            ctx: top.ctx.clone(),
        });
        match &t.kind {
            TokenKind::Punct('#') => {
                // Outer attribute `#[...]`; inner `#![...]` is skipped the
                // same way (it cannot start an item).
                let mut j = i + 1;
                if matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('!'))) {
                    j += 1;
                }
                if matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('['))) {
                    let (attr_idents, end) = collect_bracketed(tokens, j);
                    // `#[cfg(test)]` (or any cfg mentioning `test`) marks the
                    // next item as test-only.
                    if attr_idents.iter().any(|s| s == "cfg")
                        && attr_idents.iter().any(|s| s == "test")
                    {
                        pending_test = true;
                    }
                    // The `#` was pushed at the top of the loop; append the
                    // rest of the attribute so `out` stays a faithful copy.
                    for t in &tokens[i + 1..end] {
                        out.push(ScopedToken {
                            tok: t,
                            ctx: top.ctx.clone(),
                        });
                    }
                    i = end;
                    continue;
                }
            }
            TokenKind::Ident if t.text == "impl" || t.text == "trait" => {
                let (idents, end) = collect_until_body(tokens, i + 1);
                pending_header = Some(Rc::from(idents.join(" ")));
                for t in &tokens[i + 1..end] {
                    out.push(ScopedToken {
                        tok: t,
                        ctx: top.ctx.clone(),
                    });
                }
                i = end;
                continue;
            }
            TokenKind::Ident if t.text == "fn" => {
                // `fn` introducing an item (not the `fn(..)` pointer type,
                // which is followed by `(`).
                if let Some(name_tok) = tokens.get(i + 1) {
                    if name_tok.kind == TokenKind::Ident {
                        let (idents, end) = collect_until_body(tokens, i + 2);
                        pending_fn =
                            Some((Rc::from(name_tok.text.as_str()), Rc::from(idents.join(" "))));
                        for t in &tokens[i + 1..end] {
                            out.push(ScopedToken {
                                tok: t,
                                ctx: top.ctx.clone(),
                            });
                        }
                        i = end;
                        continue;
                    }
                }
            }
            TokenKind::Punct('{') => {
                let mut scope = top.clone();
                if pending_test {
                    scope.ctx.in_test = true;
                }
                if let Some(h) = pending_header.take() {
                    scope.ctx.header = Some(h);
                    // A new impl/trait block resets the function context.
                    scope.ctx.fn_name = None;
                    scope.ctx.fn_sig = None;
                }
                if let Some((name, sig)) = pending_fn.take() {
                    scope.ctx.fn_name = Some(name);
                    scope.ctx.fn_sig = Some(sig);
                }
                pending_test = false;
                stack.push(scope);
            }
            TokenKind::Punct('}') if stack.len() > 1 => {
                stack.pop();
            }
            TokenKind::Punct(';') => {
                // Item ended without a body (trait method declaration,
                // `#[cfg(test)] use …;`): discard pendings.
                pending_fn = None;
                pending_header = None;
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Collects identifier text from `start` until the `[`…`]` attribute closes;
/// returns (idents, index past the closing `]`). Shared with the
/// statement-graph pass in [`crate::flow`].
pub(crate) fn collect_bracketed(tokens: &[Token], start: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut j = start;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, j + 1);
                }
            }
            TokenKind::Ident => idents.push(tokens[j].text.clone()),
            _ => {}
        }
        j += 1;
    }
    (idents, j)
}

/// Collects identifier text from `start` until the opening `{` of the item
/// body (exclusive) or a top-level `;`; returns (idents, index of that
/// token). Paren/bracket depth is tracked so `[f64; 2]` in a signature does
/// not end the item. Shared with the statement-graph pass in
/// [`crate::flow`].
pub(crate) fn collect_until_body(tokens: &[Token], start: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut j = start;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            TokenKind::Punct('{') if depth == 0 => return (idents, j),
            TokenKind::Punct(';') if depth == 0 => return (idents, j),
            TokenKind::Ident => idents.push(tokens[j].text.clone()),
            _ => {}
        }
        j += 1;
    }
    (idents, j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of<'a>(scoped: &'a [ScopedToken<'a>], ident: &str) -> &'a Ctx {
        &scoped
            .iter()
            .find(|s| s.tok.text == ident)
            .expect("ident present")
            .ctx
    }

    #[test]
    fn fn_signature_and_name_are_attached_to_body_tokens() {
        let src =
            "pub(crate) fn run_core<P: DrawProvider>(&self, provider: &mut P) { body_marker(); }";
        let lexed = lex(src);
        let scoped = scan(&lexed.tokens);
        let ctx = ctx_of(&scoped, "body_marker");
        assert_eq!(ctx.fn_name.as_deref(), Some("run_core"));
        assert!(ctx.fn_sig.as_deref().unwrap().contains("DrawProvider"));
    }

    #[test]
    fn impl_header_reaches_method_bodies() {
        let src = "impl<R: Rng + ?Sized> DrawProvider for ScratchDraws<'_, R> { fn next(&mut self) -> f64 { inner_marker() } }";
        let lexed = lex(src);
        let scoped = scan(&lexed.tokens);
        let ctx = ctx_of(&scoped, "inner_marker");
        let header = ctx.header.as_deref().unwrap();
        assert!(header.contains("DrawProvider") && header.contains("ScratchDraws"));
        assert_eq!(ctx.fn_name.as_deref(), Some("next"));
    }

    #[test]
    fn cfg_test_marks_whole_module() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }";
        let lexed = lex(src);
        let scoped = scan(&lexed.tokens);
        assert!(!ctx_of(&scoped, "a").in_test);
        assert!(ctx_of(&scoped, "b").in_test);
    }

    #[test]
    fn cfg_test_on_single_fn_only_covers_it() {
        let src = "#[cfg(test)] fn t() { x(); } fn live() { y(); }";
        let lexed = lex(src);
        let scoped = scan(&lexed.tokens);
        assert!(ctx_of(&scoped, "x").in_test);
        assert!(!ctx_of(&scoped, "y").in_test);
    }

    #[test]
    fn signature_array_semicolons_do_not_end_the_item() {
        let src = "fn peek_pairs(&mut self, scales: [f64; 2]) -> &[f64] { m() }";
        let lexed = lex(src);
        let scoped = scan(&lexed.tokens);
        assert_eq!(ctx_of(&scoped, "m").fn_name.as_deref(), Some("peek_pairs"));
    }

    #[test]
    fn nested_fn_restores_outer_scope() {
        let src = "fn outer() { fn inner() { a(); } b(); }";
        let lexed = lex(src);
        let scoped = scan(&lexed.tokens);
        assert_eq!(ctx_of(&scoped, "a").fn_name.as_deref(), Some("inner"));
        assert_eq!(ctx_of(&scoped, "b").fn_name.as_deref(), Some("outer"));
    }

    #[test]
    fn trait_default_bodies_get_trait_header() {
        let src = "pub trait DrawProvider { fn pairs(&mut self) { delegate(); } }";
        let lexed = lex(src);
        let scoped = scan(&lexed.tokens);
        assert!(ctx_of(&scoped, "delegate")
            .header
            .as_deref()
            .unwrap()
            .contains("DrawProvider"));
    }
}
