//! The intra-procedural dataflow tier: statement/branch graphs over the
//! token stream, and the four rules that need them (R5–R8).
//!
//! The token rules in [`crate::rules`] ask questions a single token can
//! answer ("is this `.unwrap(` outside a test?"). The accounting
//! invariants the serving layer grew in PRs 8–9 cannot be phrased that
//! way: "every `try_debit` has a typed rejection on its failure path" is
//! a statement about *paths*, not tokens. This module parses each
//! function body into a statement tree — statement boundaries, branch
//! arms (`if`/`else`, `match`, let-`else`), loop bodies, and closure
//! spans — and walks it:
//!
//! * **R5 `budget-balance`** — a `.try_debit(…)` result must be handled
//!   (`?`, `return`, tail position, `match` scrutinee, or an `if let`
//!   whose branch exits); on the success path, any error exit reachable
//!   after the debit must `.release(…)` first; and no linear path may
//!   release twice.
//! * **R6 `lock-discipline`** — a live guard bound from `.lock()` /
//!   `.read()` / `.write()` may not cross another lock acquisition or a
//!   mechanism `call_*`, and lock results must use the
//!   `unwrap_or_else(PoisonError::into_inner)` pattern, never
//!   `.unwrap()`.
//! * **R7 `par-purity`** — block-fill closures in parallel engines may
//!   depend only on the run seed, the block index, and their disjoint
//!   slab: no captured `&mut` state, no assignment to captured names, no
//!   `thread::current`, statics, atomics, or time/entropy sources.
//! * **R8 `float-totality`** — no `partial_cmp`, qualified
//!   `f64::max`/`f64::min` reductions, or raw `<`/`>` comparator
//!   closures in sort/selection positions; the house idiom is
//!   `f64::total_cmp`.
//!
//! The analysis is deliberately intra-procedural and conservative in the
//! flagging direction: anything it cannot prove handled is a finding,
//! and genuine design exceptions carry a per-site
//! `// lint:allow(rule): reason`.

use crate::allow::Allows;
use crate::lexer::{Token, TokenKind};
use crate::rules::FileScope;
use crate::scanner::{collect_bracketed, collect_until_body};
use crate::{Diagnostic, Rule};
use std::path::Path;

// ---------------------------------------------------------------------
// Statement tree
// ---------------------------------------------------------------------

/// One function body parsed into a statement tree.
#[derive(Debug)]
pub struct FlowFn {
    /// The function's name.
    pub name: String,
    /// Identifier soup of its signature.
    pub sig: String,
    /// Identifier soup of the enclosing `impl`/`trait` header (empty at
    /// module level).
    pub header: String,
    /// Inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Line of the `fn` name.
    pub line: u32,
    /// The body.
    pub body: Block,
}

/// A `{ … }` block (or a synthesized single-expression match arm).
#[derive(Debug)]
pub struct Block {
    /// Token index of the opening `{` (or the first expression token for
    /// synthesized arms).
    pub start: usize,
    /// Token index of the closing `}` (or one past the last expression
    /// token for synthesized arms).
    pub end: usize,
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

/// Statement classification — only as fine-grained as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// Expression statement (or an item in statement position).
    Plain,
    /// `let …;` (sub-block: the let-`else` divergence block, if any).
    Let,
    /// `if`/`else if`/`else` chain (sub-blocks: the branches in order).
    If,
    /// `match` (sub-blocks: the arms in order; expression arms are
    /// synthesized one-statement blocks).
    Match,
    /// `loop`/`while`/`for` (sub-block: the body).
    Loop,
    /// `return`/`break`/`continue`.
    Return,
    /// A bare `{ … }` (or `unsafe { … }`) block statement.
    Block,
}

/// One statement: its token span `[start, end)`, branch sub-blocks, and
/// whether it is the block's tail expression.
#[derive(Debug)]
pub struct Stmt {
    /// First token index (including leading attributes).
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
    /// Source line of the first code token.
    pub line: u32,
    /// Classification.
    pub kind: StmtKind,
    /// Branch arms / loop body / let-`else` block, in source order.
    pub blocks: Vec<Block>,
    /// True for a block's trailing expression (no `;`): its value is the
    /// block's value, i.e. it propagates to the caller or enclosing arm.
    pub tail: bool,
}

fn is_p(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct(c)
}

fn is_id(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

/// Extracts every function body in the token stream as a [`FlowFn`] —
/// the same forward brace-scope pass as [`crate::scanner::scan`], plus a
/// statement-tree parse of each body.
pub fn functions(toks: &[Token]) -> Vec<FlowFn> {
    #[derive(Clone, Default)]
    struct Frame {
        header: String,
        in_test: bool,
    }
    let mut out = Vec::new();
    let mut stack: Vec<Frame> = vec![Frame::default()];
    let mut pending_test = false;
    let mut pending_header: Option<String> = None;
    let mut pending_fn: Option<(String, String, u32)> = None;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokenKind::Punct('#') => {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| is_p(t, '!')) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| is_p(t, '[')) {
                    let (idents, end) = collect_bracketed(toks, j);
                    if idents.iter().any(|s| s == "cfg") && idents.iter().any(|s| s == "test") {
                        pending_test = true;
                    }
                    i = end;
                    continue;
                }
            }
            TokenKind::Ident if t.text == "impl" || t.text == "trait" => {
                let (idents, end) = collect_until_body(toks, i + 1);
                pending_header = Some(idents.join(" "));
                i = end;
                continue;
            }
            TokenKind::Ident if t.text == "fn" => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokenKind::Ident {
                        let (idents, end) = collect_until_body(toks, i + 2);
                        pending_fn = Some((name_tok.text.clone(), idents.join(" "), name_tok.line));
                        i = end;
                        continue;
                    }
                }
            }
            TokenKind::Punct('{') => {
                let mut frame = stack.last().cloned().unwrap_or_default();
                if pending_test {
                    frame.in_test = true;
                }
                if let Some(h) = pending_header.take() {
                    frame.header = h;
                }
                pending_test = false;
                if let Some((name, sig, line)) = pending_fn.take() {
                    let (body, _) = parse_block(toks, i);
                    out.push(FlowFn {
                        name,
                        sig,
                        header: frame.header.clone(),
                        in_test: frame.in_test,
                        line,
                        body,
                    });
                }
                stack.push(frame);
            }
            TokenKind::Punct('}') if stack.len() > 1 => {
                stack.pop();
            }
            TokenKind::Punct(';') => {
                pending_fn = None;
                pending_header = None;
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses the block whose `{` is at `open`; returns it and the index of
/// its closing `}` (or `toks.len()` on unterminated input).
fn parse_block(toks: &[Token], open: usize) -> (Block, usize) {
    let mut stmts = Vec::new();
    let mut i = open + 1;
    let close;
    loop {
        match toks.get(i) {
            None => {
                close = i;
                break;
            }
            Some(t) if is_p(t, '}') => {
                close = i;
                break;
            }
            Some(_) => {
                let (stmt, next) = parse_stmt(toks, i);
                stmts.push(stmt);
                // Guaranteed forward progress even on input rustc would
                // reject — a lint must degrade, not hang.
                i = next.max(i + 1);
            }
        }
    }
    if let Some(last) = stmts.last_mut() {
        if last.end > last.start && !is_p(&toks[last.end - 1], ';') {
            last.tail = true;
        }
    }
    (
        Block {
            start: open,
            end: close,
            stmts,
        },
        close,
    )
}

/// Item keywords that can open a statement-position item with a brace
/// body of its own.
const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "impl", "trait", "mod", "use", "const", "static",
];

fn parse_stmt(toks: &[Token], start: usize) -> (Stmt, usize) {
    let mut i = start;
    // Leading attributes belong to the statement they annotate.
    while toks.get(i).is_some_and(|t| is_p(t, '#')) && toks.get(i + 1).is_some_and(|t| is_p(t, '['))
    {
        let (_, end) = collect_bracketed(toks, i + 1);
        i = end;
    }
    let Some(t) = toks.get(i) else {
        return (
            Stmt {
                start,
                end: i,
                line: toks.get(start).map_or(0, |t| t.line),
                kind: StmtKind::Plain,
                blocks: Vec::new(),
                tail: false,
            },
            i,
        );
    };
    let line = t.line;
    match &t.kind {
        TokenKind::Punct('{') => parse_braced(toks, start, i, line, StmtKind::Block),
        TokenKind::Ident if t.text == "unsafe" && toks.get(i + 1).is_some_and(|x| is_p(x, '{')) => {
            parse_braced(toks, start, i + 1, line, StmtKind::Block)
        }
        TokenKind::Ident if t.text == "if" => parse_if(toks, start, i, line),
        TokenKind::Ident if t.text == "match" => match seek_body_open(toks, i + 1) {
            Some(open) => {
                let (arms, close) = parse_match_arms(toks, open);
                let end = (close + 1).min(toks.len());
                (
                    Stmt {
                        start,
                        end,
                        line,
                        kind: StmtKind::Match,
                        blocks: arms,
                        tail: false,
                    },
                    end,
                )
            }
            None => walk_plain(toks, start, i, line, StmtKind::Plain),
        },
        TokenKind::Ident if t.text == "loop" || t.text == "while" || t.text == "for" => {
            match seek_body_open(toks, i + 1) {
                Some(open) => parse_braced(toks, start, open, line, StmtKind::Loop),
                None => walk_plain(toks, start, i, line, StmtKind::Plain),
            }
        }
        TokenKind::Ident if t.text == "let" => parse_let(toks, start, i, line),
        TokenKind::Ident if t.text == "return" || t.text == "break" || t.text == "continue" => {
            walk_plain(toks, start, i, line, StmtKind::Return)
        }
        TokenKind::Ident
            if ITEM_KEYWORDS.contains(&t.text.as_str())
                && !toks.get(i + 1).is_some_and(|x| is_p(x, '(')) =>
        {
            // Statement-position item: ends at a top-level `;` or after a
            // brace body. (An ident followed by `(` is a call, not `fn`
            // pointer syntax — handled by the guard above.)
            match seek_body_open(toks, i + 1) {
                Some(open) => parse_braced(toks, start, open, line, StmtKind::Plain),
                None => walk_plain(toks, start, i, line, StmtKind::Plain),
            }
        }
        _ => walk_plain(toks, start, i, line, StmtKind::Plain),
    }
}

/// A statement whose body is the block opening at `open`.
fn parse_braced(
    toks: &[Token],
    start: usize,
    open: usize,
    line: u32,
    kind: StmtKind,
) -> (Stmt, usize) {
    let (b, close) = parse_block(toks, open);
    let end = (close + 1).min(toks.len());
    (
        Stmt {
            start,
            end,
            line,
            kind,
            blocks: vec![b],
            tail: false,
        },
        end,
    )
}

fn parse_if(toks: &[Token], start: usize, first_if: usize, line: u32) -> (Stmt, usize) {
    let mut blocks = Vec::new();
    let mut i = first_if;
    let mut end = first_if + 1;
    while let Some(open) = seek_body_open(toks, i + 1) {
        let (b, close) = parse_block(toks, open);
        blocks.push(b);
        end = (close + 1).min(toks.len());
        if toks.get(close + 1).is_some_and(|t| is_id(t, "else")) {
            if toks.get(close + 2).is_some_and(|t| is_id(t, "if")) {
                i = close + 2;
                continue;
            }
            if toks.get(close + 2).is_some_and(|t| is_p(t, '{')) {
                let (b2, close2) = parse_block(toks, close + 2);
                blocks.push(b2);
                end = (close2 + 1).min(toks.len());
            }
        }
        break;
    }
    (
        Stmt {
            start,
            end,
            line,
            kind: StmtKind::If,
            blocks,
            tail: false,
        },
        end,
    )
}

fn parse_let(toks: &[Token], start: usize, let_kw: usize, line: u32) -> (Stmt, usize) {
    let (mut p, mut bk, mut br) = (0i32, 0i32, 0i32);
    let mut blocks = Vec::new();
    let mut j = let_kw + 1;
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Punct('(') => p += 1,
            TokenKind::Punct(')') => p -= 1,
            TokenKind::Punct('[') => bk += 1,
            TokenKind::Punct(']') => bk -= 1,
            TokenKind::Punct('{') => {
                if p == 0 && bk == 0 && br == 0 && j > 0 && is_id(&toks[j - 1], "else") {
                    // let-`else` divergence block.
                    let (b, close) = parse_block(toks, j);
                    blocks.push(b);
                    j = close;
                } else {
                    br += 1;
                }
            }
            TokenKind::Punct('}') => {
                if br == 0 {
                    break;
                }
                br -= 1;
            }
            TokenKind::Punct(';') if p == 0 && bk == 0 && br == 0 => {
                j += 1;
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let end = j.min(toks.len());
    (
        Stmt {
            start,
            end,
            line,
            kind: StmtKind::Let,
            blocks,
            tail: false,
        },
        end,
    )
}

/// Walks a plain expression statement: to a top-level `;` (consumed) or
/// the enclosing block's `}` (not consumed — the tail expression).
fn walk_plain(
    toks: &[Token],
    start: usize,
    first: usize,
    line: u32,
    kind: StmtKind,
) -> (Stmt, usize) {
    let (mut p, mut bk, mut br) = (0i32, 0i32, 0i32);
    let mut j = first;
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Punct('(') => p += 1,
            TokenKind::Punct(')') => {
                if p == 0 {
                    break;
                }
                p -= 1;
            }
            TokenKind::Punct('[') => bk += 1,
            TokenKind::Punct(']') => {
                if bk == 0 {
                    break;
                }
                bk -= 1;
            }
            TokenKind::Punct('{') => br += 1,
            TokenKind::Punct('}') => {
                if br == 0 {
                    break;
                }
                br -= 1;
            }
            TokenKind::Punct(';') if p == 0 && bk == 0 && br == 0 => {
                j += 1;
                break;
            }
            _ => {}
        }
        j += 1;
    }
    (
        Stmt {
            start,
            end: j,
            line,
            kind,
            blocks: Vec::new(),
            tail: false,
        },
        j,
    )
}

/// First `{` at paren/bracket depth 0 after `from` — the body of an
/// `if`/`match`/loop header. `None` if a `;` or the enclosing `}` comes
/// first (malformed or body-less input).
fn seek_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let (mut p, mut bk) = (0i32, 0i32);
    let mut j = from;
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Punct('(') => p += 1,
            TokenKind::Punct(')') => p -= 1,
            TokenKind::Punct('[') => bk += 1,
            TokenKind::Punct(']') => bk -= 1,
            TokenKind::Punct('{') if p == 0 && bk == 0 => return Some(j),
            TokenKind::Punct('}') if p == 0 && bk == 0 => return None,
            TokenKind::Punct(';') if p == 0 && bk == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses the arms of the `match` whose `{` is at `open`. Braced arms
/// become real blocks; expression arms become synthesized one-statement
/// blocks. Returns the arms and the index of the closing `}`.
fn parse_match_arms(toks: &[Token], open: usize) -> (Vec<Block>, usize) {
    let mut arms = Vec::new();
    let mut j = open + 1;
    loop {
        while toks.get(j).is_some_and(|t| is_p(t, '#'))
            && toks.get(j + 1).is_some_and(|t| is_p(t, '['))
        {
            let (_, end) = collect_bracketed(toks, j + 1);
            j = end;
        }
        match toks.get(j) {
            None => return (arms, j),
            Some(t) if is_p(t, '}') => return (arms, j),
            Some(_) => {}
        }
        // Pattern (and optional guard) up to the `=>` at depth 0; struct
        // patterns may contain braces of their own.
        let (mut p, mut bk, mut br) = (0i32, 0i32, 0i32);
        let mut k = j;
        let mut found = false;
        while k < toks.len() {
            match toks[k].kind {
                TokenKind::Punct('(') => p += 1,
                TokenKind::Punct(')') => p -= 1,
                TokenKind::Punct('[') => bk += 1,
                TokenKind::Punct(']') => bk -= 1,
                TokenKind::Punct('{') => br += 1,
                TokenKind::Punct('}') => {
                    if br == 0 {
                        return (arms, k);
                    }
                    br -= 1;
                }
                TokenKind::Punct('=')
                    if p == 0
                        && bk == 0
                        && br == 0
                        && toks.get(k + 1).is_some_and(|t| is_p(t, '>')) =>
                {
                    found = true;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if !found {
            return (arms, k.min(toks.len()));
        }
        let body = k + 2;
        if toks.get(body).is_some_and(|t| is_p(t, '{')) {
            let (b, close) = parse_block(toks, body);
            arms.push(b);
            j = close + 1;
            if toks.get(j).is_some_and(|t| is_p(t, ',')) {
                j += 1;
            }
        } else {
            // Expression arm: to the `,` at depth 0 or the match's `}`.
            let (mut p, mut bk, mut br) = (0i32, 0i32, 0i32);
            let mut e = body;
            while e < toks.len() {
                match toks[e].kind {
                    TokenKind::Punct('(') => p += 1,
                    TokenKind::Punct(')') => p -= 1,
                    TokenKind::Punct('[') => bk += 1,
                    TokenKind::Punct(']') => bk -= 1,
                    TokenKind::Punct('{') => br += 1,
                    TokenKind::Punct('}') => {
                        if br == 0 {
                            break;
                        }
                        br -= 1;
                    }
                    TokenKind::Punct(',') if p == 0 && bk == 0 && br == 0 => break,
                    _ => {}
                }
                e += 1;
            }
            let arm_line = toks.get(body).map_or(0, |t| t.line);
            arms.push(Block {
                start: body,
                end: e,
                stmts: vec![Stmt {
                    start: body,
                    end: e,
                    line: arm_line,
                    kind: StmtKind::Plain,
                    blocks: Vec::new(),
                    tail: true,
                }],
            });
            j = if toks.get(e).is_some_and(|t| is_p(t, ',')) {
                e + 1
            } else {
                e
            };
        }
    }
}

// ---------------------------------------------------------------------
// Tree queries
// ---------------------------------------------------------------------

/// Token ranges of a statement executed *unconditionally on the linear
/// path through it* — the span minus branch sub-blocks, and for
/// branching statements minus the header (condition, scrutinee, arm
/// patterns) too.
fn top_ranges(s: &Stmt) -> Vec<(usize, usize)> {
    match s.kind {
        StmtKind::If | StmtKind::Match | StmtKind::Loop => match s.blocks.last() {
            Some(b) => vec![((b.end + 1).min(s.end), s.end)],
            None => vec![(s.start, s.end)],
        },
        _ => {
            let mut out = Vec::new();
            let mut pos = s.start;
            for b in &s.blocks {
                if b.start > pos {
                    out.push((pos, b.start));
                }
                pos = (b.end + 1).min(s.end);
            }
            if s.end > pos {
                out.push((pos, s.end));
            }
            out
        }
    }
}

/// Path from `body`'s root to the innermost statement containing token
/// `pos`, as `(block, statement index)` pairs.
fn locate<'b>(block: &'b Block, pos: usize, path: &mut Vec<(&'b Block, usize)>) -> bool {
    for (k, s) in block.stmts.iter().enumerate() {
        if pos >= s.start && pos < s.end {
            path.push((block, k));
            for sub in &s.blocks {
                if locate(sub, pos, path) {
                    return true;
                }
            }
            return true;
        }
    }
    false
}

/// Statements that execute after the one containing `pos`, in order:
/// the rest of its block, then the rest of each ancestor block. Sibling
/// branch arms are alternatives, never successors.
fn successors(body: &Block, pos: usize) -> Vec<&Stmt> {
    let mut path = Vec::new();
    locate(body, pos, &mut path);
    let mut out = Vec::new();
    for (b, k) in path.iter().rev() {
        out.extend(&b.stmts[k + 1..]);
    }
    out
}

/// The innermost statement containing `pos`.
fn stmt_at(body: &Block, pos: usize) -> Option<&Stmt> {
    let mut path = Vec::new();
    locate(body, pos, &mut path);
    path.last().map(|&(b, k)| &b.stmts[k])
}

/// True when the token at `i` is an identifier called as a method.
fn is_method_call(toks: &[Token], i: usize) -> bool {
    i > 0
        && toks[i].kind == TokenKind::Ident
        && is_p(&toks[i - 1], '.')
        && toks
            .get(i + 1)
            .is_some_and(|t| is_p(t, '(') || is_p(t, ':') || is_p(t, '<'))
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        match t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

/// True when `[a, b)` contains an exit: `return`/`break`/`continue`/`?`
/// or an `Err`/`Rejected` construction (a typed rejection).
fn span_exits(toks: &[Token], a: usize, b: usize) -> bool {
    toks[a..b.min(toks.len())].iter().any(|t| {
        is_p(t, '?')
            || (t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "return" | "break" | "continue" | "Err" | "Rejected"
                ))
    })
}

// ---------------------------------------------------------------------
// Closures
// ---------------------------------------------------------------------

/// One closure literal: its parameter/`let`/`for`-bound names and body
/// token span.
#[derive(Debug)]
pub struct Closure {
    /// Token index of the opening `|`.
    pub start: usize,
    /// Names bound inside the closure (parameters, `let` and `for`
    /// patterns, nested closure parameters) — everything else it touches
    /// is captured.
    pub locals: Vec<String>,
    /// Body token span `[start, end)`.
    pub body: (usize, usize),
}

/// Is the `|` at `i` opening a closure (vs. bitwise/boolean or)? The
/// preceding token decides: after an operand it is an operator.
fn closure_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match &toks[i - 1].kind {
        TokenKind::Punct(c) => matches!(c, '(' | ',' | '=' | '{' | '>' | ':' | ';'),
        TokenKind::Ident => matches!(
            toks[i - 1].text.as_str(),
            "move" | "return" | "else" | "match" | "in"
        ),
        _ => false,
    }
}

/// Collects the closure parameter names starting after the `|` at `bar`;
/// returns (names, index past the closing `|`).
fn closure_params(toks: &[Token], bar: usize, names: &mut Vec<String>) -> usize {
    let mut j = bar + 1;
    if toks.get(j).is_some_and(|t| is_p(t, '|')) {
        return j + 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('>') => depth -= 1,
            TokenKind::Punct('|') if depth <= 0 => return j + 1,
            TokenKind::Ident if toks[j].text != "mut" => names.push(toks[j].text.clone()),
            _ => {}
        }
        j += 1;
    }
    j
}

/// Every closure literal in `[a, b)`, nested closures included (each
/// appears once, with its own locals; outer closures also count nested
/// parameters as locals, which only errs in the silent direction).
pub fn closures_in(toks: &[Token], a: usize, b: usize) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut i = a;
    let b = b.min(toks.len());
    while i < b {
        if is_p(&toks[i], '|') {
            if !closure_position(toks, i) {
                // `a || b`: skip the operator pair so the second `|` is
                // not mistaken for a parameterless closure.
                i += if toks.get(i + 1).is_some_and(|t| is_p(t, '|')) {
                    2
                } else {
                    1
                };
                continue;
            }
            let mut locals = Vec::new();
            let after_params = closure_params(toks, i, &mut locals);
            let (bs, be) = if toks.get(after_params).is_some_and(|t| is_p(t, '{')) {
                let (_, close) = parse_block(toks, after_params);
                (after_params, (close + 1).min(toks.len()))
            } else {
                let (stmt, _) = walk_plain(
                    toks,
                    after_params,
                    after_params,
                    toks.get(after_params).map_or(0, |t| t.line),
                    StmtKind::Plain,
                );
                // An expression body also stops at a `,` (argument
                // position) — walk_plain only breaks on `;`/brackets.
                let mut e = after_params;
                let (mut p, mut bk, mut br) = (0i32, 0i32, 0i32);
                while e < stmt.end {
                    match toks[e].kind {
                        TokenKind::Punct('(') => p += 1,
                        TokenKind::Punct(')') => p -= 1,
                        TokenKind::Punct('[') => bk += 1,
                        TokenKind::Punct(']') => bk -= 1,
                        TokenKind::Punct('{') => br += 1,
                        TokenKind::Punct('}') => br -= 1,
                        TokenKind::Punct(',') if p == 0 && bk == 0 && br == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                (after_params, e)
            };
            collect_bindings(toks, bs, be, &mut locals);
            out.push(Closure {
                start: i,
                locals,
                body: (bs, be),
            });
            // Continue *inside* the body so nested closures are found.
            i = after_params;
            continue;
        }
        i += 1;
    }
    out
}

/// Adds `let`/`for`/nested-closure bound names in `[a, b)` to `out`.
fn collect_bindings(toks: &[Token], a: usize, b: usize, out: &mut Vec<String>) {
    let mut i = a;
    let b = b.min(toks.len());
    while i < b {
        let t = &toks[i];
        if is_id(t, "let") {
            let mut j = i + 1;
            while j < b && !is_p(&toks[j], '=') && !is_p(&toks[j], ';') {
                if toks[j].kind == TokenKind::Ident
                    && !matches!(toks[j].text.as_str(), "mut" | "ref")
                {
                    out.push(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if is_id(t, "for") {
            let mut j = i + 1;
            while j < b && !is_id(&toks[j], "in") {
                if toks[j].kind == TokenKind::Ident && toks[j].text != "mut" {
                    out.push(toks[j].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if is_p(t, '|') && closure_position(toks, i) {
            i = closure_params(toks, i, out);
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Rule driver
// ---------------------------------------------------------------------

/// Runs the requested flow rules over one file's token stream.
pub fn check_file(
    path: &Path,
    toks: &[Token],
    allows: &Allows,
    scope: FileScope,
    rules: &[Rule],
    out: &mut Vec<Diagnostic>,
) {
    let want = |r: Rule| rules.contains(&r) && scope.rules().contains(&r);
    let fns = functions(toks);
    for f in &fns {
        if f.in_test {
            continue;
        }
        let mut push = |rule: Rule, line: u32, message: String| {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line,
                rule,
                message,
                allow: allows.state(rule, line),
            });
        };
        if want(Rule::BudgetBalance) {
            check_budget_balance(toks, f, &mut push);
        }
        if want(Rule::LockDiscipline) {
            check_lock_discipline(toks, f, &mut push);
        }
        if want(Rule::ParPurity) {
            check_par_purity(toks, f, &mut push);
        }
        if want(Rule::FloatTotality) {
            check_float_totality(toks, f, &mut push);
        }
    }
}

// ---------------------------------------------------------------------
// R5 — budget-balance
// ---------------------------------------------------------------------

fn check_budget_balance(toks: &[Token], f: &FlowFn, push: &mut impl FnMut(Rule, u32, String)) {
    let (lo, hi) = (f.body.start, (f.body.end + 1).min(toks.len()));
    for i in lo..hi {
        if is_method_call(toks, i) && toks[i].text == "try_debit" {
            if debit_handled(toks, f, i) {
                audit_success_path(toks, f, i, push);
            } else {
                push(
                    Rule::BudgetBalance,
                    toks[i].line,
                    format!(
                        "`.try_debit(…)` in `{}` has no typed rejection on its failure path: \
                         handle the `Err` (`?`, `return`, `match`, or `if let Err` + reject) \
                         instead of discarding it — a dropped debit failure serves a query \
                         the budget no longer covers",
                        f.name
                    ),
                );
            }
        }
    }
    check_double_release(toks, f, push);
}

/// Is the `.try_debit(` at `i` handled? Accepted forms: `?`, `return`,
/// tail position, `match` scrutinee, an `if` whose branch exits, or a
/// let-`else` whose block exits.
fn debit_handled(toks: &[Token], f: &FlowFn, i: usize) -> bool {
    if let Some(close) = matching_paren(toks, i + 1) {
        if toks.get(close + 1).is_some_and(|t| is_p(t, '?')) {
            return true;
        }
    }
    let Some(s) = stmt_at(&f.body, i) else {
        return false;
    };
    match s.kind {
        StmtKind::Return => true,
        StmtKind::Match => s.blocks.first().is_some_and(|b| i < b.start),
        StmtKind::If => {
            let in_cond = s.blocks.first().is_some_and(|b| i < b.start);
            in_cond
                && s.blocks
                    .iter()
                    .any(|b| span_exits(toks, b.start, (b.end + 1).min(toks.len())))
        }
        StmtKind::Let => s
            .blocks
            .iter()
            .any(|b| span_exits(toks, b.start, (b.end + 1).min(toks.len()))),
        _ => s.tail,
    }
}

/// After a successful debit, every error exit reachable on the success
/// path must release the debited share first.
fn audit_success_path(
    toks: &[Token],
    f: &FlowFn,
    debit: usize,
    push: &mut impl FnMut(Rule, u32, String),
) {
    let mut released = false;
    for s in successors(&f.body, debit) {
        released = scan_stmt_for_unreleased_reject(toks, f, s, released, push);
    }
}

fn has_release(toks: &[Token], a: usize, b: usize) -> bool {
    (a..b.min(toks.len()))
        .any(|i| is_method_call(toks, i) && (toks[i].text == "release" || toks[i].text == "spend"))
        || (a..b.min(toks.len())).any(|i| {
            toks[i].kind == TokenKind::Ident
                && toks[i].text.contains("release")
                && toks.get(i + 1).is_some_and(|t| is_p(t, '('))
        })
}

/// First error-construction in the statement's linear token ranges:
/// a `Rejected` variant anywhere, or `Err(` when the statement's value
/// escapes (return/tail).
fn find_reject(toks: &[Token], s: &Stmt, a: usize, b: usize) -> Option<u32> {
    for i in a..b.min(toks.len()) {
        let t = &toks[i];
        if is_id(t, "Rejected") {
            return Some(t.line);
        }
        if (s.kind == StmtKind::Return || s.tail)
            && is_id(t, "Err")
            && toks.get(i + 1).is_some_and(|x| is_p(x, '('))
        {
            return Some(t.line);
        }
    }
    None
}

fn scan_stmt_for_unreleased_reject(
    toks: &[Token],
    f: &FlowFn,
    s: &Stmt,
    released: bool,
    push: &mut impl FnMut(Rule, u32, String),
) -> bool {
    let tops = top_ranges(s);
    let top_rel = tops.iter().any(|&(a, b)| has_release(toks, a, b));
    if !released && !top_rel {
        if let Some(line) = tops.iter().find_map(|&(a, b)| find_reject(toks, s, a, b)) {
            push(
                Rule::BudgetBalance,
                line,
                format!(
                    "error exit after a successful `try_debit` in `{}` without a \
                     `.release(…)` of the debited share: the rejection burns budget \
                     for a call that produced no output",
                    f.name
                ),
            );
        }
    }
    for b in &s.blocks {
        let mut inner = released || top_rel;
        for st in &b.stmts {
            inner = scan_stmt_for_unreleased_reject(toks, f, st, inner, push);
        }
    }
    released || top_rel
}

/// Two `.release(…)` calls on one linear path double-credit the ledger.
fn check_double_release(toks: &[Token], f: &FlowFn, push: &mut impl FnMut(Rule, u32, String)) {
    let (lo, hi) = (f.body.start, (f.body.end + 1).min(toks.len()));
    for i in lo..hi {
        if !(is_method_call(toks, i) && toks[i].text == "release") {
            continue;
        }
        let flag = |line: u32, push: &mut dyn FnMut(Rule, u32, String)| {
            push(
                Rule::BudgetBalance,
                line,
                format!(
                    "second `.release(…)` on the same path in `{}`: a share must reach \
                     exactly one release — double-crediting mints budget out of thin air",
                    f.name
                ),
            );
        };
        // Same statement, after this call.
        if let Some(s) = stmt_at(&f.body, i) {
            for (a, b) in top_ranges(&Stmt {
                start: s.start,
                end: s.end,
                line: s.line,
                kind: s.kind,
                blocks: Vec::new(),
                tail: s.tail,
            }) {
                for j in a.max(i + 1)..b.min(hi) {
                    if is_method_call(toks, j) && toks[j].text == "release" {
                        flag(toks[j].line, push);
                    }
                }
            }
        }
        // Linear successors (top ranges only: branch arms are
        // alternative paths, not repeats).
        'succ: for s in successors(&f.body, i) {
            for (a, b) in top_ranges(s) {
                for j in a..b.min(hi) {
                    if is_method_call(toks, j) && toks[j].text == "release" {
                        flag(toks[j].line, push);
                        break 'succ;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R6 — lock-discipline
// ---------------------------------------------------------------------

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

fn check_lock_discipline(toks: &[Token], f: &FlowFn, push: &mut impl FnMut(Rule, u32, String)) {
    let (lo, hi) = (f.body.start, (f.body.end + 1).min(toks.len()));
    // (c) poison handling: a lock result must go through
    // `unwrap_or_else(PoisonError::into_inner)`, never `.unwrap()` — a
    // panic while holding the other side already proved the state is
    // consistent, and unwinding the whole server on it is the bug.
    for i in lo..hi {
        if is_method_call(toks, i) && LOCK_METHODS.contains(&toks[i].text.as_str()) {
            if let Some(close) = matching_paren(toks, i + 1) {
                if toks.get(close + 1).is_some_and(|t| is_p(t, '.'))
                    && toks
                        .get(close + 2)
                        .is_some_and(|t| is_id(t, "unwrap") || is_id(t, "expect"))
                {
                    push(
                        Rule::LockDiscipline,
                        toks[close + 2].line,
                        format!(
                            "`.{}().{}(…)` in `{}`: poisoning must be absorbed with \
                             `.unwrap_or_else(PoisonError::into_inner)` — the guarded state \
                             is only mutated through methods that leave it consistent, and \
                             propagating the panic takes every live session down",
                            toks[i].text,
                            toks[close + 2].text,
                            f.name
                        ),
                    );
                }
            }
        }
    }
    // (a)/(b) live-guard crossings.
    let mut live: Vec<String> = Vec::new();
    walk_guards(toks, f, &f.body, &mut live, push);
}

/// The guard name bound by `let [mut] NAME = <expr>.lock()…;`, if the
/// lock result itself is what's bound (a trailing field access or map
/// makes it a derived value whose guard dies at the `;`).
fn guard_binding(toks: &[Token], s: &Stmt) -> Option<String> {
    if s.kind != StmtKind::Let {
        return None;
    }
    let mut j = s.start;
    while j < s.end && !is_id(&toks[j], "let") {
        j += 1;
    }
    let mut name = None;
    for t in &toks[j + 1..s.end.min(toks.len())] {
        if t.kind == TokenKind::Ident && t.text != "mut" {
            name = Some(t.text.clone());
            break;
        }
    }
    let name = name?;
    let mut brace = 0i32;
    for i in j..s.end.min(toks.len()) {
        match toks[i].kind {
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => brace -= 1,
            _ => {}
        }
        // A lock taken inside a nested block (`let x = { let g = m.lock()…;
        // … };`) is scoped to that block — the let binds the block's value,
        // not the guard.
        if brace == 0 && is_method_call(toks, i) && LOCK_METHODS.contains(&toks[i].text.as_str()) {
            let mut k = matching_paren(toks, i + 1)? + 1;
            // Guard-preserving continuations only.
            loop {
                match toks.get(k) {
                    Some(t) if is_p(t, ';') => return Some(name),
                    Some(t) if is_p(t, '?') => k += 1,
                    Some(t)
                        if is_p(t, '.')
                            && toks.get(k + 1).is_some_and(|x| {
                                is_id(x, "unwrap_or_else")
                                    || is_id(x, "unwrap")
                                    || is_id(x, "expect")
                            }) =>
                    {
                        k = matching_paren(toks, k + 2)? + 1;
                    }
                    _ => return None,
                }
            }
        }
    }
    None
}

fn walk_guards(
    toks: &[Token],
    f: &FlowFn,
    block: &Block,
    live: &mut Vec<String>,
    push: &mut impl FnMut(Rule, u32, String),
) {
    let base = live.len();
    for s in &block.stmts {
        // Crossing checks against guards live *before* this statement,
        // over its linear ranges plus the branch header (sub-blocks are
        // handled by recursion below, with the same live set).
        if !live.is_empty() {
            let mut ranges = top_ranges(s);
            if matches!(s.kind, StmtKind::If | StmtKind::Match | StmtKind::Loop) {
                if let Some(b) = s.blocks.first() {
                    ranges.push((s.start, b.start));
                }
            }
            for (a, b) in ranges {
                for i in a..b.min(toks.len()) {
                    if !is_method_call(toks, i) {
                        continue;
                    }
                    let t = &toks[i];
                    if LOCK_METHODS.contains(&t.text.as_str()) {
                        push(
                            Rule::LockDiscipline,
                            t.line,
                            format!(
                                "`.{}(…)` in `{}` while guard `{}` is live: acquiring a \
                                 second lock under a held guard is an ordering/deadlock \
                                 hazard — drop or scope the guard first",
                                t.text,
                                f.name,
                                live.join("`, `")
                            ),
                        );
                    } else if t.text.starts_with("call_") {
                        push(
                            Rule::LockDiscipline,
                            t.line,
                            format!(
                                "mechanism `.{}(…)` in `{}` runs while guard `{}` is live: \
                                 holding a ledger/tenant guard across a mechanism call \
                                 serializes unrelated tenants and invites lock-order \
                                 inversion",
                                t.text,
                                f.name,
                                live.join("`, `")
                            ),
                        );
                    }
                }
            }
        }
        // `drop(name)` ends a guard's liveness.
        for i in s.start..s.end.min(toks.len()) {
            if is_id(&toks[i], "drop")
                && toks.get(i + 1).is_some_and(|t| is_p(t, '('))
                && toks.get(i + 3).is_some_and(|t| is_p(t, ')'))
            {
                if let Some(name) = toks.get(i + 2) {
                    live.retain(|g| g != &name.text);
                }
            }
        }
        for b in &s.blocks {
            walk_guards(toks, f, b, live, push);
        }
        if let Some(name) = guard_binding(toks, s) {
            live.push(name);
        }
    }
    live.truncate(base);
}

// ---------------------------------------------------------------------
// R7 — par-purity
// ---------------------------------------------------------------------

/// Identifiers whose mere presence in a parallel fill breaks the
/// pure-function-of-(seed, block) contract.
const R7_BANNED_IDENTS: [&str; 8] = [
    "thread_rng",
    "OsRng",
    "from_entropy",
    "SystemTime",
    "Instant",
    "thread_local",
    "ThreadId",
    "static",
];

/// Is this function part of the parallel fill surface?
fn par_scope(toks: &[Token], f: &FlowFn) -> bool {
    if f.name.starts_with("par_") || f.name.contains("_sharded") {
        return true;
    }
    if f.header.contains("ParallelDraws") {
        return true;
    }
    let (lo, hi) = (f.body.start, (f.body.end + 1).min(toks.len()));
    (lo..hi).any(|i| {
        (is_id(&toks[i], "thread") && toks.get(i + 2).is_some_and(|t| is_id(t, "scope")))
            || (is_id(&toks[i], "spawn") && is_method_call(toks, i))
    })
}

fn check_par_purity(toks: &[Token], f: &FlowFn, push: &mut impl FnMut(Rule, u32, String)) {
    if !par_scope(toks, f) {
        return;
    }
    let (lo, hi) = (f.body.start, (f.body.end + 1).min(toks.len()));
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if R7_BANNED_IDENTS.contains(&t.text.as_str()) || t.text.starts_with("Atomic") {
            push(
                Rule::ParPurity,
                t.line,
                format!(
                    "`{}` in parallel fill `{}`: block values must be a pure function of \
                     (run seed, block index) — thread identity, wall clock, OS entropy, \
                     statics, and atomics all vary with scheduling and break the \
                     thread-count-invariance contract",
                    t.text, f.name
                ),
            );
        }
        if is_id(t, "current")
            && i >= 3
            && is_id(&toks[i - 3], "thread")
            && is_p(&toks[i - 2], ':')
            && is_p(&toks[i - 1], ':')
        {
            push(
                Rule::ParPurity,
                t.line,
                format!(
                    "`thread::current` in parallel fill `{}`: deriving anything from the \
                     executing thread makes block values depend on scheduling, not on \
                     (run seed, block index)",
                    f.name
                ),
            );
        }
    }
    // Captured-state checks inside each closure: writes must target
    // names bound inside the closure (its disjoint slab), never a
    // captured accumulator.
    for c in closures_in(toks, lo, hi) {
        let local = |name: &str| name == "self" || c.locals.iter().any(|l| l == name);
        let (a, b) = c.body;
        for i in a..b.min(toks.len()) {
            let t = &toks[i];
            // `&mut x` borrow of a captured name.
            if is_p(t, '&')
                && toks.get(i + 1).is_some_and(|x| is_id(x, "mut"))
                && toks.get(i + 2).is_some_and(|x| x.kind == TokenKind::Ident)
                && !local(&toks[i + 2].text)
            {
                push(
                    Rule::ParPurity,
                    t.line,
                    format!(
                        "`&mut {}` captured by a block-fill closure in `{}`: shared \
                         mutable state across blocks makes the result depend on fill \
                         order — each closure may only write its own disjoint slab",
                        toks[i + 2].text,
                        f.name
                    ),
                );
            }
            // Assignment (`=`, `+=`, …) whose target chain is captured.
            if t.kind == TokenKind::Ident && !local(&t.text) {
                let base = chain_base(toks, i);
                if base != i {
                    continue; // not the head of its field chain
                }
                if is_assignment_target(toks, i) {
                    push(
                        Rule::ParPurity,
                        t.line,
                        format!(
                            "assignment to captured `{}` inside a block-fill closure in \
                             `{}`: a shared accumulator re-introduces the cross-thread \
                             ordering the per-block streams exist to remove",
                            t.text, f.name
                        ),
                    );
                }
            }
        }
    }
}

/// Walks back over a `.field` chain to its head identifier's index.
fn chain_base(toks: &[Token], mut i: usize) -> usize {
    while i >= 2 && is_p(&toks[i - 1], '.') && toks[i - 2].kind == TokenKind::Ident {
        i -= 2;
    }
    i
}

/// Is the identifier at `i` (possibly via a field chain) the target of
/// `=` or a compound assignment?
fn is_assignment_target(toks: &[Token], i: usize) -> bool {
    // Skip over the field chain: ident (. ident)*
    let mut j = i + 1;
    while toks.get(j).is_some_and(|t| is_p(t, '.'))
        && toks.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        j += 2;
    }
    match toks.get(j).map(|t| &t.kind) {
        Some(TokenKind::Punct('=')) => {
            // `=` but not `==`, `=>`.
            !toks
                .get(j + 1)
                .is_some_and(|t| is_p(t, '=') || is_p(t, '>'))
        }
        Some(TokenKind::Punct('+' | '-' | '*' | '/' | '%' | '^')) => {
            toks.get(j + 1).is_some_and(|t| is_p(t, '='))
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------
// R8 — float-totality
// ---------------------------------------------------------------------

/// Sort/selection methods whose comparator closure must be total.
const R8_COMPARATOR_METHODS: [&str; 6] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "select_nth_unstable_by",
];

fn check_float_totality(toks: &[Token], f: &FlowFn, push: &mut impl FnMut(Rule, u32, String)) {
    let (lo, hi) = (f.body.start, (f.body.end + 1).min(toks.len()));
    for i in lo..hi {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `.partial_cmp(` — the PR-5 NaN panic/mis-selection, verbatim.
        if t.text == "partial_cmp" && is_method_call(toks, i) {
            push(
                Rule::FloatTotality,
                t.line,
                format!(
                    "`.partial_cmp(…)` in `{}`: a NaN operand yields `None` and the \
                     `.unwrap()`/`unwrap_or` band-aids either panic or silently \
                     mis-select — use `f64::total_cmp`, which orders NaN deterministically",
                    f.name
                ),
            );
        }
        // Qualified `f64::max` / `f64::min` — the NaN-swallowing
        // reduction idiom (`.max(…)` clamps stay legal).
        if (t.text == "max" || t.text == "min")
            && i >= 3
            && is_id(&toks[i - 3], "f64")
            && is_p(&toks[i - 2], ':')
            && is_p(&toks[i - 1], ':')
        {
            push(
                Rule::FloatTotality,
                t.line,
                format!(
                    "`f64::{}` as a selection function in `{}`: it silently drops NaN \
                     (`max(NaN, x) = x`), so a poisoned utility wins or vanishes \
                     depending on argument order — fold with `f64::total_cmp` instead",
                    t.text, f.name
                ),
            );
        }
        // Raw comparator closures in sort/selection positions.
        if R8_COMPARATOR_METHODS.contains(&t.text.as_str()) && is_method_call(toks, i) {
            if let Some(close) = matching_paren(toks, i + 1) {
                for c in closures_in(toks, i + 2, close) {
                    let (a, b) = c.body;
                    let total = (a..b).any(|k| {
                        toks[k].kind == TokenKind::Ident
                            && (toks[k].text == "total_cmp" || toks[k].text == "cmp")
                    });
                    let raw = (a..b).any(|k| {
                        is_p(&toks[k], '<')
                            || is_p(&toks[k], '>')
                            || (toks[k].kind == TokenKind::Ident && toks[k].text == "partial_cmp")
                    });
                    if !total && raw {
                        push(
                            Rule::FloatTotality,
                            toks[c.start].line,
                            format!(
                                "raw `<`/`>` comparator passed to `.{}(…)` in `{}`: \
                                 partial float comparisons violate strict weak ordering \
                                 on NaN (UB-adjacent in sorts since Rust 1.81 panics on \
                                 it) — compare with `f64::total_cmp`",
                                t.text, f.name
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn body_of(src: &str, name: &str) -> (Vec<Token>, FlowFn) {
        let lexed = lex(src);
        let fns = functions(&lexed.tokens);
        let f = fns
            .into_iter()
            .find(|f| f.name == name)
            .expect("fn present");
        (lexed.tokens, f)
    }

    #[test]
    fn statement_boundaries_and_tail() {
        let (_, f) = body_of("fn f() -> u32 { let a = 1; g(a); a + 1 }", "f");
        assert_eq!(f.body.stmts.len(), 3);
        assert_eq!(f.body.stmts[0].kind, StmtKind::Let);
        assert!(!f.body.stmts[1].tail);
        assert!(f.body.stmts[2].tail);
    }

    #[test]
    fn early_return_is_classified() {
        let (_, f) = body_of("fn f(x: u32) { if x > 1 { return; } g(x); }", "f");
        assert_eq!(f.body.stmts[0].kind, StmtKind::If);
        assert_eq!(f.body.stmts[0].blocks.len(), 1);
        assert_eq!(f.body.stmts[0].blocks[0].stmts[0].kind, StmtKind::Return);
    }

    #[test]
    fn question_mark_marks_exit() {
        let (toks, f) = body_of("fn f() -> R { let v = io()?; use_it(v)?; Ok(()) }", "f");
        let s = &f.body.stmts[0];
        assert!(span_exits(&toks, s.start, s.end));
    }

    #[test]
    fn match_arms_become_blocks_and_exclude_patterns() {
        let src = "fn f(r: R) -> u32 { match r { Ok(v) => v, Err(e) => { log(e); 0 } } }";
        let (_, f) = body_of(src, "f");
        let m = &f.body.stmts[0];
        assert_eq!(m.kind, StmtKind::Match);
        assert_eq!(m.blocks.len(), 2);
        // Patterns (`Ok(v) =>`) are not part of any linear range.
        assert!(top_ranges(m).iter().all(|&(a, b)| a >= b || a > m.start));
    }

    #[test]
    fn let_else_divergence_block_is_captured() {
        let src = "fn f(o: Option<u32>) -> u32 { let Some(v) = o else { return 0; }; v }";
        let (toks, f) = body_of(src, "f");
        let s = &f.body.stmts[0];
        assert_eq!(s.kind, StmtKind::Let);
        assert_eq!(s.blocks.len(), 1);
        assert!(span_exits(&toks, s.blocks[0].start, s.blocks[0].end + 1));
    }

    #[test]
    fn successors_skip_sibling_arms() {
        let src =
            "fn f(x: u32) -> u32 { match x { 0 => { zero(); marker(); } _ => other(), } tail() }";
        let (toks, f) = body_of(src, "f");
        let pos = toks.iter().position(|t| t.text == "marker").unwrap();
        let succ = successors(&f.body, pos);
        // Successor statements: nothing else in the arm, then `tail()` in
        // the fn body — never the sibling `other()` arm.
        let texts: Vec<bool> = succ
            .iter()
            .map(|s| (s.start..s.end).any(|i| toks[i].text == "other"))
            .collect();
        assert!(texts.iter().all(|found| !found));
        assert!(succ
            .iter()
            .any(|s| (s.start..s.end).any(|i| toks[i].text == "tail")));
    }

    #[test]
    fn nested_closures_each_get_their_own_locals() {
        let src = "fn f(v: &[u32]) { v.iter().map(|x| v.iter().filter(|y| y > x).count() + x).sum::<usize>(); }";
        let (toks, f) = body_of(src, "f");
        let cs = closures_in(&toks, f.body.start, f.body.end);
        assert_eq!(cs.len(), 2);
        assert!(cs[0].locals.iter().any(|l| l == "x"));
        // The outer closure also knows the nested `y` (over-collection in
        // the silent direction), the inner knows only its own.
        assert!(cs[0].locals.iter().any(|l| l == "y"));
        assert!(cs[1].locals.iter().any(|l| l == "y"));
        assert!(!cs[1].locals.iter().any(|l| l == "x"));
    }

    #[test]
    fn boolean_or_is_not_a_closure() {
        let src = "fn f(a: bool, b: bool) -> bool { a || b }";
        let (toks, f) = body_of(src, "f");
        assert!(closures_in(&toks, f.body.start, f.body.end).is_empty());
    }

    #[test]
    fn guard_binding_requires_the_guard_itself() {
        let src = "fn f(&self) { let g = self.m.lock().unwrap_or_else(PoisonError::into_inner); let n = self.m.lock().unwrap_or_else(PoisonError::into_inner).len(); }";
        let (toks, f) = body_of(src, "f");
        assert_eq!(guard_binding(&toks, &f.body.stmts[0]).as_deref(), Some("g"));
        // `n` binds a derived value; the temporary guard dies at the `;`.
        assert_eq!(guard_binding(&toks, &f.body.stmts[1]), None);
    }
}
