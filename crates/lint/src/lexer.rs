//! A minimal Rust tokenizer — just enough syntax awareness for the four
//! invariant rules, and nothing more.
//!
//! The container is offline, so `syn` is not an option; it also is not
//! needed. The rules only have to distinguish *code* from comments and
//! string literals (so a `.unwrap()` in a doc example or an error message
//! never counts), resolve identifiers exactly (so banning `staircase` never
//! matches `staircase_next`), and keep line numbers for `file:line`
//! diagnostics. Everything structural (functions, impl headers, `#[cfg(test)]`
//! spans) is layered on top by [`crate::scanner`].
//!
//! Comments are not discarded: line comments are returned alongside the
//! token stream because the allowlist syntax
//! (`// lint:allow(rule): reason`) lives in them.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Classification (identifier, literal, single punctuation char, …).
    pub kind: TokenKind,
    /// Source text for identifiers and lifetimes; empty for the other kinds
    /// (rules never need literal or punctuation text beyond the kind).
    pub text: String,
    /// 1-indexed source line the token starts on.
    pub line: u32,
}

/// Token classification.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`, with the `r#` stripped).
    Ident,
    /// Numeric literal.
    Number,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A `//` comment with its line, used by the allowlist parser.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// 1-indexed source line.
    pub line: u32,
    /// Comment text after the `//` (including any `/`/`!` doc markers).
    pub text: String,
}

/// The full lex of one file.
#[derive(Debug)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

/// Tokenizes Rust source. Unterminated literals/comments end the token at
/// end-of-file instead of failing: a lint must degrade gracefully on code
/// rustc itself would reject.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let n = bytes.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_continue = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                comments.push(LineComment {
                    line,
                    text: bytes[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Nested block comments, tracking newlines for line counts.
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, newlines) = skip_string(&bytes, i);
                // String contents are kept (quotes stripped): the taxonomy
                // rule reads mechanism names out of `MECHANISM_PATHS`.
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: bytes[i + 1..j.saturating_sub(1).max(i + 1)]
                        .iter()
                        .collect(),
                    line,
                });
                line += newlines;
                i = j;
            }
            'r' | 'b' if raw_string_hashes(&bytes, i).is_some() => {
                let hashes = raw_string_hashes(&bytes, i).unwrap();
                let (j, newlines) = skip_raw_string(&bytes, i, hashes);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                line += newlines;
                i = j;
            }
            '\'' => {
                // Lifetime or char literal. `'a` / `'static` are lifetimes;
                // `'x'`, `'\n'`, `'\u{7f}'` are char literals.
                if i + 1 < n && bytes[i + 1] == '\\' {
                    // Escaped char literal.
                    let mut j = i + 2;
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = (j + 1).min(n);
                } else if i + 1 < n && is_ident_start(bytes[i + 1]) {
                    let mut j = i + 1;
                    while j < n && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' {
                        // 'x' — single-ident-char literal closed by a quote.
                        tokens.push(Token {
                            kind: TokenKind::Literal,
                            text: String::new(),
                            line,
                        });
                        i = j + 1;
                    } else {
                        tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            text: bytes[i + 1..j].iter().collect(),
                            line,
                        });
                        i = j;
                    }
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    // Non-ident char like '+'.
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i += 3;
                } else {
                    i += 1;
                }
            }
            c if is_ident_start(c) => {
                let start = if c == 'r' && i + 1 < n && bytes[i + 1] == '#' {
                    i + 2 // raw identifier r#ident
                } else {
                    i
                };
                let mut j = start.max(i);
                if start > i {
                    j = start;
                }
                while j < n && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                if j == start && start > i {
                    // Lone `r#` — not an identifier after all.
                    tokens.push(Token {
                        kind: TokenKind::Punct('#'),
                        text: String::new(),
                        line,
                    });
                    i += 2;
                    continue;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: bytes[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Numbers including `1.5`, `1e-4`, `0xff`, `1_000u64`. A `.`
                // is part of the number only when followed by a digit, so
                // method calls like `1.0f64.ln()` still tokenize the `.ln`.
                let mut j = i + 1;
                while j < n {
                    let d = bytes[j];
                    if d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && j + 1 < n && bytes[j + 1].is_ascii_digit())
                    {
                        j += 1;
                    } else if (d == '+' || d == '-')
                        && matches!(bytes[j - 1], 'e' | 'E')
                        && bytes[i..j].iter().any(|&x| x == 'e' || x == 'E')
                    {
                        j += 1; // exponent sign in 1e-4
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: String::new(),
                    line,
                });
                i = j;
            }
            c => {
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments }
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br##"`, …),
/// returns the number of `#`s; otherwise `None`.
fn raw_string_hashes(bytes: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    (j < bytes.len() && bytes[j] == '"').then_some(hashes)
}

/// Skips a `"…"` literal starting at `i`; returns (index after the closing
/// quote, newlines inside).
fn skip_string(bytes: &[char], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0;
    while j < bytes.len() {
        match bytes[j] {
            '\\' => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            '"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Skips a raw string with `hashes` `#`s starting at `i` (at the `r`/`b`).
fn skip_raw_string(bytes: &[char], i: usize, hashes: usize) -> (usize, u32) {
    let mut j = i;
    while j < bytes.len() && bytes[j] != '"' {
        j += 1;
    }
    j += 1;
    let mut newlines = 0;
    while j < bytes.len() {
        if bytes[j] == '\n' {
            newlines += 1;
            j += 1;
        } else if bytes[j] == '"'
            && bytes[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return (j + 1 + hashes, newlines);
        } else {
            j += 1;
        }
    }
    (j, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_produce_idents() {
        let src = r##"
            // a comment mentioning unwrap() and panic!
            /* block with .expect("x") /* nested */ still comment */
            let s = "contains unwrap() inside";
            let r = r#"raw with .ln() inside"#;
            real_ident();
        "##;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "real_ident"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
        let l = lex(src);
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nbreak\";\nmarker();";
        let l = lex(src);
        let marker = l
            .tokens
            .iter()
            .find(|t| t.text == "marker")
            .expect("marker token");
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn line_comments_are_recorded() {
        let src = "code();\n// lint:allow(panic-freedom): reason\nmore();";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.contains("lint:allow"));
    }

    #[test]
    fn method_call_on_float_literal_keeps_ln_ident() {
        assert_eq!(idents("let x = 2.0f64.ln();"), vec!["let", "x", "ln"]);
    }

    #[test]
    fn numeric_exponents_do_not_eat_operators() {
        // `1e-4` is one number; `1 - 4` is three tokens.
        let l = lex("a(1e-4); b(1 - 4);");
        let minuses = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('-'))
            .count();
        assert_eq!(minuses, 1);
    }
}
