//! R4 — taxonomy completeness, the cross-file structural rule.
//!
//! Every mechanism that exposes a `*_with_scratch` fast path must:
//!
//! 1. expose the allocation-free `*_with_scratch_into` twin (the bench grid
//!    drives the `_into` paths, so a missing twin silently drops the
//!    mechanism out of the timed loops),
//! 2. appear in the `scratch_equivalence` suite (otherwise nothing proves
//!    the fast path bit-identical to the reference), and
//! 3. appear in the bench `MECHANISM_PATHS` grid (otherwise `bench-check`
//!    cannot notice the cell going missing).
//!
//! The reverse directions hold too: every `MECHANISM_PATHS` name must
//! resolve to a type with a scratch path and an equivalence entry — a
//! mechanism added to the grid without an equivalence test is exactly the
//! gap this rule exists to close.
//!
//! Exemptions use the same allow syntax as the token rules:
//! `// lint:allow(taxonomy): reason` on (or above) the `fn` line skips the
//! twin check for that entry point (e.g. a scalar-returning winner index
//! with no buffer to reuse), and a file-level
//! `// lint:allow-file(taxonomy): reason` skips a whole file (the broken
//! zoo is attacked, not benched).

use crate::allow;
use crate::lexer::{lex, Token, TokenKind};
use crate::{Diagnostic, Rule};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// One `*_with_scratch*` entry point found in the core sources.
#[derive(Debug)]
struct ScratchFn {
    file: PathBuf,
    line: u32,
    allowed: bool,
}

/// Everything R4 extracts from the tree before cross-checking.
#[derive(Debug, Default)]
pub struct Inventory {
    /// type name → method name → site.
    types: BTreeMap<String, BTreeMap<String, ScratchFn>>,
    /// Identifiers appearing in the equivalence suite.
    equivalence_idents: Vec<String>,
    /// Mechanism names in `MECHANISM_PATHS`, with the literal's line.
    grid: Vec<(String, u32)>,
}

impl Inventory {
    /// Sorted list of mechanism type names exposing a scratch fast path —
    /// the seed for the exhaustiveness test that pins today's taxonomy.
    pub fn mechanism_types(&self) -> Vec<String> {
        self.types.keys().cloned().collect()
    }

    /// Sorted mechanism names of the bench grid.
    pub fn grid_mechanisms(&self) -> Vec<String> {
        let mut v: Vec<String> = self.grid.iter().map(|(n, _)| n.clone()).collect();
        v.sort();
        v
    }
}

/// Collects the inventory from the core sources, the equivalence suite and
/// the bench grid file.
pub fn inventory(core_src: &Path, equivalence: &Path, perf: &Path) -> io::Result<Inventory> {
    let mut inv = Inventory::default();
    for file in crate::rust_files(core_src)? {
        collect_scratch_fns(&file, &mut inv)?;
    }
    let eq_src = std::fs::read_to_string(equivalence)?;
    inv.equivalence_idents = lex(&eq_src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect();
    let perf_src = std::fs::read_to_string(perf)?;
    inv.grid = grid_mechanisms(&lex(&perf_src).tokens);
    Ok(inv)
}

/// Runs the cross-checks over a collected inventory.
pub fn check(inv: &Inventory, equivalence: &Path, perf: &Path, out: &mut Vec<Diagnostic>) {
    for (ty, fns) in &inv.types {
        let mut anchor: Option<(&PathBuf, u32)> = None;
        for (name, site) in fns {
            anchor.get_or_insert((&site.file, site.line));
            if name.ends_with("_with_scratch") && !site.allowed {
                let twin = format!("{name}_into");
                if !fns.contains_key(&twin) {
                    out.push(Diagnostic {
                        file: site.file.clone(),
                        line: site.line,
                        rule: Rule::Taxonomy,
                        allow: crate::AllowState::None,
                        message: format!(
                            "`{ty}::{name}` has no `{twin}` twin: every scratch fast path \
                             needs the out-parameter variant the bench grid drives \
                             (allocation-free timed loops)"
                        ),
                    });
                }
            }
        }
        let (file, line) = anchor.map(|(f, l)| (f.clone(), l)).unwrap_or_default();
        if !inv.equivalence_idents.iter().any(|i| i == ty) {
            out.push(Diagnostic {
                file: file.clone(),
                line,
                rule: Rule::Taxonomy,
                allow: crate::AllowState::None,
                message: format!(
                    "`{ty}` exposes a scratch fast path but never appears in the \
                     scratch_equivalence suite ({}): nothing proves the fast path \
                     bit-identical to the reference",
                    equivalence.display()
                ),
            });
        }
        if !inv.grid.iter().any(|(n, _)| n == ty) {
            out.push(Diagnostic {
                file,
                line,
                rule: Rule::Taxonomy,
                allow: crate::AllowState::None,
                message: format!(
                    "`{ty}` exposes a scratch fast path but is missing from \
                     MECHANISM_PATHS ({}): bench-check cannot guard cells that \
                     were never declared",
                    perf.display()
                ),
            });
        }
    }
    for (name, line) in &inv.grid {
        if !inv.types.contains_key(name) {
            out.push(Diagnostic {
                file: perf.to_path_buf(),
                line: *line,
                rule: Rule::Taxonomy,
                allow: crate::AllowState::None,
                message: format!(
                    "MECHANISM_PATHS lists `{name}` but no type of that name exposes a \
                     `*_with_scratch` entry point in the core sources"
                ),
            });
        }
        if !inv.equivalence_idents.iter().any(|i| i == name) {
            out.push(Diagnostic {
                file: perf.to_path_buf(),
                line: *line,
                rule: Rule::Taxonomy,
                allow: crate::AllowState::None,
                message: format!(
                    "`{name}` is benched in MECHANISM_PATHS but has no \
                     scratch_equivalence entry ({}): a grid cell without an \
                     equivalence test can drift from the reference unnoticed",
                    equivalence.display()
                ),
            });
        }
    }
}

/// Collects `fn *_with_scratch*` names per impl type from one file.
fn collect_scratch_fns(path: &Path, inv: &mut Inventory) -> io::Result<()> {
    let src = std::fs::read_to_string(path)?;
    let lexed = lex(&src);
    let allows = allow::parse(&lexed.comments);
    if allows.is_allowed(Rule::Taxonomy, u32::MAX) {
        // File-level allow: nothing in this file participates in R4.
        return Ok(());
    }
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && toks[i].text == "impl" {
            if let Some((ty, body_start)) = parse_impl_header(toks, i + 1) {
                let body_end = matching_brace(toks, body_start);
                let mut j = body_start + 1;
                while j + 1 < body_end {
                    if toks[j].kind == TokenKind::Ident
                        && toks[j].text == "fn"
                        && toks[j + 1].kind == TokenKind::Ident
                        && toks[j + 1].text.contains("_with_scratch")
                    {
                        let name = toks[j + 1].text.clone();
                        let line = toks[j].line;
                        inv.types.entry(ty.clone()).or_default().insert(
                            name,
                            ScratchFn {
                                file: path.to_path_buf(),
                                line,
                                allowed: allows.is_allowed(Rule::Taxonomy, line),
                            },
                        );
                    }
                    j += 1;
                }
                i = body_end;
                continue;
            }
        }
        i += 1;
    }
    Ok(())
}

/// Parses an impl header starting right after the `impl` token. Returns the
/// implemented type's name (the path after `for` when present, the
/// self-type otherwise) and the index of the body's `{`.
fn parse_impl_header(toks: &[Token], mut i: usize) -> Option<(String, usize)> {
    // Skip `<generics>` (angle depth; impl headers contain no `->`).
    if matches!(toks.get(i).map(|t| &t.kind), Some(TokenKind::Punct('<'))) {
        let mut depth = 0i32;
        while i < toks.len() {
            match toks[i].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut ty: Option<String> = None;
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => depth -= 1,
            TokenKind::Punct('{') if depth <= 0 => return ty.map(|t| (t, i)),
            TokenKind::Ident if depth <= 0 => {
                let t = toks[i].text.as_str();
                if t == "for" {
                    ty = None; // the self-type follows; restart capture
                } else if t == "where" {
                    // bounds only from here on; keep the captured type
                } else if ty.is_none() && t != "dyn" {
                    ty = Some(t.to_string());
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Extracts `(name, line)` for each mechanism in the `MECHANISM_PATHS`
/// array literal: the string literal directly following a `(` inside the
/// array (path strings follow `[` or `,` instead).
fn grid_mechanisms(toks: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident && toks[i].text == "MECHANISM_PATHS" {
            // Require an `=` before any top-level `;` — i.e. the definition,
            // not a later use.
            let mut j = i + 1;
            let mut bracket = 0i32;
            let mut is_def = false;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct('[') | TokenKind::Punct('(') => bracket += 1,
                    TokenKind::Punct(']') | TokenKind::Punct(')') => bracket -= 1,
                    TokenKind::Punct('=') if bracket == 0 => {
                        is_def = true;
                        break;
                    }
                    TokenKind::Punct(';') if bracket == 0 => break,
                    TokenKind::Punct('{') if bracket == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if is_def {
                // Advance to the array's `[`, then walk it.
                while j < toks.len() && toks[j].kind != TokenKind::Punct('[') {
                    j += 1;
                }
                let mut depth = 0i32;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokenKind::Punct('[') => depth += 1,
                        TokenKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                return out;
                            }
                        }
                        TokenKind::Literal
                            if matches!(
                                toks.get(j - 1).map(|t| &t.kind),
                                Some(TokenKind::Punct('('))
                            ) =>
                        {
                            out.push((toks[j].text.clone(), toks[j].line));
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impl_header_variants_resolve_the_self_type() {
        let cases = [
            ("impl NoisyTopKWithGap { }", "NoisyTopKWithGap"),
            (
                "impl<R: Rng + ?Sized> DrawProvider for ScratchDraws<'_, R> { }",
                "ScratchDraws",
            ),
            ("impl Default for SvtScratch { }", "SvtScratch"),
            ("impl<T> Foo<T> where T: Clone { }", "Foo"),
        ];
        for (src, want) in cases {
            let toks = lex(src).tokens;
            let (ty, _) = parse_impl_header(&toks, 1).expect(src);
            assert_eq!(ty, want, "{src}");
        }
    }

    #[test]
    fn grid_extraction_takes_mechanism_names_only() {
        let src = r#"
            pub const MECHANISM_PATHS: [(&str, &[&str]); 2] = [
                ("NoisyTopKWithGap", &["dyn", "scratch"]),
                ("ClassicSparseVector", &["dyn", "scratch", "streaming"]),
            ];
            fn use_it() { for (m, p) in MECHANISM_PATHS { drop((m, p)); } }
        "#;
        let names: Vec<String> = grid_mechanisms(&lex(src).tokens)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["NoisyTopKWithGap", "ClassicSparseVector"]);
    }
}
