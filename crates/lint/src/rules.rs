//! The three token-level rules: stream-discipline (R1), endpoint-guard
//! (R2), and panic-freedom (R3). The cross-file taxonomy rule (R4) lives in
//! [`crate::taxonomy`].

use crate::allow::Allows;
use crate::lexer::{Token, TokenKind};
use crate::scanner::ScopedToken;
use crate::{Diagnostic, Rule};
use std::path::Path;

/// Which crate a file belongs to, which decides the rules that apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FileScope {
    /// `crates/core/src` — mechanism cores: R1 + R3 + R5 + R7 + R8.
    Core,
    /// `crates/noise/src` — samplers and transforms: R2 + R3 + R7 + R8.
    Noise,
    /// `crates/serve/src` — the multi-tenant serving layer:
    /// R1 + R3 + R5 + R6 + R8. Serving code dispatches through the unified
    /// `api` surface, so any provider-generic helper it grows is held to
    /// the same stream discipline as the cores — and a panic here takes
    /// live sessions down.
    Serve,
    /// `crates/attack/src` — the audit harness: R3 + R8. A panic
    /// mid-board loses the whole audit; a NaN-partial sort mis-ranks the
    /// detection statistics it gates on.
    Attack,
    /// `crates/bench/src` — grid, baselines, and the `repro` CLI:
    /// R3 + R8. A panicking cell invalidates a whole timing run; NaN
    /// partial sorts corrupt the percentile estimates CI compares.
    Bench,
}

impl FileScope {
    /// The per-file rules active in this scope (R4 is tree-level and not
    /// listed). This single table is what both the token tier and the
    /// dataflow tier consult.
    pub fn rules(self) -> &'static [Rule] {
        match self {
            FileScope::Core => &[
                Rule::StreamDiscipline,
                Rule::PanicFreedom,
                Rule::BudgetBalance,
                Rule::ParPurity,
                Rule::FloatTotality,
            ],
            FileScope::Noise => &[
                Rule::EndpointGuard,
                Rule::PanicFreedom,
                Rule::ParPurity,
                Rule::FloatTotality,
            ],
            FileScope::Serve => &[
                Rule::StreamDiscipline,
                Rule::PanicFreedom,
                Rule::BudgetBalance,
                Rule::LockDiscipline,
                Rule::FloatTotality,
            ],
            FileScope::Attack | FileScope::Bench => &[Rule::PanicFreedom, Rule::FloatTotality],
        }
    }
}

/// Method names whose call inside a stream-disciplined scope bypasses the
/// provider: raw RNG draws, direct distribution sampling, and the
/// `NoiseSource` hooks. Identifier-exact, so `staircase` never matches
/// `staircase_next` (the legitimate provider method).
const R1_BANNED_CALLS: [&str; 18] = [
    // rand::Rng surface
    "sample",
    "gen",
    "gen_range",
    "gen_bool",
    "next_u32",
    "next_u64",
    "fill_bytes",
    // distribution batch/sample surface (free-gap-noise)
    "sample_value",
    "sample_index",
    "fill_into",
    "fill_into_offset",
    "fill_values_into",
    "fill_values_into_offset",
    // dyn NoiseSource hooks
    "laplace",
    "discrete_laplace",
    "gumbel",
    "exponential",
    "staircase",
];

/// Bare identifiers that mark raw-stream plumbing inside a
/// stream-disciplined scope (constructing an RNG or a sampling source where
/// only a provider may draw).
const R1_BANNED_IDENTS: [&str; 3] = ["FastRng", "rng_from_seed", "SamplingSource"];

/// Panic surfaces banned by R3: `.name(` method calls…
const R3_BANNED_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];
/// …and `name!(` macros. `debug_assert*` stays legal: it compiles out of
/// release builds, so it cannot take a serving path down.
const R3_BANNED_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// True when the token at `i` is an identifier called as a method:
/// preceded by `.`, followed by `(`, `::` (turbofish) or `<`.
fn is_method_call(scoped: &[ScopedToken<'_>], i: usize) -> bool {
    if i == 0 || scoped[i].tok.kind != TokenKind::Ident {
        return false;
    }
    if scoped[i - 1].tok.kind != TokenKind::Punct('.') {
        return false;
    }
    matches!(
        scoped.get(i + 1).map(|s| &s.tok.kind),
        Some(TokenKind::Punct('(')) | Some(TokenKind::Punct(':')) | Some(TokenKind::Punct('<'))
    )
}

/// True when the token at `i` is a macro invocation `ident!`.
fn is_macro_call(scoped: &[ScopedToken<'_>], i: usize) -> bool {
    scoped[i].tok.kind == TokenKind::Ident
        && matches!(
            scoped.get(i + 1).map(|s| &s.tok.kind),
            Some(TokenKind::Punct('!'))
        )
}

/// A function is stream-disciplined (R1 scope) when it is generic over a
/// draw provider, or implements one of the stream-owning providers: the
/// blocked `ScratchDraws` tape, or the per-block `BlockSeqDraws` /
/// `ParallelDraws` pair (whose whole contract is that every draw comes off
/// a derived sub-stream). The draw-exact providers (`SourceDraws`,
/// `RngDraws`) sample directly by design and are exempt.
fn r1_in_scope(ctx: &crate::scanner::Ctx) -> bool {
    let header = ctx.header.as_deref().unwrap_or("");
    if header.contains("SourceDraws") || header.contains("RngDraws") {
        return false;
    }
    if ctx
        .fn_sig
        .as_deref()
        .is_some_and(|s| s.contains("DrawProvider"))
    {
        return true;
    }
    header.contains("DrawProvider")
        && (header.contains("ScratchDraws")
            || header.contains("BlockSeqDraws")
            || header.contains("ParallelDraws"))
}

/// A function is a uniform transform (R2 scope) when its name says it maps
/// uniforms (or an RNG stream) to noise: `sample*`, `fill_*`, or
/// `*from_uniform*`. Pure math like `quantile`/`pdf`/`cdf` takes caller
/// probabilities, not tape uniforms, and stays out of scope.
fn r2_in_scope(ctx: &crate::scanner::Ctx) -> bool {
    ctx.fn_name.as_deref().is_some_and(|name| {
        name.starts_with("sample") || name.starts_with("fill_") || name.contains("from_uniform")
    })
}

/// True when the tokens immediately before the `.` at `dot` close a
/// `.max(f64::MIN_POSITIVE)` call — the endpoint guard.
fn guarded_by_min_positive(scoped: &[ScopedToken<'_>], dot: usize) -> bool {
    // Expect: … .  max  (  f64  ::  MIN_POSITIVE  )  .  ln
    //                                              ^ dot-1
    if dot < 8 {
        return false;
    }
    let t = |k: usize| &scoped[k].tok;
    t(dot - 1).kind == TokenKind::Punct(')')
        && t(dot - 2).kind == TokenKind::Ident
        && t(dot - 2).text == "MIN_POSITIVE"
        && t(dot - 3).kind == TokenKind::Punct(':')
        && t(dot - 4).kind == TokenKind::Punct(':')
        && t(dot - 5).text == "f64"
        && t(dot - 6).kind == TokenKind::Punct('(')
        && t(dot - 7).text == "max"
        && t(dot - 8).kind == TokenKind::Punct('.')
}

/// Runs the requested token-level rules over one scoped file.
pub fn check_file(
    path: &Path,
    scoped: &[ScopedToken<'_>],
    allows: &Allows,
    scope: FileScope,
    rules: &[Rule],
    out: &mut Vec<Diagnostic>,
) {
    let want = |r: Rule| rules.contains(&r) && scope.rules().contains(&r);
    let push = |rule: Rule, tok: &Token, message: String, out: &mut Vec<Diagnostic>| {
        out.push(Diagnostic {
            file: path.to_path_buf(),
            line: tok.line,
            rule,
            message,
            allow: allows.state(rule, tok.line),
        });
    };

    for i in 0..scoped.len() {
        let st = &scoped[i];
        if st.ctx.in_test {
            continue;
        }
        let text = st.tok.text.as_str();

        // R1 — stream discipline.
        if want(Rule::StreamDiscipline) && r1_in_scope(&st.ctx) {
            let here = st
                .ctx
                .fn_name
                .as_deref()
                .map(|f| format!("`{f}`"))
                .unwrap_or_else(|| "a stream-disciplined scope".into());
            if is_method_call(scoped, i) && R1_BANNED_CALLS.contains(&text) {
                push(
                    Rule::StreamDiscipline,
                    st.tok,
                    format!(
                        "direct `.{text}(…)` draw inside {here}: randomness in a \
                         provider-generic core (and in the blocked ScratchDraws provider) \
                         must flow through DrawProvider methods so lookahead cannot \
                         silently desynchronize the stream"
                    ),
                    out,
                );
            } else if !is_method_call(scoped, i) && R1_BANNED_IDENTS.contains(&text) {
                push(
                    Rule::StreamDiscipline,
                    st.tok,
                    format!(
                        "`{text}` referenced inside {here}: provider-generic cores must \
                         not construct or touch raw RNG streams"
                    ),
                    out,
                );
            }
        }

        // R2 — endpoint guard.
        if want(Rule::EndpointGuard)
            && scope == FileScope::Noise
            && text == "ln"
            && is_method_call(scoped, i)
            && r2_in_scope(&st.ctx)
            && !guarded_by_min_positive(scoped, i - 1)
        {
            let fn_name = st.ctx.fn_name.as_deref().unwrap_or("?");
            push(
                Rule::EndpointGuard,
                st.tok,
                format!(
                    "unguarded `.ln()` in uniform transform `{fn_name}`: a tape uniform \
                     can be exactly 0 or 1, so the operand must be clamped as \
                     `.max(f64::MIN_POSITIVE).ln()` to keep every draw finite"
                ),
                out,
            );
        }

        // R3 — panic freedom (applies to both crates).
        if want(Rule::PanicFreedom) {
            if is_method_call(scoped, i) && R3_BANNED_METHODS.contains(&text) {
                push(
                    Rule::PanicFreedom,
                    st.tok,
                    format!(
                        "`.{text}(…)` in non-test mechanism code: return a typed \
                         `MechanismError` (or justify with \
                         `// lint:allow(panic-freedom): reason`)"
                    ),
                    out,
                );
            } else if is_macro_call(scoped, i) && R3_BANNED_MACROS.contains(&text) {
                push(
                    Rule::PanicFreedom,
                    st.tok,
                    format!(
                        "`{text}!` in non-test mechanism code: return a typed \
                         `MechanismError` (or justify with \
                         `// lint:allow(panic-freedom): reason`)"
                    ),
                    out,
                );
            }
        }
    }

    // Malformed allow annotations are findings under whichever rules run:
    // a typoed allow silently suppresses nothing while looking load-bearing.
    for (line, message) in &allows.malformed {
        out.push(Diagnostic {
            file: path.to_path_buf(),
            line: *line,
            rule: rules.first().copied().unwrap_or(Rule::PanicFreedom),
            message: message.clone(),
            allow: crate::AllowState::None,
        });
    }
}
