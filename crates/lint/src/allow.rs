//! The allowlist syntax: `// lint:allow(rule): reason`.
//!
//! An allow on line `L` suppresses diagnostics of the named rule on line `L`
//! (trailing comment) and line `L + 1` (annotation-above convention).
//! `// lint:allow-file(rule): reason` anywhere in a file suppresses the rule
//! for the whole file. A non-empty reason is mandatory — an unexplained
//! exemption is itself a finding, and so is naming a rule that does not
//! exist (a typoed allow would otherwise silently suppress nothing while
//! looking like it suppresses something).

use crate::lexer::LineComment;
use crate::{AllowState, Rule};

/// Parsed allows of one file.
#[derive(Debug, Default)]
pub struct Allows {
    /// (line of the allow comment, rule) pairs.
    line_allows: Vec<(u32, Rule)>,
    /// Rules suppressed file-wide.
    file_allows: Vec<Rule>,
    /// Malformed annotations: (line, message).
    pub malformed: Vec<(u32, String)>,
}

impl Allows {
    /// True when `rule` diagnostics at `line` are suppressed.
    pub fn is_allowed(&self, rule: Rule, line: u32) -> bool {
        self.state(rule, line) != AllowState::None
    }

    /// How (if at all) `rule` diagnostics at `line` are suppressed — the
    /// value carried into [`crate::Diagnostic::allow`] and the `--json`
    /// report.
    pub fn state(&self, rule: Rule, line: u32) -> AllowState {
        if self.file_allows.contains(&rule) {
            AllowState::File
        } else if self
            .line_allows
            .iter()
            .any(|&(l, r)| r == rule && (l == line || l + 1 == line))
        {
            AllowState::Line
        } else {
            AllowState::None
        }
    }
}

/// Plain Levenshtein distance — small inputs only (rule names).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest valid rule id to a misspelled one, when it is close enough
/// to plausibly be a typo (distance ≤ 3): `budget-balence` suggests
/// `budget-balance`, but an unrelated name gets the full rule list.
fn nearest_rule(name: &str) -> Option<&'static str> {
    Rule::ALL
        .into_iter()
        .map(|r| (edit_distance(name, r.name()), r.name()))
        .min()
        .filter(|&(d, _)| d <= 3)
        .map(|(_, n)| n)
}

/// Parses every `lint:allow` annotation out of a file's line comments.
pub fn parse(comments: &[LineComment]) -> Allows {
    let mut allows = Allows::default();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let (body, file_wide) = if let Some(rest) = text.strip_prefix("lint:allow-file") {
            (rest, true)
        } else if let Some(rest) = text.strip_prefix("lint:allow") {
            (rest, false)
        } else {
            continue;
        };
        let Some(rest) = body.strip_prefix('(') else {
            allows.malformed.push((
                c.line,
                "lint:allow must name a rule: `lint:allow(rule): reason`".into(),
            ));
            continue;
        };
        let Some((name, after)) = rest.split_once(')') else {
            allows
                .malformed
                .push((c.line, "unclosed rule name in lint:allow".into()));
            continue;
        };
        let Some(rule) = Rule::from_name(name.trim()) else {
            let hint = match nearest_rule(name.trim()) {
                Some(n) => format!("did you mean `{n}`?"),
                None => format!(
                    "expected one of: {}",
                    Rule::ALL.map(|r| r.name()).join(", ")
                ),
            };
            allows.malformed.push((
                c.line,
                format!("lint:allow names unknown rule `{}` ({hint})", name.trim()),
            ));
            continue;
        };
        let reason_ok = after
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !reason_ok {
            allows.malformed.push((
                c.line,
                format!(
                    "lint:allow({}) needs a justification: `lint:allow({}): reason`",
                    rule.name(),
                    rule.name()
                ),
            ));
            continue;
        }
        if file_wide {
            allows.file_allows.push(rule);
        } else {
            allows.line_allows.push((c.line, rule));
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comments(lines: &[(u32, &str)]) -> Vec<LineComment> {
        lines
            .iter()
            .map(|&(line, text)| LineComment {
                line,
                text: text.to_string(),
            })
            .collect()
    }

    #[test]
    fn allow_covers_same_and_next_line() {
        let a = parse(&comments(&[(
            10,
            " lint:allow(panic-freedom): arity is a compile-time property",
        )]));
        assert!(a.is_allowed(Rule::PanicFreedom, 10));
        assert!(a.is_allowed(Rule::PanicFreedom, 11));
        assert!(!a.is_allowed(Rule::PanicFreedom, 12));
        assert!(!a.is_allowed(Rule::EndpointGuard, 11));
        assert!(a.malformed.is_empty());
    }

    #[test]
    fn file_allow_covers_everything() {
        let a = parse(&comments(&[(
            1,
            " lint:allow-file(taxonomy): zoo is attacked, not benched",
        )]));
        assert!(a.is_allowed(Rule::Taxonomy, 999));
        assert!(!a.is_allowed(Rule::PanicFreedom, 999));
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_malformed() {
        let a = parse(&comments(&[
            (3, " lint:allow(panic-freedom)"),
            (4, " lint:allow(panic-freedom):   "),
            (5, " lint:allow(no-such-rule): why"),
            (6, " lint:allow no parens"),
        ]));
        assert_eq!(a.malformed.len(), 4);
        assert!(!a.is_allowed(Rule::PanicFreedom, 3));
    }

    #[test]
    fn unknown_rule_close_to_a_real_one_gets_a_suggestion() {
        let a = parse(&comments(&[
            (2, " lint:allow(budget-balence): typoed rule id"),
            (9, " lint:allow(lock-dicipline): typoed rule id"),
        ]));
        assert_eq!(a.malformed.len(), 2);
        assert!(
            a.malformed[0].1.contains("did you mean `budget-balance`?"),
            "{}",
            a.malformed[0].1
        );
        assert!(
            a.malformed[1].1.contains("did you mean `lock-discipline`?"),
            "{}",
            a.malformed[1].1
        );
        // A name nothing like any rule falls back to the full list.
        let far = parse(&comments(&[(1, " lint:allow(no-such-rule): why")]));
        assert!(far.malformed[0].1.contains("expected one of:"));
    }

    #[test]
    fn doc_comment_markers_are_tolerated() {
        let a = parse(&comments(&[(
            7,
            "/ lint:allow(endpoint-guard): operand is a probability, not a tape uniform",
        )]));
        assert!(a.is_allowed(Rule::EndpointGuard, 8));
    }
}
