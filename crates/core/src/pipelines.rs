//! End-to-end select-then-measure pipelines — the protocol of the paper's
//! §7.2 experiments.
//!
//! Both pipelines split the total budget in half: selection (with free
//! gaps) gets `ε/2`, direct measurement of the selected queries gets the
//! other `ε/2` (divided evenly among them). The free gap information is
//! then folded into the measurements by postprocessing:
//!
//! * [`topk_select_measure`] — Noisy-Top-K-with-Gap + BLUE (Theorem 3);
//! * [`svt_select_measure`] — Sparse-Vector-with-Gap + inverse-variance
//!   combination (§6.2).
//!
//! The `measurements` field of each result is the gap-free baseline an
//! analyst unaware of the free gaps would use; the experiments compare its
//! MSE against the postprocessed estimates.
//!
//! Like the mechanisms themselves, each pipeline is **one core** generic
//! over [`DrawProvider`] — the protocol wiring (budget split, measurement
//! scale convention, the BLUE `λ` formula, inverse-variance weights) exists
//! once, and the dyn/scratch entry points only pick the provider.

use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, RngDraws, ScratchDraws, SourceDraws};
use crate::error::MechanismError;
use crate::laplace_mech::LaplaceMechanism;
use crate::noisy_max::NoisyTopKWithGap;
use crate::postprocess::blue::{blue_estimates, BlueInput};
use crate::postprocess::weighted::{combine_gap_with_measurement, topk_lambda_for_even_split};
use crate::scratch::{SvtScratch, TopKScratch};
use crate::sparse_vector::SparseVectorWithGap;
use crate::staircase_mech::StaircaseMechanism;
use free_gap_alignment::SamplingSource;
use free_gap_noise::ContinuousDistribution;
use rand::rngs::StdRng;
use rand::Rng;

/// Reusable buffers for the select-then-measure pipelines' batched fast
/// paths ([`topk_select_measure_scratch`], [`svt_select_measure_scratch`]).
///
/// One instance per Monte-Carlo worker thread; see [`crate::scratch`] for
/// the equivalence contract.
#[derive(Debug, Default, Clone)]
pub struct PipelineScratch {
    topk: TopKScratch,
    svt: SvtScratch,
}

impl PipelineScratch {
    /// Creates an empty scratch (buffers grow on first run).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Result of the Top-K select-then-measure pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKPipelineResult {
    /// Selected query indices, best first.
    pub indices: Vec<usize>,
    /// The `k` free gaps from Algorithm 1 (the last one to the runner-up).
    pub gaps: Vec<f64>,
    /// Direct noisy measurements `αᵢ` of the selected queries (baseline).
    pub measurements: Vec<f64>,
    /// BLUE estimates `βᵢ` combining measurements with the first `k-1` gaps.
    pub blue: Vec<f64>,
    /// True answers of the selected queries (for scoring; not private).
    pub truths: Vec<f64>,
}

/// The single copy of the §5.2 protocol, generic over the [`DrawProvider`]:
/// Noisy-Top-K-with-Gap at `f·ε`, Laplace measurement of the selected
/// queries at `(1-f)·ε` shared evenly (the `measure_split` convention),
/// BLUE postprocessing. The BLUE λ adapts: with monotone factor `c`
/// (1 monotone, 2 general), the gap-noise scale is `c·k/(fε)` and the
/// measurement scale `k/((1-f)ε)`, so `λ = (c(1-f)/f)²` — the paper's
/// `λ = 1`/`λ = 4` at `f = 1/2`.
///
/// Selection and measurement draw through the *same* provider in order
/// (`n` selection draws, then up to `k` measurement draws), so the dyn and
/// scratch paths stay bit-identical on the same RNG stream — the Top-K
/// draw count is data-independent.
fn topk_select_measure_core<P: DrawProvider>(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    select_fraction: f64,
    provider: &mut P,
    scratch: &mut TopKScratch,
) -> Result<TopKPipelineResult, MechanismError> {
    answers.require_len(k + 1)?;
    let f = crate::error::require_fraction("select_fraction", select_fraction)?;
    let selector = NoisyTopKWithGap::new(k, f * epsilon, answers.monotonic())?;
    let measurer = LaplaceMechanism::new((1.0 - f) * epsilon)?;

    let selection = selector.run_provider(answers, provider, scratch)?;
    let indices = selection.indices();
    let truths: Vec<f64> = indices.iter().map(|&i| answers.values()[i]).collect();

    // measure_split's convention: ε shared evenly across the k measurements.
    let meas_scale = measurer.scale() * truths.len().max(1) as f64;
    let mut measurements = Vec::new();
    provider.fill_offset(&truths, meas_scale, &mut measurements);

    let c = if answers.monotonic() { 1.0 } else { 2.0 };
    let lambda = (c * (1.0 - f) / f).powi(2);
    debug_assert!(
        (f - 0.5).abs() > 1e-12
            || (lambda - topk_lambda_for_even_split(answers.monotonic())).abs() < 1e-12
    );

    let gaps = selection.gaps();
    let blue = blue_estimates(&BlueInput {
        measurements: &measurements,
        gaps: &gaps[..k - 1],
        lambda,
    })?;

    Ok(TopKPipelineResult {
        indices,
        gaps,
        measurements,
        blue,
        truths,
    })
}

/// Runs the §5.2 protocol: Noisy-Top-K-with-Gap at `ε/2`, Laplace
/// measurement of the selected queries at `ε/2`, BLUE postprocessing.
pub fn topk_select_measure(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    rng: &mut StdRng,
) -> Result<TopKPipelineResult, MechanismError> {
    topk_select_measure_with_split(answers, k, epsilon, 0.5, rng)
}

/// The §5.2 protocol with an adjustable budget split (`select_fraction` of
/// `epsilon` goes to selection, the rest to measurement); used by the
/// budget-split ablation (the paper fixes `f = 1/2`). See
/// `topk_select_measure_core` for the λ adaptation.
pub fn topk_select_measure_with_split(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    select_fraction: f64,
    rng: &mut StdRng,
) -> Result<TopKPipelineResult, MechanismError> {
    let mut source = SamplingSource::new(rng);
    topk_select_measure_core(
        answers,
        k,
        epsilon,
        select_fraction,
        &mut SourceDraws::new(&mut source),
        &mut TopKScratch::new(),
    )
}

/// Batched fast path of [`topk_select_measure`]: selection and measurement
/// noise are drawn via the scratch buffers and a monomorphic RNG. The result
/// is bit-identical to the allocating pipeline on the same RNG stream (both
/// draw exactly `n + k` Laplace variates in the same order).
pub fn topk_select_measure_scratch<R: Rng + ?Sized>(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    rng: &mut R,
    scratch: &mut PipelineScratch,
) -> Result<TopKPipelineResult, MechanismError> {
    topk_select_measure_with_split_scratch(answers, k, epsilon, 0.5, rng, scratch)
}

/// Batched fast path of [`topk_select_measure_with_split`]; see
/// [`topk_select_measure_scratch`].
pub fn topk_select_measure_with_split_scratch<R: Rng + ?Sized>(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    select_fraction: f64,
    rng: &mut R,
    scratch: &mut PipelineScratch,
) -> Result<TopKPipelineResult, MechanismError> {
    topk_select_measure_core(
        answers,
        k,
        epsilon,
        select_fraction,
        &mut RngDraws::new(rng),
        &mut scratch.topk,
    )
}

/// The §5.2 protocol with the variance-optimal **staircase** measurement of
/// §3.1 in place of Laplace: selection (and its free gaps) is the unchanged
/// Laplace-noised Algorithm 1 at `ε/2`, while the direct measurements of
/// the selected queries carry staircase noise at `ε/2` split evenly
/// (the [`StaircaseMechanism::measure_split`] convention, drawn through the
/// provider's [`staircase_fill_offset`](DrawProvider::staircase_fill_offset)
/// shape — four uniforms per measurement). BLUE is variance-weighted, so
/// `λ` adapts to the actual ratio `Var(selection noise)/Var(staircase
/// noise)` instead of the fixed Laplace-vs-Laplace constants.
fn topk_select_measure_staircase_core<P: DrawProvider>(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    provider: &mut P,
    scratch: &mut TopKScratch,
) -> Result<TopKPipelineResult, MechanismError> {
    answers.require_len(k + 1)?;
    let half = epsilon / 2.0;
    let selector = NoisyTopKWithGap::new(k, half, answers.monotonic())?;
    let measurer = StaircaseMechanism::new(half)?;

    let selection = selector.run_provider(answers, provider, scratch)?;
    let indices = selection.indices();
    let truths: Vec<f64> = indices.iter().map(|&i| answers.values()[i]).collect();

    let noise = measurer.noise_for_batch(k)?;
    let mut measurements = Vec::new();
    provider.staircase_fill_offset(&truths, &noise, &mut measurements);

    // BLUE's λ is the per-draw noise-variance ratio (selection vs
    // measurement); for Laplace-vs-Laplace it collapses to the
    // `(c(1-f)/f)²` constants of `topk_select_measure_core`.
    let sel_scale = selector.scale();
    let lambda = 2.0 * sel_scale * sel_scale / noise.variance();

    let gaps = selection.gaps();
    let blue = blue_estimates(&BlueInput {
        measurements: &measurements,
        gaps: &gaps[..k - 1],
        lambda,
    })?;

    Ok(TopKPipelineResult {
        indices,
        gaps,
        measurements,
        blue,
        truths,
    })
}

/// Runs the §5.2 protocol with staircase measurement noise (§3.1): the
/// drop-in-replacement pipeline the paper's related-work discussion
/// sketches. Selection and its free gaps are unchanged.
pub fn topk_select_measure_staircase(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    rng: &mut StdRng,
) -> Result<TopKPipelineResult, MechanismError> {
    let mut source = SamplingSource::new(rng);
    topk_select_measure_staircase_core(
        answers,
        k,
        epsilon,
        &mut SourceDraws::new(&mut source),
        &mut TopKScratch::new(),
    )
}

/// Batched fast path of [`topk_select_measure_staircase`]. Draw counts are
/// data-independent (`n` Laplace + `4k` staircase uniforms), so the result
/// is bit-identical to the allocating pipeline on the same RNG stream.
pub fn topk_select_measure_staircase_scratch<R: Rng + ?Sized>(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    rng: &mut R,
    scratch: &mut PipelineScratch,
) -> Result<TopKPipelineResult, MechanismError> {
    topk_select_measure_staircase_core(
        answers,
        k,
        epsilon,
        &mut RngDraws::new(rng),
        &mut scratch.topk,
    )
}

/// Result of the SVT select-then-measure pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SvtPipelineResult {
    /// Indices answered above-threshold, in stream order.
    pub indices: Vec<usize>,
    /// Their released gaps.
    pub gaps: Vec<f64>,
    /// Direct noisy measurements `αᵢ` (baseline).
    pub measurements: Vec<f64>,
    /// Inverse-variance combinations of `gap + T` with the measurements.
    pub combined: Vec<f64>,
    /// True answers of the answered queries.
    pub truths: Vec<f64>,
}

/// The single copy of the §6.2 protocol, generic over the [`DrawProvider`]:
/// Sparse-Vector-with-Gap at `ε/2` (optimal internal split), Laplace
/// measurement at `ε/2` over `k` queries (sized for `k` even if fewer were
/// answered — the analyst commits to the split before seeing the
/// selection), inverse-variance combination.
///
/// Unlike Top-K, SVT's draw count is data-dependent, so the *measurement*
/// noise path is a parameter: the dyn entry measures through the same
/// provider (sequential stream), while the scratch entry measures from a
/// sub-stream derived before the over-drawing selection (stream
/// discipline) — the provider is handed back to `measure` after the
/// selection completes.
fn svt_select_measure_core<P: DrawProvider>(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    threshold: f64,
    provider: &mut P,
    measure: impl FnOnce(&mut P, &[f64], f64) -> Vec<f64>,
) -> Result<SvtPipelineResult, MechanismError> {
    let half = epsilon / 2.0;
    let selector = SparseVectorWithGap::new(k, half, threshold, answers.monotonic())?;
    let measurer = LaplaceMechanism::new(half)?;

    let selection = selector.run_provider(answers, provider);
    let pairs = selection.gaps();
    let indices: Vec<usize> = pairs.iter().map(|(i, _)| *i).collect();
    let gaps: Vec<f64> = pairs.iter().map(|(_, g)| *g).collect();
    let truths: Vec<f64> = indices.iter().map(|&i| answers.values()[i]).collect();

    let meas_scale = measurer.scale() * k as f64;
    let measurements = measure(provider, &truths, meas_scale);

    let gap_var = selector.gap_variance();
    let meas_var = 2.0 * meas_scale * meas_scale;
    let combined = gaps
        .iter()
        .zip(&measurements)
        .map(|(g, a)| combine_gap_with_measurement(*g, threshold, gap_var, *a, meas_var))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(SvtPipelineResult {
        indices,
        gaps,
        measurements,
        combined,
        truths,
    })
}

/// Runs the §6.2 protocol: Sparse-Vector-with-Gap at `ε/2` (optimal internal
/// split), Laplace measurement at `ε/2` over `k` queries, inverse-variance
/// combination.
pub fn svt_select_measure(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    threshold: f64,
    rng: &mut StdRng,
) -> Result<SvtPipelineResult, MechanismError> {
    let mut source = SamplingSource::new(rng);
    let mut provider = SourceDraws::new(&mut source);
    svt_select_measure_core(
        answers,
        k,
        epsilon,
        threshold,
        &mut provider,
        |p, truths, scale| {
            let mut out = Vec::new();
            p.fill_offset(truths, scale, &mut out);
            out
        },
    )
}

/// Batched fast path of [`svt_select_measure`]: the SVT selection draws
/// from the scratch's chunked unit-noise buffer and the measurements are one
/// batched `fill_into_offset` pass.
///
/// Unlike the Top-K pipeline, SVT's draw count is data-dependent, so the
/// scratch path consumes the RNG stream differently from the sequential
/// path (buffered chunks) — per-run outputs are equal in distribution, not
/// bit-identical. The measurement stream is derived from `rng` *before* the
/// selection so the selection's history-dependent lookahead cannot shift the
/// measurements: outputs are a pure function of the stream handed in. Use a
/// fresh derived stream per run, as with every scratch entry point.
pub fn svt_select_measure_scratch<R: Rng + ?Sized>(
    answers: &QueryAnswers,
    k: usize,
    epsilon: f64,
    threshold: f64,
    rng: &mut R,
    scratch: &mut PipelineScratch,
) -> Result<SvtPipelineResult, MechanismError> {
    // Sub-stream for measurement, split off before the over-drawing
    // selection (see the stream discipline in [`crate::scratch`]).
    let mut meas_rng = free_gap_noise::rng::rng_from_seed(rng.gen::<u64>());
    let mut provider = ScratchDraws::new(&mut scratch.svt, rng);
    svt_select_measure_core(
        answers,
        k,
        epsilon,
        threshold,
        &mut provider,
        move |_selection_provider, truths, scale| {
            let mut out = Vec::new();
            RngDraws::new(&mut meas_rng).fill_offset(truths, scale, &mut out);
            out
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![
            500.0, 480.0, 20.0, 460.0, 440.0, 10.0, 420.0, 400.0, 5.0, 380.0, 2.0,
        ])
    }

    #[test]
    fn topk_pipeline_shapes() {
        let mut rng = rng_from_seed(1);
        let r = topk_select_measure(&workload(), 4, 1.0, &mut rng).unwrap();
        assert_eq!(r.indices.len(), 4);
        assert_eq!(r.gaps.len(), 4);
        assert_eq!(r.measurements.len(), 4);
        assert_eq!(r.blue.len(), 4);
        assert_eq!(r.truths.len(), 4);
    }

    #[test]
    fn topk_pipeline_blue_beats_measurements() {
        // Monte-Carlo over the full pipeline: BLUE's MSE should undercut the
        // measurement-only baseline by about 1 - (1+k)/(2k) (Corollary 1).
        let k = 5;
        let mut rng = rng_from_seed(2);
        let mut mse_blue = RunningMoments::new();
        let mut mse_meas = RunningMoments::new();
        for _ in 0..4_000 {
            let r = topk_select_measure(&workload(), k, 1.0, &mut rng).unwrap();
            for i in 0..k {
                mse_blue.push((r.blue[i] - r.truths[i]).powi(2));
                mse_meas.push((r.measurements[i] - r.truths[i]).powi(2));
            }
        }
        let ratio = mse_blue.mean() / mse_meas.mean();
        let expect = (1.0 + k as f64) / (2.0 * k as f64); // 0.6 at k = 5
        assert!((ratio - expect).abs() < 0.05, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn staircase_pipeline_shapes_and_blue_improvement() {
        let k = 4;
        let mut rng = rng_from_seed(11);
        let mut mse_blue = RunningMoments::new();
        let mut mse_meas = RunningMoments::new();
        for _ in 0..4_000 {
            let r = topk_select_measure_staircase(&workload(), k, 2.0, &mut rng).unwrap();
            assert_eq!(r.indices.len(), k);
            assert_eq!(r.measurements.len(), k);
            assert_eq!(r.blue.len(), k);
            for i in 0..k {
                mse_blue.push((r.blue[i] - r.truths[i]).powi(2));
                mse_meas.push((r.measurements[i] - r.truths[i]).powi(2));
            }
        }
        // BLUE folds the free gaps in; it must strictly beat the
        // measurement-only baseline whatever the measurement noise family.
        assert!(
            mse_blue.mean() < 0.95 * mse_meas.mean(),
            "blue {} vs measurements {}",
            mse_blue.mean(),
            mse_meas.mean()
        );
    }

    #[test]
    fn staircase_scratch_pipeline_is_bit_identical() {
        // Data-independent draw counts: the scratch path reproduces the
        // allocating staircase pipeline exactly.
        let mut scratch = PipelineScratch::new();
        for seed in 0..50 {
            let expect =
                topk_select_measure_staircase(&workload(), 4, 1.0, &mut rng_from_seed(seed))
                    .unwrap();
            let got = topk_select_measure_staircase_scratch(
                &workload(),
                4,
                1.0,
                &mut rng_from_seed(seed),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(expect, got, "seed {seed}");
        }
    }

    #[test]
    fn svt_pipeline_shapes_and_improvement() {
        let k = 5;
        let threshold = 300.0;
        let mut rng = rng_from_seed(3);
        let mut mse_comb = RunningMoments::new();
        let mut mse_meas = RunningMoments::new();
        for _ in 0..4_000 {
            let r = svt_select_measure(&workload(), k, 1.0, threshold, &mut rng).unwrap();
            assert!(r.indices.len() <= k);
            for i in 0..r.indices.len() {
                mse_comb.push((r.combined[i] - r.truths[i]).powi(2));
                mse_meas.push((r.measurements[i] - r.truths[i]).powi(2));
            }
        }
        let ratio = mse_comb.mean() / mse_meas.mean();
        let expect = crate::postprocess::weighted::svt_error_ratio(k, true);
        assert!((ratio - expect).abs() < 0.05, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn rejects_undersized_workloads() {
        let mut rng = rng_from_seed(4);
        let small = QueryAnswers::counting(vec![1.0, 2.0]);
        assert!(topk_select_measure(&small, 2, 1.0, &mut rng).is_err());
        let mut scratch = PipelineScratch::new();
        assert!(topk_select_measure_scratch(&small, 2, 1.0, &mut rng, &mut scratch).is_err());
    }

    #[test]
    fn topk_scratch_pipeline_is_bit_identical() {
        // The Top-K pipeline draws a data-independent number of variates, so
        // the scratch path reproduces the allocating path exactly.
        let mut scratch = PipelineScratch::new();
        for seed in 0..50 {
            let expect =
                topk_select_measure(&workload(), 4, 1.0, &mut rng_from_seed(seed)).unwrap();
            let got = topk_select_measure_scratch(
                &workload(),
                4,
                1.0,
                &mut rng_from_seed(seed),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(expect, got, "seed {seed}");
        }
    }

    #[test]
    fn svt_scratch_pipeline_matches_in_distribution() {
        // SVT draw counts are data-dependent; assert the scratch pipeline
        // reproduces the error-reduction statistics of the sequential one.
        let k = 5;
        let threshold = 300.0;
        let mut rng = rng_from_seed(8);
        let mut scratch = PipelineScratch::new();
        let mut mse_comb = RunningMoments::new();
        let mut mse_meas = RunningMoments::new();
        for _ in 0..4_000 {
            let r =
                svt_select_measure_scratch(&workload(), k, 1.0, threshold, &mut rng, &mut scratch)
                    .unwrap();
            for i in 0..r.indices.len() {
                mse_comb.push((r.combined[i] - r.truths[i]).powi(2));
                mse_meas.push((r.measurements[i] - r.truths[i]).powi(2));
            }
        }
        let ratio = mse_comb.mean() / mse_meas.mean();
        let expect = crate::postprocess::weighted::svt_error_ratio(k, true);
        assert!((ratio - expect).abs() < 0.05, "ratio {ratio} vs {expect}");
    }
}
