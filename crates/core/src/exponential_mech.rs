//! Exponential mechanism for private selection (McSherry & Talwar) — the
//! related-work baseline of §2.
//!
//! Selects index `i` with probability proportional to `exp(ε·qᵢ/(2Δ))`
//! (`exp(ε·qᵢ/Δ)` for monotone workloads, matching the Noisy-Max factor-two
//! convention). Implemented via the Gumbel-max trick — `argmaxᵢ (ε·qᵢ/(cΔ) +
//! Gumbelᵢ)` has exactly the softmax distribution — which keeps the
//! per-query work `O(1)` and numerically stable for large scores.

use crate::answers::QueryAnswers;
use crate::error::{require_epsilon, MechanismError};
use free_gap_noise::{ContinuousDistribution, Gumbel};
use rand::rngs::StdRng;

/// Exponential-mechanism selection over sensitivity-1 utility queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialMechanism {
    epsilon: f64,
    monotonic: bool,
}

impl ExponentialMechanism {
    /// Creates the mechanism with budget `epsilon`.
    pub fn new(epsilon: f64, monotonic: bool) -> Result<Self, MechanismError> {
        Ok(Self {
            epsilon: require_epsilon(epsilon)?,
            monotonic,
        })
    }

    /// The softmax temperature exponent applied to each utility:
    /// `ε/2` in general, `ε` for monotone utilities.
    pub fn exponent(&self) -> f64 {
        if self.monotonic {
            self.epsilon
        } else {
            self.epsilon / 2.0
        }
    }

    /// Selection probabilities (softmax of the scaled utilities), computed
    /// with the max-subtraction trick for stability.
    pub fn probabilities(&self, answers: &QueryAnswers) -> Vec<f64> {
        let t = self.exponent();
        let m = answers
            .values()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = answers
            .values()
            .iter()
            .map(|q| ((q - m) * t).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    /// Samples one index via the Gumbel-max trick.
    ///
    /// # Panics
    /// Panics on an empty workload.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> usize {
        assert!(!answers.is_empty(), "cannot select from an empty workload");
        let t = self.exponent();
        let gumbel = Gumbel::standard();
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, &q) in answers.values().iter().enumerate() {
            let score = q * t + gumbel.sample(rng);
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Samples `k` indices *with replacement-free sequential application*
    /// (peeling): repeatedly applies the mechanism to the not-yet-selected
    /// queries, spending `epsilon` each round — total cost `k·ε`. A
    /// selection baseline for the Top-K experiments.
    pub fn run_top_k(&self, answers: &QueryAnswers, k: usize, rng: &mut StdRng) -> Vec<usize> {
        assert!(k <= answers.len(), "k exceeds workload size");
        let t = self.exponent();
        let gumbel = Gumbel::standard();
        let mut scores: Vec<(f64, usize)> = answers
            .values()
            .iter()
            .enumerate()
            .map(|(i, &q)| (q * t + gumbel.sample(rng), i))
            .collect();
        // One-shot Gumbel top-k is equivalent to sequential peeling with
        // fresh noise each round (Gumbel race equivalence).
        scores.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scores.into_iter().take(k).map(|(_, i)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![5.0, 3.0, 1.0])
    }

    #[test]
    fn validation() {
        assert!(ExponentialMechanism::new(0.0, true).is_err());
        assert_eq!(
            ExponentialMechanism::new(1.0, true).unwrap().exponent(),
            1.0
        );
        assert_eq!(
            ExponentialMechanism::new(1.0, false).unwrap().exponent(),
            0.5
        );
    }

    #[test]
    fn probabilities_sum_to_one_and_order_by_utility() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        let p = m.probabilities(&workload());
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
        // Softmax ratio: p0/p1 = e^{(5-3)·1} = e².
        assert!((p[0] / p[1] - 2f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn gumbel_sampler_matches_softmax() {
        let m = ExponentialMechanism::new(0.8, true).unwrap();
        let p = m.probabilities(&workload());
        let mut rng = rng_from_seed(50);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[m.run(&workload(), &mut rng)] += 1;
        }
        for i in 0..3 {
            let emp = counts[i] as f64 / n as f64;
            let sigma = (p[i] * (1.0 - p[i]) / n as f64).sqrt();
            assert!((emp - p[i]).abs() < 5.0 * sigma, "i={i}: {emp} vs {}", p[i]);
        }
    }

    #[test]
    fn top_k_returns_distinct_indices() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        let mut rng = rng_from_seed(51);
        let sel = m.run_top_k(&workload(), 2, &mut rng);
        assert_eq!(sel.len(), 2);
        assert_ne!(sel[0], sel[1]);
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn empty_workload_panics() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        m.run(&QueryAnswers::counting(vec![]), &mut rng_from_seed(1));
    }
}
