//! Exponential mechanism for private selection (McSherry & Talwar) — the
//! related-work baseline of §2.
//!
//! Selects index `i` with probability proportional to `exp(ε·qᵢ/(2Δ))`
//! (`exp(ε·qᵢ/Δ)` for monotone workloads, matching the Noisy-Max factor-two
//! convention). Implemented via the Gumbel-max trick — `argmaxᵢ (ε·qᵢ/(cΔ) +
//! Gumbelᵢ)` has exactly the softmax distribution — which keeps the
//! per-query work `O(1)` and numerically stable for large scores.
//!
//! ## Execution paths
//!
//! The Gumbel race exists once, generic over the
//! [`DrawProvider`] noise comes through: one standard-Gumbel draw per query
//! in stream order, scores `qᵢ·t + Gᵢ` compared under the `f64` **total
//! order** (ties to the smaller index). The entry points pick the provider
//! and the selection strategy:
//!
//! * `run` / `run_top_k` — the dyn reference. `run_top_k` materializes all
//!   `n` scores through [`SourceDraws`] and sorts them (the one-shot Gumbel
//!   race as usually stated, `O(n log n)`);
//! * `run_with_scratch` / `run_top_k_with_scratch[_into]` — the batched
//!   fast path over [`TopKScratch`]: the race core streams scores through a
//!   `k`-sized insertion buffer (`O(n·k)` with tiny constants, reused
//!   buffers, monomorphic RNG). Output is **bit-identical** to the
//!   reference sort on the same RNG stream — same draws, same total order —
//!   asserted by `tests/scratch_equivalence.rs`;
//! * `run_streaming` / `run_top_k_streaming[_with_scratch[_into]]` — the
//!   same race over `impl IntoIterator<Item = f64>`: `O(k)` memory, the
//!   query vector is never materialized. (Selection must see every query,
//!   so unlike SVT the stream is always fully consumed.)
//!
//! Workloads are validated up front: a NaN or infinite utility is a typed
//! [`MechanismError::NonFiniteUtility`], never a sort panic or a silent
//! mis-selection.

use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, RngDraws, SourceDraws};
use crate::error::{require_epsilon, MechanismError};
use crate::scratch::TopKScratch;
use free_gap_alignment::{NoiseSource, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Ordering;

/// Exponential-mechanism selection over sensitivity-1 utility queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialMechanism {
    epsilon: f64,
    monotonic: bool,
}

impl ExponentialMechanism {
    /// Creates the mechanism with budget `epsilon`.
    pub fn new(epsilon: f64, monotonic: bool) -> Result<Self, MechanismError> {
        Ok(Self {
            epsilon: require_epsilon(epsilon)?,
            monotonic,
        })
    }

    /// The privacy budget `ε` one selection costs.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The softmax temperature exponent applied to each utility:
    /// `ε/2` in general, `ε` for monotone utilities.
    pub fn exponent(&self) -> f64 {
        if self.monotonic {
            self.epsilon
        } else {
            self.epsilon / 2.0
        }
    }

    /// Selection probabilities (softmax of the scaled utilities), computed
    /// with the max-subtraction trick for stability.
    ///
    /// Rejects empty workloads and non-finite utilities: with a `-∞`
    /// utility the max-subtraction `q - m` degenerates to `-∞ - -∞ = NaN`
    /// when every utility is `-∞`, and a `+∞`/NaN poisons the
    /// normalization — all-NaN "probabilities" used to come back silently.
    pub fn probabilities(&self, answers: &QueryAnswers) -> Result<Vec<f64>, MechanismError> {
        answers.require_len(1)?;
        Self::require_finite(answers.values())?;
        let t = self.exponent();
        let m = answers
            .values()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, |a, b| {
                if a.total_cmp(&b).is_ge() {
                    a
                } else {
                    b
                }
            });
        let weights: Vec<f64> = answers
            .values()
            .iter()
            .map(|q| ((q - m) * t).exp())
            .collect();
        // With finite utilities the max term contributes exp(0) = 1, so the
        // total is at least 1 and the division cannot produce NaN.
        let total: f64 = weights.iter().sum();
        Ok(weights.into_iter().map(|w| w / total).collect())
    }

    /// Validates every utility is finite (the selection races and the
    /// softmax are undefined otherwise).
    fn require_finite(values: &[f64]) -> Result<(), MechanismError> {
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() {
                return Err(MechanismError::NonFiniteUtility { index, value });
            }
        }
        Ok(())
    }

    /// Validates the Top-K configuration against a materialized workload.
    fn require_top_k(&self, answers: &QueryAnswers, k: usize) -> Result<(), MechanismError> {
        Self::require_top_k_len(answers.len(), k)
    }

    /// Slice-level form of the Top-K validation, shared with the unified
    /// [`crate::api`] call surface.
    pub(crate) fn require_top_k_len(len: usize, k: usize) -> Result<(), MechanismError> {
        if k > len {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must not exceed the workload size",
            });
        }
        Ok(())
    }

    /// Scores one query: `q·t + standard Gumbel` — the Gumbel-max race
    /// entry, the one place the score arithmetic exists (every path shares
    /// it, so the reference sort and the insertion race are bit-comparable).
    #[inline]
    fn score<P: DrawProvider>(
        t: f64,
        index: usize,
        q: f64,
        provider: &mut P,
    ) -> Result<f64, MechanismError> {
        if !q.is_finite() {
            return Err(MechanismError::NonFiniteUtility { index, value: q });
        }
        Ok(q * t + provider.gumbel_next(1.0))
    }

    /// The single copy of the Gumbel-max race, generic over the
    /// [`DrawProvider`] noise comes through and lazy over the query stream:
    /// one standard-Gumbel draw per query in stream order, maintaining the
    /// `k` best `(score, index)` pairs in `scores`/`top` (descending under
    /// the `f64` total order, ties to the smaller index — exactly the
    /// reference sort's order). Returns the number of queries processed.
    ///
    /// `O(k)` memory: this is both the batched fast path (`k`-sized
    /// insertion buffer instead of an `n`-sized sort) and the streaming
    /// path (the query vector is never materialized).
    pub(crate) fn race_core<P: DrawProvider, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        k: usize,
        provider: &mut P,
        scores: &mut Vec<f64>,
        top: &mut Vec<usize>,
    ) -> Result<usize, MechanismError> {
        provider.begin();
        let t = self.exponent();
        scores.clear();
        top.clear();
        // The buffer never holds more than min(k, processed) + 1 entries;
        // cap the pre-reservation so a streaming caller's oversized `k`
        // (validated only at end-of-stream) cannot trigger a huge
        // allocation before the stream is drained.
        let reserve = k.saturating_add(1).min(1024);
        scores.reserve(reserve);
        top.reserve(reserve);
        let mut processed = 0usize;
        for q in queries {
            let index = processed;
            processed += 1;
            let s = Self::score(t, index, q, provider)?;
            // One draw per query even when k = 0 (or the buffer is full and
            // the score loses): the race consumes the stream exactly like
            // the materializing reference.
            if k == 0 || (top.len() == k && s.total_cmp(&scores[k - 1]) != Ordering::Greater) {
                continue;
            }
            let pos = scores.partition_point(|v| v.total_cmp(&s) != Ordering::Less);
            scores.insert(pos, s);
            top.insert(pos, index);
            if top.len() > k {
                scores.pop();
                top.pop();
            }
        }
        Ok(processed)
    }

    /// Samples one index via the Gumbel-max trick (the dyn reference path,
    /// through [`SourceDraws`]).
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> Result<usize, MechanismError> {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Samples one index against an explicit noise source.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> Result<usize, MechanismError> {
        answers.require_len(1)?;
        let (mut scores, mut top) = (Vec::with_capacity(2), Vec::with_capacity(2));
        self.race_core(
            answers.values().iter().copied(),
            1,
            &mut SourceDraws::new(source),
            &mut scores,
            &mut top,
        )?;
        Ok(top[0])
    }

    /// Batched fast path of [`run`](Self::run): the race core through
    /// [`RngDraws`] with [`TopKScratch`]'s reused buffers. Bit-identical to
    /// [`run`](Self::run) on the same RNG stream.
    // lint:allow(taxonomy): returns a single winner index — there is no output buffer an _into twin could reuse
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut TopKScratch,
    ) -> Result<usize, MechanismError> {
        answers.require_len(1)?;
        self.race_core(
            answers.values().iter().copied(),
            1,
            &mut RngDraws::new(rng),
            &mut scratch.noisy,
            &mut scratch.top,
        )?;
        Ok(scratch.top[0])
    }

    /// Streaming twin of [`run`](Self::run): the argmax race over a lazy
    /// query stream, `O(1)` memory, nothing materialized. Errors on an
    /// empty stream.
    pub fn run_streaming<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut StdRng,
    ) -> Result<usize, MechanismError> {
        let mut source = SamplingSource::new(rng);
        let (mut scores, mut top) = (Vec::with_capacity(2), Vec::with_capacity(2));
        let processed = self.race_core(
            queries,
            1,
            &mut SourceDraws::new(&mut source),
            &mut scores,
            &mut top,
        )?;
        if processed == 0 {
            return Err(MechanismError::NotEnoughQueries { got: 0, need: 1 });
        }
        Ok(top[0])
    }

    /// Samples `k` indices *with replacement-free sequential application*
    /// (peeling): repeatedly applies the mechanism to the not-yet-selected
    /// queries, spending `epsilon` each round — total cost `k·ε`. A
    /// selection baseline for the Top-K experiments.
    ///
    /// This is the dyn reference path: all `n` scores are materialized
    /// through [`SourceDraws`] and sorted (one-shot Gumbel top-k is
    /// equivalent to sequential peeling with fresh noise each round — the
    /// Gumbel race equivalence). The scratch/streaming entry points run the
    /// same race through a `k`-sized insertion buffer instead; outputs are
    /// bit-identical on the same RNG stream.
    pub fn run_top_k(
        &self,
        answers: &QueryAnswers,
        k: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut source = SamplingSource::new(rng);
        self.run_top_k_with_source(answers, k, &mut source)
    }

    /// [`run_top_k`](Self::run_top_k) against an explicit noise source.
    pub fn run_top_k_with_source(
        &self,
        answers: &QueryAnswers,
        k: usize,
        source: &mut dyn NoiseSource,
    ) -> Result<Vec<usize>, MechanismError> {
        self.require_top_k(answers, k)?;
        let mut provider = SourceDraws::new(source);
        provider.begin();
        let t = self.exponent();
        let mut scores: Vec<(f64, usize)> = Vec::with_capacity(answers.len());
        for (i, &q) in answers.values().iter().enumerate() {
            scores.push((Self::score(t, i, q, &mut provider)?, i));
        }
        // Reference selection: total-order sort, descending score, ties to
        // the smaller index — the exact order the race core's insertion
        // buffer maintains (`scratch_equivalence` keeps the two honest).
        scores.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        Ok(scores.into_iter().take(k).map(|(_, i)| i).collect())
    }

    /// Batched fast path of [`run_top_k`](Self::run_top_k) over
    /// [`TopKScratch`]: the race core through [`RngDraws`] — `k`-sized
    /// insertion selection, reused buffers, monomorphic RNG, no sort.
    /// Bit-identical to [`run_top_k`](Self::run_top_k) on the same RNG
    /// stream.
    pub fn run_top_k_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        k: usize,
        rng: &mut R,
        scratch: &mut TopKScratch,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut out = Vec::new();
        self.run_top_k_with_scratch_into(answers, k, rng, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of
    /// [`run_top_k_with_scratch`](Self::run_top_k_with_scratch): writes the
    /// selected indices into `out`, reusing its buffer across runs.
    pub fn run_top_k_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        k: usize,
        rng: &mut R,
        scratch: &mut TopKScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), MechanismError> {
        self.require_top_k(answers, k)?;
        self.race_core(
            answers.values().iter().copied(),
            k,
            &mut RngDraws::new(rng),
            &mut scratch.noisy,
            &mut scratch.top,
        )?;
        out.clear();
        out.extend_from_slice(&scratch.top);
        Ok(())
    }

    /// Intra-run parallel path of [`run_top_k`](Self::run_top_k): all
    /// utilities are validated up front, every score `qᵢ·t + Gumbelᵢ` is
    /// produced in one batched
    /// [`gumbel_fill_offset`](DrawProvider::gumbel_fill_offset) (split
    /// across a per-block provider's threads), and the race's insertion
    /// rule replays over the precomputed scores in index order — the exact
    /// `f64`-total-order rule of `race_core`, so the
    /// result is bit-identical for any thread count of the same provider
    /// family. (Per-chunk reduce is deliberately *not* used here: the race
    /// orders by `total_cmp`, not the Noisy-Max `>=` rule.)
    pub fn run_top_k_par_with_scratch<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        k: usize,
        provider: &mut P,
        scratch: &mut TopKScratch,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut out = Vec::new();
        self.run_top_k_par_with_scratch_into(answers, k, provider, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of
    /// [`run_top_k_par_with_scratch`](Self::run_top_k_par_with_scratch).
    pub fn run_top_k_par_with_scratch_into<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        k: usize,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), MechanismError> {
        self.race_par_core(answers.values(), k, provider, scratch, out)
    }

    /// Slice-level body of the batched parallel race, shared with the
    /// unified [`crate::api`] call surface.
    pub(crate) fn race_par_core<P: DrawProvider>(
        &self,
        values: &[f64],
        k: usize,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), MechanismError> {
        Self::require_top_k_len(values.len(), k)?;
        Self::require_finite(values)?;
        provider.begin();
        let t = self.exponent();
        scratch.aux.clear();
        scratch.aux.extend(values.iter().map(|q| q * t));
        provider.gumbel_fill_offset(&scratch.aux, 1.0, &mut scratch.noisy);
        // The race's insertion rule over the precomputed scores: `out`
        // holds the k best indices, descending under the total order, ties
        // to the smaller index (identical to `race_core`, which compares
        // against its parallel sorted-score buffer — same values either way).
        out.clear();
        out.reserve(k.saturating_add(1).min(1024));
        for i in 0..scratch.noisy.len() {
            let s = scratch.noisy[i];
            if k == 0
                || (out.len() == k && s.total_cmp(&scratch.noisy[out[k - 1]]) != Ordering::Greater)
            {
                continue;
            }
            let pos = out.partition_point(|&j| scratch.noisy[j].total_cmp(&s) != Ordering::Less);
            out.insert(pos, i);
            if out.len() > k {
                out.pop();
            }
        }
        Ok(())
    }

    /// Streaming twin of [`run_top_k`](Self::run_top_k): the race over a
    /// lazy query stream with `O(k)` memory. The workload-size check moves
    /// to the end of the stream (a stream shorter than `k` is
    /// [`MechanismError::NotEnoughQueries`]).
    pub fn run_top_k_streaming<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        k: usize,
        rng: &mut StdRng,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut source = SamplingSource::new(rng);
        let (mut scores, mut top) = (Vec::new(), Vec::new());
        let processed = self.race_core(
            queries,
            k,
            &mut SourceDraws::new(&mut source),
            &mut scores,
            &mut top,
        )?;
        if processed < k {
            return Err(MechanismError::NotEnoughQueries {
                got: processed,
                need: k,
            });
        }
        Ok(top)
    }

    /// Streaming + scratch: the race over a lazy stream with
    /// [`TopKScratch`]'s reused buffers and a monomorphic RNG.
    pub fn run_top_k_streaming_with_scratch<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        k: usize,
        rng: &mut R,
        scratch: &mut TopKScratch,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut out = Vec::new();
        self.run_top_k_streaming_with_scratch_into(queries, k, rng, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of
    /// [`run_top_k_streaming_with_scratch`](Self::run_top_k_streaming_with_scratch).
    pub fn run_top_k_streaming_with_scratch_into<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        k: usize,
        rng: &mut R,
        scratch: &mut TopKScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), MechanismError> {
        let processed = self.race_core(
            queries,
            k,
            &mut RngDraws::new(rng),
            &mut scratch.noisy,
            &mut scratch.top,
        )?;
        if processed < k {
            return Err(MechanismError::NotEnoughQueries {
                got: processed,
                need: k,
            });
        }
        out.clear();
        out.extend_from_slice(&scratch.top);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![5.0, 3.0, 1.0])
    }

    #[test]
    fn validation() {
        assert!(ExponentialMechanism::new(0.0, true).is_err());
        assert_eq!(
            ExponentialMechanism::new(1.0, true).unwrap().exponent(),
            1.0
        );
        assert_eq!(
            ExponentialMechanism::new(1.0, false).unwrap().exponent(),
            0.5
        );
    }

    #[test]
    fn probabilities_sum_to_one_and_order_by_utility() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        let p = m.probabilities(&workload()).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1] && p[1] > p[2]);
        // Softmax ratio: p0/p1 = e^{(5-3)·1} = e².
        assert!((p[0] / p[1] - 2f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn probabilities_reject_degenerate_workloads() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        // Regression: all-(-inf) utilities used to return all-NaN
        // "probabilities" (the `q - m` max-subtraction yields -inf - -inf).
        let all_neg_inf = QueryAnswers::counting(vec![f64::NEG_INFINITY; 3]);
        assert!(matches!(
            m.probabilities(&all_neg_inf),
            Err(MechanismError::NonFiniteUtility { index: 0, .. })
        ));
        let with_nan = QueryAnswers::counting(vec![1.0, f64::NAN, 2.0]);
        assert!(matches!(
            m.probabilities(&with_nan),
            Err(MechanismError::NonFiniteUtility { index: 1, .. })
        ));
        assert!(matches!(
            m.probabilities(&QueryAnswers::counting(vec![])),
            Err(MechanismError::NotEnoughQueries { .. })
        ));
    }

    #[test]
    fn gumbel_sampler_matches_softmax() {
        let m = ExponentialMechanism::new(0.8, true).unwrap();
        let p = m.probabilities(&workload()).unwrap();
        let mut rng = rng_from_seed(50);
        let n = 200_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[m.run(&workload(), &mut rng).unwrap()] += 1;
        }
        for i in 0..3 {
            let emp = counts[i] as f64 / n as f64;
            let sigma = (p[i] * (1.0 - p[i]) / n as f64).sqrt();
            assert!((emp - p[i]).abs() < 5.0 * sigma, "i={i}: {emp} vs {}", p[i]);
        }
    }

    #[test]
    fn top_k_returns_distinct_indices() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        let mut rng = rng_from_seed(51);
        let sel = m.run_top_k(&workload(), 2, &mut rng).unwrap();
        assert_eq!(sel.len(), 2);
        assert_ne!(sel[0], sel[1]);
    }

    #[test]
    fn empty_workload_is_a_typed_error() {
        // Regression: used to be an `assert!` panic.
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        assert!(matches!(
            m.run(&QueryAnswers::counting(vec![]), &mut rng_from_seed(1)),
            Err(MechanismError::NotEnoughQueries { got: 0, need: 1 })
        ));
        assert!(matches!(
            m.run_streaming(std::iter::empty(), &mut rng_from_seed(1)),
            Err(MechanismError::NotEnoughQueries { got: 0, need: 1 })
        ));
    }

    #[test]
    fn oversized_k_is_a_typed_error() {
        // Regression: used to be an `assert!` panic on the materialized
        // path; the streaming path reports it at end-of-stream.
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        assert!(matches!(
            m.run_top_k(&workload(), 4, &mut rng_from_seed(1)),
            Err(MechanismError::InvalidK { k: 4, .. })
        ));
        assert!(matches!(
            m.run_top_k_streaming(
                workload().values().iter().copied(),
                4,
                &mut rng_from_seed(1)
            ),
            Err(MechanismError::NotEnoughQueries { got: 3, need: 4 })
        ));
    }

    #[test]
    fn nan_utility_is_a_typed_error_on_every_path() {
        // Regression: a NaN score used to panic `partial_cmp().unwrap()` in
        // `run_top_k` and silently lose every `>` comparison in `run`
        // (mis-selecting index 0 regardless of the race).
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        let bad = QueryAnswers::counting(vec![1.0, f64::NAN, 3.0]);
        let mut scratch = TopKScratch::new();
        assert!(matches!(
            m.run(&bad, &mut rng_from_seed(2)),
            Err(MechanismError::NonFiniteUtility { index: 1, .. })
        ));
        assert!(matches!(
            m.run_top_k(&bad, 2, &mut rng_from_seed(2)),
            Err(MechanismError::NonFiniteUtility { index: 1, .. })
        ));
        assert!(matches!(
            m.run_top_k_with_scratch(&bad, 2, &mut rng_from_seed(2), &mut scratch),
            Err(MechanismError::NonFiniteUtility { index: 1, .. })
        ));
        let inf = QueryAnswers::counting(vec![1.0, 2.0, f64::INFINITY]);
        assert!(matches!(
            m.run_streaming(inf.values().iter().copied(), &mut rng_from_seed(2)),
            Err(MechanismError::NonFiniteUtility { index: 2, .. })
        ));
    }

    #[test]
    fn k_zero_selects_nothing() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        assert!(m
            .run_top_k(&workload(), 0, &mut rng_from_seed(3))
            .unwrap()
            .is_empty());
        assert!(m
            .run_top_k(&QueryAnswers::counting(vec![]), 0, &mut rng_from_seed(3))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn run_is_the_k1_race_on_the_same_stream() {
        let m = ExponentialMechanism::new(0.9, false).unwrap();
        for seed in 0..20 {
            let a = m.run(&workload(), &mut rng_from_seed(seed)).unwrap();
            let b = m
                .run_top_k(&workload(), 1, &mut rng_from_seed(seed))
                .unwrap();
            assert_eq!(a, b[0], "seed {seed}");
        }
    }
}
