//! Classic (index-only) Noisy Max and Noisy Top-K — the baselines Algorithm 1
//! strictly improves on.
//!
//! Identical noise and selection to [`super::NoisyTopKWithGap`]; the only
//! difference is that the gaps are discarded. Theorem 2's point is that both
//! versions have exactly the same privacy cost, so this baseline is
//! implemented independently to make the experiments' comparison honest
//! (same draw pattern, same selection rule).

use super::top_k_scale;
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, RngDraws, SourceDraws};
use crate::error::{require_epsilon, MechanismError};
use crate::scratch::TopKScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// Index-only Noisy Top-K (Dwork & Roth's Noisy Max generalized to `k`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassicNoisyTopK {
    k: usize,
    epsilon: f64,
    monotonic: bool,
}

impl ClassicNoisyTopK {
    /// Creates the mechanism with privacy cost `epsilon` (see
    /// [`super::NoisyTopKWithGap::new`] for the scale convention).
    pub fn new(k: usize, epsilon: f64, monotonic: bool) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            monotonic,
        })
    }

    /// The number of selected queries.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The total privacy budget `ε` one run costs.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-query Laplace scale.
    pub fn scale(&self) -> f64 {
        top_k_scale(self.k, self.epsilon, self.monotonic)
    }

    /// The single copy of the index-only selection, generic over the
    /// [`DrawProvider`] noise comes through (same draw pattern and selection
    /// rule as the gap variant — Theorem 2's honest-comparison requirement).
    /// Writes the selected indices into `out`, reusing its buffer.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries (kept identical to the gap variant so the two are
    /// comparable on the same workloads).
    pub(crate) fn run_core<P: DrawProvider>(
        &self,
        answers: &[f64],
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), MechanismError> {
        crate::answers::require_min_len(answers, self.k + 1)?;
        provider.begin();
        provider.fill_offset(answers, self.scale(), &mut scratch.noisy);
        provider.select_top(&scratch.noisy, self.k, out);
        Ok(())
    }

    /// Runs the mechanism: indices of the `k` largest noisy answers,
    /// descending (`run_core` through [`SourceDraws`]).
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut out = Vec::new();
        self.run_core(
            answers.values(),
            &mut SourceDraws::new(source),
            &mut TopKScratch::new(),
            &mut out,
        )?;
        Ok(out)
    }

    /// Runs with a plain RNG.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run(
        &self,
        answers: &QueryAnswers,
        rng: &mut StdRng,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Batched, allocation-free fast path (see
    /// [`NoisyTopKWithGap::run_with_scratch`](crate::noisy_max::NoisyTopKWithGap::run_with_scratch)
    /// and [`crate::scratch`]). Output is bit-identical to
    /// [`run`](Self::run) on the same RNG stream.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut TopKScratch,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut out = Vec::new();
        self.run_with_scratch_into(answers, rng, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch):
    /// writes the selected indices into `out`, reusing its buffer.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut TopKScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), MechanismError> {
        self.run_core(answers.values(), &mut RngDraws::new(rng), scratch, out)
    }

    /// Intra-run parallel path (see
    /// [`NoisyTopKWithGap::run_par_with_scratch`](super::NoisyTopKWithGap::run_par_with_scratch)):
    /// `run_core` through a per-block provider, fill and selection split
    /// across its threads, bit-identical for any thread count.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_par_with_scratch<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        scratch: &mut TopKScratch,
    ) -> Result<Vec<usize>, MechanismError> {
        let mut out = Vec::new();
        self.run_par_with_scratch_into(answers, provider, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of
    /// [`run_par_with_scratch`](Self::run_par_with_scratch).
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_par_with_scratch_into<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), MechanismError> {
        self.run_core(answers.values(), provider, scratch, out)
    }
}

impl AlignedMechanism for ClassicNoisyTopK {
    type Input = QueryAnswers;
    type Output = Vec<usize>;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> Vec<usize> {
        #[allow(clippy::expect_used)]
        self.run_with_source(input, source)
            // lint:allow(panic-freedom): checker replays pre-validated workloads; not a serving path
            .expect("alignment checker workloads are pre-validated")
    }

    /// Same alignment as the gap variant (Eq. 2) — the proof never used the
    /// fact that gaps were withheld, which is the paper's core observation.
    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &Vec<usize>,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        let mut max_d = f64::NEG_INFINITY;
        let mut max_dp = f64::NEG_INFINITY;
        for l in 0..q.len() {
            if !output.contains(&l) {
                max_d = max_d.max(q[l] + tape.value(l));
                max_dp = max_dp.max(qp[l] + tape.value(l));
            }
        }
        tape.aligned_by(|i, _| {
            if output.contains(&i) {
                (q[i] - qp[i]) + (max_dp - max_d)
            } else {
                0.0
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Classic Noisy Max: `k = 1`, returns a single index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassicNoisyMax {
    inner: ClassicNoisyTopK,
}

impl ClassicNoisyMax {
    /// Creates the mechanism (see [`ClassicNoisyTopK::new`]).
    pub fn new(epsilon: f64, monotonic: bool) -> Result<Self, MechanismError> {
        Ok(Self {
            inner: ClassicNoisyTopK::new(1, epsilon, monotonic)?,
        })
    }

    /// Runs the mechanism, returning the approximate argmax index.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// 2 queries.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> Result<usize, MechanismError> {
        Ok(self.inner.run(answers, rng)?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noisy_max::NoisyTopKWithGap;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![50.0, 10.0, 45.0, 30.0, 2.0])
    }

    #[test]
    fn validation() {
        assert!(ClassicNoisyTopK::new(0, 1.0, true).is_err());
        assert!(ClassicNoisyTopK::new(1, -1.0, true).is_err());
    }

    #[test]
    fn selection_matches_gap_variant_on_same_noise_stream() {
        // Same seed => same noise => identical selections: the baseline and
        // the gap mechanism differ only in released information.
        let classic = ClassicNoisyTopK::new(3, 0.7, true).unwrap();
        let with_gap = NoisyTopKWithGap::new(3, 0.7, true).unwrap();
        for seed in 0..50 {
            let a = classic.run(&workload(), &mut rng_from_seed(seed)).unwrap();
            let b = with_gap.run(&workload(), &mut rng_from_seed(seed)).unwrap();
            assert_eq!(a, b.indices(), "seed {seed}");
        }
    }

    #[test]
    fn high_epsilon_selects_true_argmax() {
        let m = ClassicNoisyMax::new(1e6, true).unwrap();
        assert_eq!(m.run(&workload(), &mut rng_from_seed(1)).unwrap(), 0);
    }

    #[test]
    fn alignment_within_budget() {
        let m = ClassicNoisyTopK::new(2, 0.5, false).unwrap();
        let d = QueryAnswers::general(vec![5.0, 4.0, 3.0, 2.0]);
        let mut rng = rng_from_seed(9);
        for _ in 0..30 {
            let p = Perturbation::random(AdjacencyModel::General, d.len(), &mut rng);
            let dp = d.perturbed(p.deltas());
            let max = check_alignment_many(&m, &d, &dp, 20, &mut rng).unwrap();
            assert!(max <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn selection_quality_improves_with_epsilon() {
        // Accuracy sanity: higher ε finds the true top-2 more often.
        let d = workload();
        let truth = vec![0usize, 2];
        let hit = |eps: f64| {
            let m = ClassicNoisyTopK::new(2, eps, true).unwrap();
            let mut rng = rng_from_seed(33);
            (0..2_000)
                .filter(|_| {
                    let mut got = m.run(&d, &mut rng).unwrap();
                    got.sort_unstable();
                    got == truth
                })
                .count()
        };
        let low = hit(0.05);
        let high = hit(2.0);
        assert!(
            high > low,
            "high-ε hits {high} should beat low-ε hits {low}"
        );
    }
}
