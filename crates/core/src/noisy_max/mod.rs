//! The Noisy Max family: classic (index-only) baselines and the paper's
//! gap-releasing variants (§5).

mod classic;
mod discrete;
mod gap;
mod pairwise;

pub use classic::{ClassicNoisyMax, ClassicNoisyTopK};
pub use discrete::DiscreteNoisyTopKWithGap;
pub use gap::{NoisyMaxWithGap, NoisyTopKWithGap, TopKItem, TopKOutput};
pub use pairwise::{pairwise_gap, pairwise_gap_variance};

/// Indices of the `m` largest values, descending; ties broken by the smaller
/// index (continuous noise makes ties measure-zero, so any deterministic rule
/// is fine — this one keeps runs reproducible).
///
/// Insertion into a small sorted buffer: `O(n·m)` with tiny constants, which
/// beats a full sort for the paper's `m = k + 1 ≤ 26` against `n` up to
/// 41,270 (Kosarak).
///
/// Every mechanism path now goes through the allocation-free
/// [`top_indices_into`]; this allocating wrapper remains for the tests.
#[cfg(test)]
pub(crate) fn top_indices(values: &[f64], m: usize) -> Vec<usize> {
    let mut buf = Vec::new();
    top_indices_into(values, m, &mut buf);
    buf
}

/// [`top_indices`] writing into a caller-owned buffer — the allocation-free
/// form used by the scratch fast paths. `buf` is cleared first.
#[inline]
pub(crate) fn top_indices_into(values: &[f64], m: usize, buf: &mut Vec<usize>) {
    buf.clear();
    if m == 0 {
        return;
    }
    buf.reserve(m + 1);
    for i in 0..values.len() {
        if buf.len() == m && values[i] <= values[buf[m - 1]] {
            continue;
        }
        // Equal values sort earlier-index-first because we scan ascending.
        let pos = buf.partition_point(|&j| values[j] >= values[i]);
        buf.insert(pos, i);
        if buf.len() > m {
            buf.pop();
        }
    }
}

/// Smallest workload the parallel selection splits: below this the chunk
/// scans cannot amortize thread spawn, so [`par_top_indices_into`] falls
/// back to the sequential scan (which is bit-identical anyway).
pub(crate) const PAR_SELECT_MIN: usize = 4096;

/// Parallel twin of [`top_indices_into`]: up to `threads` scoped threads
/// each run the sequential scan over one contiguous chunk, and the chunk
/// winners merge under the scan's exact insertion rule, visited in
/// ascending global index order.
///
/// Bit-identical to [`top_indices_into`] whenever no value is NaN: the
/// sequential scan's final buffer is the top `m` under the total order
/// (value descending, index ascending), the global top `m` is contained in
/// the union of the chunk top-`m`s, and replaying that union in ascending
/// index order reproduces the same buffer. NaN values (for which `>=` is
/// not a total order) and small/degenerate shapes fall back to the
/// sequential scan. `chunk_tops` is caller-owned scratch for the per-chunk
/// winners.
pub(crate) fn par_top_indices_into(
    values: &[f64],
    m: usize,
    threads: usize,
    chunk_tops: &mut Vec<Vec<usize>>,
    buf: &mut Vec<usize>,
) {
    if threads <= 1
        || m == 0
        || values.len() < PAR_SELECT_MIN
        || values.len() <= m.saturating_mul(threads)
        || values.iter().any(|v| v.is_nan())
    {
        top_indices_into(values, m, buf);
        return;
    }
    let chunk = values.len().div_ceil(threads);
    chunk_tops.resize_with(threads, Vec::new);
    std::thread::scope(|scope| {
        for (t, top) in chunk_tops.iter_mut().enumerate() {
            let lo = (t * chunk).min(values.len());
            let hi = (lo + chunk).min(values.len());
            scope.spawn(move || {
                top_indices_into(&values[lo..hi], m, top);
                for idx in top.iter_mut() {
                    *idx += lo;
                }
            });
        }
    });
    // Chunks are contiguous, so sorting each chunk's winners and visiting
    // chunks in order yields candidates in ascending global index — the
    // order the tie rule (earlier index wins) depends on.
    buf.clear();
    buf.reserve(m + 1);
    for top in chunk_tops.iter_mut() {
        top.sort_unstable();
        for &i in top.iter() {
            if buf.len() == m && values[i] <= values[buf[m - 1]] {
                continue;
            }
            let pos = buf.partition_point(|&j| values[j] >= values[i]);
            buf.insert(pos, i);
            if buf.len() > m {
                buf.pop();
            }
        }
    }
}

/// The per-query Laplace scale of the Noisy Top-K family at budget `epsilon`:
/// `2k/ε` in general, `k/ε` for monotone workloads (Theorem 2's factor two).
pub(crate) fn top_k_scale(k: usize, epsilon: f64, monotonic: bool) -> f64 {
    let factor = if monotonic { 1.0 } else { 2.0 };
    factor * k as f64 / epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_indices_basic() {
        let v = [3.0, 9.0, 1.0, 9.0, 8.0];
        assert_eq!(top_indices(&v, 1), vec![1]);
        assert_eq!(top_indices(&v, 3), vec![1, 3, 4]); // tie at 9.0: index 1 first
        assert_eq!(top_indices(&v, 99), vec![1, 3, 4, 0, 2]);
        assert!(top_indices(&v, 0).is_empty());
    }

    #[test]
    fn top_indices_matches_full_sort() {
        use free_gap_noise::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(12);
        for _ in 0..50 {
            let n = rng.gen_range(1..60);
            let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let m = rng.gen_range(0..n + 3);
            let fast = top_indices(&v, m);
            let mut all: Vec<usize> = (0..n).collect();
            all.sort_by(|&a, &b| v[b].partial_cmp(&v[a]).unwrap().then(a.cmp(&b)));
            all.truncate(m);
            assert_eq!(fast, all, "n={n} m={m} v={v:?}");
        }
    }

    #[test]
    fn scale_doubles_for_general_queries() {
        assert_eq!(top_k_scale(3, 1.5, true), 2.0);
        assert_eq!(top_k_scale(3, 1.5, false), 4.0);
    }

    #[test]
    fn par_top_indices_matches_sequential_scan() {
        use free_gap_noise::rng::rng_from_seed;
        use rand::Rng;
        let mut rng = rng_from_seed(77);
        let mut chunk_tops = Vec::new();
        // Quantized values force heavy ties, exercising the earlier-index
        // tie rule across chunk boundaries; sizes straddle PAR_SELECT_MIN.
        for n in [
            0,
            50,
            PAR_SELECT_MIN - 1,
            PAR_SELECT_MIN,
            PAR_SELECT_MIN + 1,
            3 * PAR_SELECT_MIN + 17,
        ] {
            let v: Vec<f64> = (0..n).map(|_| rng.gen_range(0..40) as f64 * 0.5).collect();
            for m in [0, 1, 5, 26] {
                let mut seq = Vec::new();
                top_indices_into(&v, m, &mut seq);
                for threads in [1, 2, 3, 4] {
                    let mut par = Vec::new();
                    par_top_indices_into(&v, m, threads, &mut chunk_tops, &mut par);
                    assert_eq!(seq, par, "n={n} m={m} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn par_top_indices_handles_signed_zero_and_nan() {
        // ±0.0 compare equal under `>=`, so both paths break the tie by
        // index; NaN breaks the total order and must hit the sequential
        // fallback (which then matches trivially).
        let mut v: Vec<f64> = (0..2 * PAR_SELECT_MIN)
            .map(|i| if i % 2 == 0 { 0.0 } else { -0.0 })
            .collect();
        let mut chunk_tops = Vec::new();
        let (mut seq, mut par) = (Vec::new(), Vec::new());
        top_indices_into(&v, 7, &mut seq);
        par_top_indices_into(&v, 7, 4, &mut chunk_tops, &mut par);
        assert_eq!(seq, par);
        v[13] = f64::NAN;
        top_indices_into(&v, 7, &mut seq);
        par_top_indices_into(&v, 7, 4, &mut chunk_tops, &mut par);
        assert_eq!(seq, par);
    }
}
