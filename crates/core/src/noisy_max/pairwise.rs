//! Pairwise gap algebra (§5.1).
//!
//! The released gaps telescope: the estimated gap between the `a`-th and
//! `b`-th selected queries is `Σ_{i=a}^{b-1} gᵢ = q̃_{j_a} - q̃_{j_b}`, whose
//! randomness is just *two* Laplace noises (the intermediate ones cancel),
//! so its variance is `4·scale²` — `16k²/ε²` at Algorithm 1's general scale,
//! independent of how far apart `a` and `b` are.

use super::gap::TopKOutput;
use super::top_k_scale;

/// Estimated noisy gap between the `a`-th and `b`-th selected queries
/// (1-indexed ranks, `a < b <= k`): `q̃_{j_a} - q̃_{j_b}`.
///
/// # Panics
/// Panics unless `1 <= a < b <= k + 1` where `k` is the number of items
/// (rank `k + 1` is the runner-up, reachable because the `k`-th gap bridges
/// to it).
pub fn pairwise_gap(output: &TopKOutput, a: usize, b: usize) -> f64 {
    let k = output.items.len();
    // lint:allow(panic-freedom): documented precondition on rank indices — a caller property, not data
    assert!(
        a >= 1 && a < b && b <= k + 1,
        "need 1 <= a < b <= k+1, got a={a}, b={b}, k={k}"
    );
    output.items[(a - 1)..(b - 1)].iter().map(|it| it.gap).sum()
}

/// Variance of any pairwise gap estimate from a mechanism configured with
/// (`k`, `epsilon`, `monotonic`): `4·scale²`, i.e. `16k²/ε²` in general and
/// `4k²/ε²` for monotone workloads.
pub fn pairwise_gap_variance(k: usize, epsilon: f64, monotonic: bool) -> f64 {
    let s = top_k_scale(k, epsilon, monotonic);
    4.0 * s * s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::QueryAnswers;
    use crate::noisy_max::{NoisyTopKWithGap, TopKItem};
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;

    fn output() -> TopKOutput {
        TopKOutput {
            items: vec![
                TopKItem { index: 3, gap: 2.0 },
                TopKItem { index: 1, gap: 0.5 },
                TopKItem { index: 4, gap: 1.5 },
            ],
        }
    }

    #[test]
    fn telescoping_sums() {
        let o = output();
        assert_eq!(pairwise_gap(&o, 1, 2), 2.0);
        assert_eq!(pairwise_gap(&o, 1, 3), 2.5);
        assert_eq!(pairwise_gap(&o, 2, 4), 2.0);
        assert_eq!(pairwise_gap(&o, 1, 4), 4.0); // down to the runner-up
    }

    #[test]
    #[should_panic(expected = "need 1 <= a < b")]
    fn rank_bounds_checked() {
        pairwise_gap(&output(), 2, 2);
    }

    #[test]
    fn variance_formula_matches_paper() {
        // General: 16 k² / ε².
        assert!((pairwise_gap_variance(3, 0.5, false) - 16.0 * 9.0 / 0.25).abs() < 1e-9);
        // Monotone: 4 k² / ε².
        assert!((pairwise_gap_variance(3, 0.5, true) - 4.0 * 9.0 / 0.25).abs() < 1e-9);
    }

    #[test]
    fn empirical_pairwise_variance_independent_of_distance() {
        // Variance of q̃_a − q̃_b must not grow with b − a.
        let answers = QueryAnswers::counting(vec![1000.0, 900.0, 800.0, 700.0, 0.0]);
        let m = NoisyTopKWithGap::new(4, 8.0, true).unwrap();
        let mut rng = rng_from_seed(77);
        let mut adjacent = RunningMoments::new();
        let mut distant = RunningMoments::new();
        for _ in 0..30_000 {
            let o = m.run(&answers, &mut rng).unwrap();
            // Condition on the dominant ordering so ranks map to fixed queries.
            if o.indices() == vec![0, 1, 2, 3] {
                adjacent.push(pairwise_gap(&o, 1, 2));
                distant.push(pairwise_gap(&o, 1, 4));
            }
        }
        let expect = pairwise_gap_variance(4, 8.0, true);
        let rel_adj = (adjacent.variance() - expect).abs() / expect;
        let rel_dist = (distant.variance() - expect).abs() / expect;
        assert!(
            rel_adj < 0.1,
            "adjacent var {} vs {expect}",
            adjacent.variance()
        );
        assert!(
            rel_dist < 0.1,
            "distant var {} vs {expect}",
            distant.variance()
        );
    }
}
