//! Noisy-Top-K-with-Gap — the paper's Algorithm 1.
//!
//! Adds `Lap(2k/ε)` noise (or `Lap(k/ε)` for monotone workloads) to every
//! query, returns the indices of the `k` largest noisy answers in descending
//! order, **and** — for free — the noisy gap between each selected query and
//! the next-best noisy answer. Theorem 2: this satisfies ε-DP (the classic
//! index-only mechanism has the *same* privacy cost, so withholding the gaps
//! wastes information).
//!
//! The local alignment (Lemma 2, Eq. 2) keeps the noise of all losing
//! queries fixed and shifts each winner by
//! `qᵢ - q'ᵢ + max_{l∉I}(q'_l + η_l) - max_{l∉I}(q_l + η_l)`,
//! which preserves every win margin exactly.

use super::top_k_scale;
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, RngDraws, SourceDraws};
use crate::error::{require_epsilon, MechanismError};
use crate::scratch::TopKScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// One selected query: its index and the noisy gap to the next-best noisy
/// answer (`gᵢ = q̃_{jᵢ} - q̃_{jᵢ₊₁}` in the paper's notation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKItem {
    /// Index of the selected query.
    pub index: usize,
    /// Noisy gap to the next-ranked noisy answer; positive by construction.
    pub gap: f64,
}

/// Output of [`NoisyTopKWithGap`]: `k` items in descending noisy order.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKOutput {
    /// Selected queries, best first.
    pub items: Vec<TopKItem>,
}

impl TopKOutput {
    /// Just the selected indices, in rank order.
    pub fn indices(&self) -> Vec<usize> {
        self.items.iter().map(|it| it.index).collect()
    }

    /// Just the gaps, in rank order.
    pub fn gaps(&self) -> Vec<f64> {
        self.items.iter().map(|it| it.gap).collect()
    }
}

/// Noisy-Top-K-with-Gap (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyTopKWithGap {
    k: usize,
    epsilon: f64,
    monotonic: bool,
}

impl NoisyTopKWithGap {
    /// Creates the mechanism: select `k` queries under total budget
    /// `epsilon`; `monotonic` enables the counting-query analysis that
    /// halves the noise (Theorem 2).
    ///
    /// The paper states Algorithm 1 with noise `Lap(2k/ε)` and budget `ε`
    /// (`ε/2` when monotone); this constructor instead fixes the *privacy
    /// cost* at `epsilon` and chooses the noise accordingly.
    pub fn new(k: usize, epsilon: f64, monotonic: bool) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            monotonic,
        })
    }

    /// The number of selected queries `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The total privacy budget `ε` one run costs.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-query Laplace scale.
    pub fn scale(&self) -> f64 {
        top_k_scale(self.k, self.epsilon, self.monotonic)
    }

    /// Variance of each released gap: `2·Var(Lap(scale)) = 4·scale²`
    /// (a gap is the difference of two independent noisy answers).
    pub fn gap_variance(&self) -> f64 {
        4.0 * self.scale() * self.scale()
    }

    /// The single copy of Algorithm 1, generic over the [`DrawProvider`]
    /// noise comes through: one `Lap(scale)` draw per query (batched by the
    /// provider's [`fill_offset`](DrawProvider::fill_offset), fused with the
    /// `+ q` offset so the `n`-sized buffer is written exactly once),
    /// selection of the top `k + 1`, gap construction. Buffers live in
    /// `scratch`; the output is written into `out`, reusing its buffer.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries (the `k`-th gap needs a runner-up).
    pub(crate) fn run_core<P: DrawProvider>(
        &self,
        answers: &[f64],
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut TopKOutput,
    ) -> Result<(), MechanismError> {
        crate::answers::require_min_len(answers, self.k + 1)?;
        provider.begin();
        provider.fill_offset(answers, self.scale(), &mut scratch.noisy);
        provider.select_top(&scratch.noisy, self.k + 1, &mut scratch.top);
        out.items.clear();
        out.items.extend((0..self.k).map(|i| TopKItem {
            index: scratch.top[i],
            gap: scratch.noisy[scratch.top[i]] - scratch.noisy[scratch.top[i + 1]],
        }));
        Ok(())
    }

    /// Runs the mechanism against a noise source
    /// (`run_core` through the [`SourceDraws`] adapter).
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> Result<TopKOutput, MechanismError> {
        let mut out = TopKOutput { items: Vec::new() };
        self.run_core(
            answers.values(),
            &mut SourceDraws::new(source),
            &mut TopKScratch::new(),
            &mut out,
        )?;
        Ok(out)
    }

    /// Runs with a plain RNG (production path, no recording).
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run(
        &self,
        answers: &QueryAnswers,
        rng: &mut StdRng,
    ) -> Result<TopKOutput, MechanismError> {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Batched, allocation-free fast path: `run_core`
    /// through [`RngDraws`] — noise is drawn in one
    /// [`fill_into_offset`](free_gap_noise::ContinuousDistribution::fill_into_offset)
    /// pass into `scratch`'s reused buffers and the RNG is monomorphic (no
    /// `dyn` dispatch). Output is bit-identical to [`run`](Self::run) on the
    /// same RNG stream; see [`crate::scratch`] for the contract.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries, like [`run_with_source`](Self::run_with_source).
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut TopKScratch,
    ) -> Result<TopKOutput, MechanismError> {
        let mut out = TopKOutput { items: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch):
    /// writes into `out`, reusing its `items` buffer across runs.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut TopKScratch,
        out: &mut TopKOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(answers.values(), &mut RngDraws::new(rng), scratch, out)
    }

    /// Intra-run parallel path: `run_core` through a per-block provider —
    /// [`ParallelDraws`](crate::draw::ParallelDraws) to split the noise fill
    /// and Top-K selection across threads, or its sequential reference
    /// [`BlockSeqDraws`](crate::draw::BlockSeqDraws), which is bit-identical
    /// for any thread count. Note the run is keyed by the provider's
    /// `run_seed`, a *different stream* from the single-RNG paths.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_par_with_scratch<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        scratch: &mut TopKScratch,
    ) -> Result<TopKOutput, MechanismError> {
        let mut out = TopKOutput { items: Vec::new() };
        self.run_par_with_scratch_into(answers, provider, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of
    /// [`run_par_with_scratch`](Self::run_par_with_scratch).
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_par_with_scratch_into<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut TopKOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(answers.values(), provider, scratch, out)
    }

    /// Gap-releasing selection through an arbitrary [`DrawProvider`] — the
    /// hook the select-then-measure pipeline core drives.
    pub(crate) fn run_provider<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        scratch: &mut TopKScratch,
    ) -> Result<TopKOutput, MechanismError> {
        let mut out = TopKOutput { items: Vec::new() };
        self.run_core(answers.values(), provider, scratch, &mut out)?;
        Ok(out)
    }
}

impl AlignedMechanism for NoisyTopKWithGap {
    type Input = QueryAnswers;
    type Output = TopKOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> TopKOutput {
        // The alignment checker's trait is infallible by design (it replays
        // recorded tapes, so the workload was already validated on the
        // recording run); a short workload here is a checker-harness bug.
        #[allow(clippy::expect_used)]
        self.run_with_source(input, source)
            // lint:allow(panic-freedom): checker replays pre-validated workloads; not a serving path
            .expect("alignment checker workloads are pre-validated")
    }

    /// Equation (2): identity on losers; winners shifted to preserve margins.
    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &TopKOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        // lint:allow(panic-freedom): alignment-checker invariant — adjacent workloads share arity by construction
        assert_eq!(q.len(), qp.len(), "adjacent inputs must have equal arity");
        // lint:allow(panic-freedom): alignment-checker invariant — the tape recorded one draw per query
        assert_eq!(tape.len(), q.len(), "tape must hold one draw per query");
        let selected = output.indices();

        // max over unselected of q_l + η_l and q'_l + η_l (same η — losers
        // keep their noise).
        let mut max_d = f64::NEG_INFINITY;
        let mut max_dp = f64::NEG_INFINITY;
        for l in 0..q.len() {
            if !selected.contains(&l) {
                max_d = max_d.max(q[l] + tape.value(l));
                max_dp = max_dp.max(qp[l] + tape.value(l));
            }
        }
        debug_assert!(max_d.is_finite(), "k < n guarantees at least one loser");

        tape.aligned_by(|i, _| {
            if selected.contains(&i) {
                (q[i] - qp[i]) + (max_dp - max_d)
            } else {
                0.0
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn outputs_match(&self, a: &TopKOutput, b: &TopKOutput) -> bool {
        a.items.len() == b.items.len()
            && a.items.iter().zip(&b.items).all(|(x, y)| {
                x.index == y.index
                    && (x.gap - y.gap).abs() <= 1e-9 * x.gap.abs().max(y.gap.abs()).max(1.0)
            })
    }
}

/// Noisy-Max-with-Gap: the `k = 1` special case of Algorithm 1, returning
/// the approximate argmax and its margin over the runner-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyMaxWithGap {
    inner: NoisyTopKWithGap,
}

impl NoisyMaxWithGap {
    /// Creates the mechanism (see [`NoisyTopKWithGap::new`]).
    pub fn new(epsilon: f64, monotonic: bool) -> Result<Self, MechanismError> {
        Ok(Self {
            inner: NoisyTopKWithGap::new(1, epsilon, monotonic)?,
        })
    }

    /// Runs the mechanism, returning `(argmax index, gap to runner-up)`.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// 2 queries.
    pub fn run(
        &self,
        answers: &QueryAnswers,
        rng: &mut StdRng,
    ) -> Result<(usize, f64), MechanismError> {
        let out = self.inner.run(answers, rng)?;
        let item = out.items[0];
        Ok((item.index, item.gap))
    }

    /// The underlying top-k mechanism (for alignment checking).
    pub fn as_top_k(&self) -> &NoisyTopKWithGap {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::checker::{check_alignment, check_alignment_many};
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;
    use proptest::prelude::*;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![100.0, 40.0, 95.0, 80.0, 3.0, 60.0])
    }

    #[test]
    fn construction_validation() {
        assert!(NoisyTopKWithGap::new(0, 1.0, true).is_err());
        assert!(NoisyTopKWithGap::new(1, 0.0, true).is_err());
        let m = NoisyTopKWithGap::new(2, 1.0, true).unwrap();
        assert_eq!(m.scale(), 2.0);
        assert_eq!(NoisyTopKWithGap::new(2, 1.0, false).unwrap().scale(), 4.0);
    }

    #[test]
    fn output_shape_and_gap_positivity() {
        let m = NoisyTopKWithGap::new(3, 1.0, true).unwrap();
        let mut rng = rng_from_seed(5);
        for _ in 0..200 {
            let out = m.run(&workload(), &mut rng).unwrap();
            assert_eq!(out.items.len(), 3);
            assert!(out.gaps().iter().all(|&g| g >= 0.0));
            // indices distinct
            let mut idx = out.indices();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), 3);
        }
    }

    #[test]
    fn short_workload_returns_typed_error() {
        // Regression: this used to panic through `unwrap_or_else(panic!)`;
        // a user-reachable workload shape must surface as a typed error.
        let m = NoisyTopKWithGap::new(5, 1.0, true).unwrap();
        let err = m
            .run(&QueryAnswers::counting(vec![1.0; 5]), &mut rng_from_seed(1))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::MechanismError::NotEnoughQueries { need: 6, got: 5 }
        ));
        // The scratch fast path fails identically.
        let m2 = NoisyTopKWithGap::new(5, 1.0, true).unwrap();
        assert!(m2
            .run_with_scratch(
                &QueryAnswers::counting(vec![1.0; 5]),
                &mut rng_from_seed(1),
                &mut TopKScratch::new(),
            )
            .is_err());
    }

    #[test]
    fn high_epsilon_recovers_true_ranking() {
        let m = NoisyTopKWithGap::new(2, 1e6, true).unwrap();
        let out = m.run(&workload(), &mut rng_from_seed(3)).unwrap();
        assert_eq!(out.indices(), vec![0, 2]);
        // gaps approach the true margins 5 and 15
        assert!((out.items[0].gap - 5.0).abs() < 0.1);
        assert!((out.items[1].gap - 15.0).abs() < 0.1);
    }

    #[test]
    fn gaps_are_unbiased_estimates_of_true_margins() {
        // With moderate noise, E[gap_i | selection correct] is biased by
        // selection, but E[q̃_a - q̃_b] for fixed indices is exact. Use high
        // enough epsilon that selection is almost always the true ranking.
        let m = NoisyTopKWithGap::new(2, 50.0, true).unwrap();
        let mut rng = rng_from_seed(11);
        let mut g0 = RunningMoments::new();
        for _ in 0..20_000 {
            let out = m.run(&workload(), &mut rng).unwrap();
            if out.indices() == vec![0, 2] {
                g0.push(out.items[0].gap);
            }
        }
        assert!((g0.mean() - 5.0).abs() < 0.2, "mean gap = {}", g0.mean());
    }

    #[test]
    fn alignment_checks_monotone_budget() {
        let m = NoisyTopKWithGap::new(3, 0.7, true).unwrap();
        let d = workload();
        let mut rng = rng_from_seed(21);
        for trial in 0..50 {
            let p = Perturbation::random(
                if trial % 2 == 0 {
                    AdjacencyModel::MonotoneUp
                } else {
                    AdjacencyModel::MonotoneDown
                },
                d.len(),
                &mut rng,
            );
            let dp = d.perturbed(p.deltas());
            let max = check_alignment_many(&m, &d, &dp, 20, &mut rng).unwrap();
            assert!(max <= 0.7 + 1e-9, "cost {max}");
        }
    }

    #[test]
    fn alignment_checks_general_budget() {
        let m = NoisyTopKWithGap::new(2, 1.1, false).unwrap();
        let d = QueryAnswers::general(vec![10.0, 9.5, 9.0, 2.0, 8.5]);
        let mut rng = rng_from_seed(22);
        for _ in 0..50 {
            let p = Perturbation::random(AdjacencyModel::General, d.len(), &mut rng);
            let dp = d.perturbed(p.deltas());
            let max = check_alignment_many(&m, &d, &dp, 20, &mut rng).unwrap();
            assert!(max <= 1.1 + 1e-9, "cost {max}");
        }
    }

    #[test]
    fn uniform_monotone_shift_has_zero_alignment_cost() {
        // When every answer moves by exactly +1, the winners' displacement
        // (q - q') and the losers' max displacement cancel: Eq. (2) shifts
        // nothing and the cost is 0 regardless of ε.
        let m = NoisyTopKWithGap::new(2, 0.9, true).unwrap();
        let d = workload();
        let dp =
            d.perturbed(Perturbation::extreme(AdjacencyModel::MonotoneUp, d.len(), 0).deltas());
        let mut rng = rng_from_seed(30);
        let max = check_alignment_many(&m, &d, &dp, 300, &mut rng).unwrap();
        assert!(max.abs() < 1e-9, "uniform shift should cost 0, got {max}");
    }

    #[test]
    fn alignment_worst_case_touches_budget() {
        // Tightness of Theorem 2 (monotone case): move only the winners by
        // +1 and leave the losers fixed. Each selected draw then shifts by
        // exactly -1, costing ε/k apiece — ε in total whenever the mechanism
        // selects precisely the perturbed pair.
        let m = NoisyTopKWithGap::new(2, 0.9, true).unwrap();
        let d = workload(); // true top-2 = indices {0, 2} with margin 15
        let mut deltas = vec![0.0; d.len()];
        deltas[0] = 1.0;
        deltas[2] = 1.0;
        let dp = d.perturbed(Perturbation::from_deltas(deltas).deltas());
        let mut rng = rng_from_seed(30);
        let max = check_alignment_many(&m, &d, &dp, 300, &mut rng).unwrap();
        assert!(max <= 0.9 + 1e-9, "cost {max} over budget");
        assert!(
            max > 0.9 - 1e-9,
            "expected a run that attains ε, best was {max}"
        );
    }

    #[test]
    fn noisy_max_with_gap_wraps_k1() {
        let m = NoisyMaxWithGap::new(1.0, true).unwrap();
        let (idx, gap) = m.run(&workload(), &mut rng_from_seed(2)).unwrap();
        assert!(idx < 6);
        assert!(gap >= 0.0);
        assert_eq!(m.as_top_k().k(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn alignment_holds_on_random_workloads(
            values in proptest::collection::vec(0.0f64..100.0, 4..12),
            k in 1usize..3,
            monotone in proptest::bool::ANY,
            seed in 0u64..10_000,
        ) {
            let k = k.min(values.len() - 1);
            let answers = if monotone {
                QueryAnswers::counting(values)
            } else {
                QueryAnswers::general(values)
            };
            let m = NoisyTopKWithGap::new(k, 0.8, monotone).unwrap();
            let mut rng = rng_from_seed(seed);
            let model = if monotone { AdjacencyModel::MonotoneUp } else { AdjacencyModel::General };
            let p = Perturbation::random(model, answers.len(), &mut rng);
            let dp = answers.perturbed(p.deltas());
            let report = check_alignment(&m, &answers, &dp, &mut rng);
            prop_assert!(report.is_ok(), "{:?}", report.err().map(|e| e.to_string()));
        }
    }
}
