//! Noisy-Top-K-with-Gap under **discrete Laplace** noise — the
//! finite-precision variant the paper's "implementation issues" paragraph
//! (§5.1) analyses.
//!
//! The continuous analysis assumes ties never happen; a real implementation
//! adds noise supported on multiples of a base `γ`, where ties have positive
//! probability and the guarantee degrades to `(ε, δ)`-DP with
//! `δ ≤ n²·γε'·(1 + e⁻¹)` (Appendix A.1; `ε'` the per-query rate). This
//! module implements that variant end-to-end:
//!
//! * integer-valued queries (counts) with noise on the same lattice, so all
//!   released gaps are exact multiples of `γ`;
//! * deterministic tie-breaking by index (the event `δ` pays for);
//! * [`DiscreteNoisyTopKWithGap::delta`] computing the Appendix-A.1 bound
//!   for a given workload size;
//! * the same Eq.-2 alignment, whose shifts are automatically lattice-valued
//!   because adjacent integer workloads differ by integers.

use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, RngDraws, SourceDraws};
use crate::error::{require_epsilon, MechanismError};
use crate::noisy_max::{TopKItem, TopKOutput};
use crate::scratch::TopKScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use free_gap_noise::tie::union_tie_bound;
use rand::rngs::StdRng;
use rand::Rng;

/// Noisy-Top-K-with-Gap over integer counts with discrete Laplace noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteNoisyTopKWithGap {
    k: usize,
    epsilon: f64,
    monotonic: bool,
    gamma: f64,
}

impl DiscreteNoisyTopKWithGap {
    /// Creates the mechanism with support step `γ = 1` (integer counts).
    pub fn new(k: usize, epsilon: f64, monotonic: bool) -> Result<Self, MechanismError> {
        Self::with_gamma(k, epsilon, monotonic, 1.0)
    }

    /// Creates the mechanism over the lattice `{m·γ}`. Queries must be
    /// multiples of `γ`.
    pub fn with_gamma(
        k: usize,
        epsilon: f64,
        monotonic: bool,
        gamma: f64,
    ) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        if !(gamma.is_finite() && gamma > 0.0) {
            return Err(MechanismError::InvalidEpsilon { value: gamma });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            monotonic,
            gamma,
        })
    }

    /// The total privacy budget `ε` one run costs.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The per-query noise rate per unit of value: `ε/(2k)` in general,
    /// `ε/k` for monotone workloads (the discrete analogue of `Lap(2k/ε)`).
    pub fn unit_epsilon(&self) -> f64 {
        let factor = if self.monotonic { 1.0 } else { 2.0 };
        self.epsilon / (factor * self.k as f64)
    }

    /// Appendix A.1: the `δ` of the `(ε, δ)` guarantee for an `n`-query
    /// workload — the probability of any tie among the noisy answers.
    pub fn delta(&self, n: usize) -> f64 {
        #[allow(clippy::expect_used)]
        union_tie_bound(n, self.unit_epsilon(), self.gamma)
            // lint:allow(panic-freedom): rate and γ were range-checked in with_gamma; the bound cannot fail
            .expect("parameters validated at construction")
    }

    fn validate_lattice(&self, answers: &[f64]) {
        debug_assert!(
            answers.iter().all(|v| {
                let steps = v / self.gamma;
                (steps - steps.round()).abs() < 1e-9
            }),
            "query answers must be multiples of γ = {}",
            self.gamma
        );
    }

    /// The single copy of the discrete Top-K selection, generic over the
    /// [`DrawProvider`] noise comes through: one discrete Laplace draw per
    /// query (batched by the provider's
    /// [`discrete_fill_offset`](DrawProvider::discrete_fill_offset), fused
    /// with the `+ q` offset so the `n`-sized buffer is written exactly
    /// once), selection of the top `k + 1`, gap construction. Buffers live
    /// in `scratch`; the output is written into `out`, reusing its buffer.
    pub(crate) fn run_core<P: DrawProvider>(
        &self,
        answers: &[f64],
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut TopKOutput,
    ) -> Result<(), MechanismError> {
        crate::answers::require_min_len(answers, self.k + 1)?;
        self.validate_lattice(answers);
        provider.begin();
        provider.discrete_fill_offset(answers, self.unit_epsilon(), self.gamma, &mut scratch.noisy);
        provider.select_top(&scratch.noisy, self.k + 1, &mut scratch.top);
        out.items.clear();
        out.items.extend((0..self.k).map(|i| TopKItem {
            index: scratch.top[i],
            gap: scratch.noisy[scratch.top[i]] - scratch.noisy[scratch.top[i + 1]],
        }));
        Ok(())
    }

    /// Runs the mechanism. Ties among noisy answers are broken by the
    /// smaller index; `delta(n)` bounds the probability that a tie among
    /// the top `k + 1` occurred at all.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> Result<TopKOutput, MechanismError> {
        let mut out = TopKOutput { items: Vec::new() };
        self.run_core(
            answers.values(),
            &mut SourceDraws::new(source),
            &mut TopKScratch::new(),
            &mut out,
        )?;
        Ok(out)
    }

    /// Runs with a plain RNG.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run(
        &self,
        answers: &QueryAnswers,
        rng: &mut StdRng,
    ) -> Result<TopKOutput, MechanismError> {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Batched, allocation-free fast path: `run_core` through [`RngDraws`]
    /// — the whole noisy vector is drawn in one
    /// [`fill_values_into_offset`](free_gap_noise::DiscreteDistribution::fill_values_into_offset)
    /// pass with the distribution's `exp`/`ln` normalization hoisted out of
    /// the loop, buffers live in `scratch`, and the RNG is monomorphic (no
    /// `dyn` dispatch). Output is bit-identical to [`run`](Self::run) on
    /// the same RNG stream; see [`crate::scratch`] for the contract.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut TopKScratch,
    ) -> Result<TopKOutput, MechanismError> {
        let mut out = TopKOutput { items: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch):
    /// writes into `out`, reusing its `items` buffer across runs.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut TopKScratch,
        out: &mut TopKOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(answers.values(), &mut RngDraws::new(rng), scratch, out)
    }

    /// Intra-run parallel path (see
    /// [`NoisyTopKWithGap::run_par_with_scratch`](crate::noisy_max::NoisyTopKWithGap::run_par_with_scratch)):
    /// `run_core` through a per-block provider, discrete fill and selection
    /// split across its threads, bit-identical for any thread count.
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_par_with_scratch<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        scratch: &mut TopKScratch,
    ) -> Result<TopKOutput, MechanismError> {
        let mut out = TopKOutput { items: Vec::new() };
        self.run_par_with_scratch_into(answers, provider, scratch, &mut out)?;
        Ok(out)
    }

    /// Allocation-free twin of
    /// [`run_par_with_scratch`](Self::run_par_with_scratch).
    ///
    /// # Errors
    /// [`MechanismError::NotEnoughQueries`] if the workload has fewer than
    /// `k + 1` queries.
    pub fn run_par_with_scratch_into<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut TopKOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(answers.values(), provider, scratch, out)
    }
}

impl AlignedMechanism for DiscreteNoisyTopKWithGap {
    type Input = QueryAnswers;
    type Output = TopKOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> TopKOutput {
        #[allow(clippy::expect_used)]
        self.run_with_source(input, source)
            // lint:allow(panic-freedom): checker replays pre-validated workloads; not a serving path
            .expect("alignment checker workloads are pre-validated")
    }

    /// Eq. (2) verbatim; all shifts are integer combinations of lattice
    /// points, so the aligned tape stays on the support.
    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &TopKOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        let selected = output.indices();
        let mut max_d = f64::NEG_INFINITY;
        let mut max_dp = f64::NEG_INFINITY;
        for l in 0..q.len() {
            if !selected.contains(&l) {
                max_d = max_d.max(q[l] + tape.value(l));
                max_dp = max_dp.max(qp[l] + tape.value(l));
            }
        }
        tape.aligned_by(|i, _| {
            if selected.contains(&i) {
                (q[i] - qp[i]) + (max_dp - max_d)
            } else {
                0.0
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn outputs_match(&self, a: &TopKOutput, b: &TopKOutput) -> bool {
        // Lattice values compare exactly after identical integer shifts.
        a.items.len() == b.items.len()
            && a.items.iter().zip(&b.items).all(|(x, y)| {
                x.index == y.index
                    && (x.gap - y.gap).abs() <= 1e-9 * x.gap.abs().max(y.gap.abs()).max(1.0)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noisy_max::NoisyTopKWithGap;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![100.0, 40.0, 95.0, 80.0, 3.0, 60.0])
    }

    #[test]
    fn validation() {
        assert!(DiscreteNoisyTopKWithGap::new(0, 1.0, true).is_err());
        assert!(DiscreteNoisyTopKWithGap::new(1, 0.0, true).is_err());
        assert!(DiscreteNoisyTopKWithGap::with_gamma(1, 1.0, true, 0.0).is_err());
    }

    #[test]
    fn gaps_are_lattice_valued() {
        let m = DiscreteNoisyTopKWithGap::new(3, 1.0, true).unwrap();
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let out = m.run(&workload(), &mut rng).unwrap();
            for item in &out.items {
                assert!(item.gap >= 0.0);
                assert!(
                    (item.gap - item.gap.round()).abs() < 1e-9,
                    "gap {}",
                    item.gap
                );
            }
        }
    }

    #[test]
    fn delta_matches_appendix_bound_and_is_negligible_at_machine_epsilon() {
        let m = DiscreteNoisyTopKWithGap::new(5, 1.0, true).unwrap();
        // γ = 1, rate ε/k = 0.2: δ for 1000 queries is sizeable…
        assert!(m.delta(1000) > 0.1);
        // …while a machine-epsilon lattice is negligible even at n = 10⁶.
        let fine = DiscreteNoisyTopKWithGap::with_gamma(5, 1.0, true, 2f64.powi(-52)).unwrap();
        assert!(fine.delta(1_000_000) < 1e-3);
    }

    #[test]
    fn converges_to_continuous_behavior_on_fine_lattice() {
        // With γ tiny, the discrete mechanism's selection distribution must
        // approach the continuous one: compare top-1 hit rates.
        let answers = workload();
        let disc = DiscreteNoisyTopKWithGap::with_gamma(1, 1.0, true, 1e-6).unwrap();
        let cont = NoisyTopKWithGap::new(1, 1.0, true).unwrap();
        let mut rng = rng_from_seed(2);
        let n = 20_000;
        let d_hits = (0..n)
            .filter(|_| disc.run(&answers, &mut rng).unwrap().indices() == [0])
            .count();
        let c_hits = (0..n)
            .filter(|_| cont.run(&answers, &mut rng).unwrap().indices() == [0])
            .count();
        let diff = (d_hits as f64 - c_hits as f64).abs() / n as f64;
        assert!(diff < 0.02, "selection rates diverge: {d_hits} vs {c_hits}");
    }

    #[test]
    fn alignment_within_budget_integer_adjacency() {
        // Integer-valued adjacent workloads (counting-query deltas are 0/±1).
        let m = DiscreteNoisyTopKWithGap::new(2, 0.8, true).unwrap();
        let d = workload();
        let mut rng = rng_from_seed(3);
        for trial in 0..60 {
            // Round the random monotone perturbation to the lattice.
            let model = if trial % 2 == 0 {
                AdjacencyModel::MonotoneUp
            } else {
                AdjacencyModel::MonotoneDown
            };
            let p = Perturbation::random(model, d.len(), &mut rng);
            let deltas: Vec<f64> = p.deltas().iter().map(|x| x.round()).collect();
            let dp = d.perturbed(&deltas);
            let max = check_alignment_many(&m, &d, &dp, 15, &mut rng)
                .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
            assert!(max <= 0.8 + 1e-9, "cost {max}");
        }
    }

    #[test]
    fn unit_epsilon_halves_for_general_queries() {
        let mono = DiscreteNoisyTopKWithGap::new(4, 1.0, true).unwrap();
        let gen = DiscreteNoisyTopKWithGap::new(4, 1.0, false).unwrap();
        assert!((mono.unit_epsilon() - 0.25).abs() < 1e-15);
        assert!((gen.unit_epsilon() - 0.125).abs() < 1e-15);
    }
}
