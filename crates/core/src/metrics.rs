//! Evaluation metrics used by §7: precision, recall, F-measure for the
//! returned query sets and MSE-improvement percentages for the estimators.

use std::collections::HashSet;

/// Precision / recall / F-measure of a returned index set against ground
/// truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionQuality {
    /// Fraction of returned items that are truly positive.
    pub precision: f64,
    /// Fraction of true positives that were returned.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
}

/// Computes selection quality. Conventions for the degenerate cases follow
/// the experimental literature: empty returned set ⇒ precision 1 (no false
/// positives were asserted); empty truth set ⇒ recall 1.
pub fn selection_quality(returned: &[usize], truth: &[usize]) -> SelectionQuality {
    let truth_set: HashSet<usize> = truth.iter().copied().collect();
    let returned_set: HashSet<usize> = returned.iter().copied().collect();
    let hits = returned_set.intersection(&truth_set).count() as f64;
    let precision = if returned_set.is_empty() {
        1.0
    } else {
        hits / returned_set.len() as f64
    };
    let recall = if truth_set.is_empty() {
        1.0
    } else {
        hits / truth_set.len() as f64
    };
    let f_measure = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    SelectionQuality {
        precision,
        recall,
        f_measure,
    }
}

/// Percent improvement of `candidate` MSE over `baseline` MSE:
/// `100·(1 - candidate/baseline)`. Positive means the candidate is better.
pub fn mse_improvement_percent(baseline_mse: f64, candidate_mse: f64) -> f64 {
    // lint:allow(panic-freedom): experiment-report arithmetic; a non-positive MSE is a harness bug
    assert!(baseline_mse > 0.0, "baseline MSE must be positive");
    100.0 * (1.0 - candidate_mse / baseline_mse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_selection() {
        let q = selection_quality(&[1, 2, 3], &[3, 2, 1]);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f_measure, 1.0);
    }

    #[test]
    fn partial_overlap() {
        // returned {1,2,3,4}, truth {3,4,5,6,7,8}: hits 2.
        let q = selection_quality(&[1, 2, 3, 4], &[3, 4, 5, 6, 7, 8]);
        assert!((q.precision - 0.5).abs() < 1e-12);
        assert!((q.recall - 2.0 / 6.0).abs() < 1e-12);
        let f = 2.0 * 0.5 * (2.0 / 6.0) / (0.5 + 2.0 / 6.0);
        assert!((q.f_measure - f).abs() < 1e-12);
    }

    #[test]
    fn degenerate_conventions() {
        let q = selection_quality(&[], &[1]);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f_measure, 0.0);
        let q = selection_quality(&[1], &[]);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.precision, 0.0);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let q = selection_quality(&[1, 1, 2], &[1]);
        assert!((q.precision - 0.5).abs() < 1e-12);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn improvement_percent() {
        assert!((mse_improvement_percent(10.0, 5.0) - 50.0).abs() < 1e-12);
        assert!((mse_improvement_percent(10.0, 12.0) + 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "baseline MSE")]
    fn improvement_rejects_zero_baseline() {
        mse_improvement_percent(0.0, 1.0);
    }
}
