//! Privacy-budget accounting under sequential composition.
//!
//! The paper's adaptive mechanism (Algorithm 2) is budget accounting *inside*
//! a mechanism; this module is the conventional *outer* accountant an
//! application uses when chaining mechanisms (e.g. the 50/50
//! selection/measurement split of §5.2 and §6.2).

use crate::error::MechanismError;

/// A sequential-composition privacy accountant for pure ε-DP.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyBudget {
    total: f64,
    spent: f64,
}

impl PrivacyBudget {
    /// Creates an accountant with `total` budget.
    ///
    /// # Errors
    /// Rejects non-positive or non-finite totals.
    pub fn new(total: f64) -> Result<Self, MechanismError> {
        let total = crate::error::require_epsilon(total)?;
        Ok(Self { total, spent: 0.0 })
    }

    /// The configured total `ε`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Budget consumed so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Budget still available.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }

    /// Fraction of the budget still available, in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f64 {
        self.remaining() / self.total
    }

    /// Records a spend of `epsilon`, failing if it would exceed the total.
    ///
    /// A tiny relative slack (1e-12) absorbs floating-point drift when
    /// callers split a budget into shares that sum exactly to the total.
    pub fn spend(&mut self, epsilon: f64) -> Result<(), MechanismError> {
        self.try_debit(epsilon)
    }

    /// The debit-or-reject primitive behind [`spend`](Self::spend): on
    /// `Ok` exactly `epsilon` was deducted; on `Err` the accountant is
    /// unchanged. A serving ledger holds this under a lock so concurrent
    /// requests can never jointly oversubscribe the total.
    ///
    /// # Errors
    /// [`MechanismError::InvalidEpsilon`] for non-positive or non-finite
    /// requests, [`MechanismError::BudgetExhausted`] (carrying the
    /// requested and remaining amounts) when the debit does not fit.
    pub fn try_debit(&mut self, epsilon: f64) -> Result<(), MechanismError> {
        let epsilon = crate::error::require_epsilon(epsilon)?;
        let slack = 1e-12 * self.total;
        if self.spent + epsilon > self.total + slack {
            return Err(MechanismError::BudgetExhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent = (self.spent + epsilon).min(self.total);
        Ok(())
    }

    /// Returns previously debited budget — the outer-accountant analogue
    /// of Algorithm 2's remaining-budget output: a mechanism that halts
    /// early (or a session evicted before exhausting its answer cap) hands
    /// its unspent share back. Only ever credits what was actually spent.
    ///
    /// # Errors
    /// [`MechanismError::InvalidEpsilon`] for negative or non-finite
    /// amounts (zero is a no-op), [`MechanismError::InvalidSplit`] when
    /// the credit exceeds what was spent (beyond the usual 1e-12 relative
    /// slack) — releasing budget that was never debited is a caller bug,
    /// not drift.
    pub fn release(&mut self, epsilon: f64) -> Result<(), MechanismError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(MechanismError::InvalidEpsilon { value: epsilon });
        }
        if epsilon == 0.0 {
            return Ok(());
        }
        if epsilon > self.spent + 1e-12 * self.total {
            return Err(MechanismError::InvalidSplit {
                reason: "cannot release more budget than was spent",
            });
        }
        self.spent = (self.spent - epsilon).max(0.0);
        Ok(())
    }

    /// True when at least `epsilon` is still available (with the same slack
    /// as [`spend`](Self::spend)).
    pub fn can_spend(&self, epsilon: f64) -> bool {
        epsilon.is_finite()
            && epsilon > 0.0
            && self.spent + epsilon <= self.total + 1e-12 * self.total
    }

    /// Splits the *remaining* budget into `fractions` (which must sum to at
    /// most 1) and returns the corresponding ε shares without spending them.
    ///
    /// # Errors
    /// Rejects an empty fraction list (a vacuous split is almost certainly a
    /// caller bug — it would silently produce no shares), and any fraction
    /// that is non-positive or non-finite, and sums exceeding 1 + 1e-12.
    pub fn split(&self, fractions: &[f64]) -> Result<Vec<f64>, MechanismError> {
        if fractions.is_empty() {
            return Err(MechanismError::InvalidSplit {
                reason: "fraction list must be non-empty",
            });
        }
        if !fractions.iter().all(|f| f.is_finite() && *f > 0.0) {
            return Err(MechanismError::InvalidSplit {
                reason: "every fraction must be positive and finite",
            });
        }
        let sum: f64 = fractions.iter().sum();
        if sum > 1.0 + 1e-12 {
            return Err(MechanismError::InvalidSplit {
                reason: "fractions must sum to at most 1",
            });
        }
        Ok(fractions.iter().map(|f| f * self.remaining()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spend_and_remaining() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        assert_eq!(b.remaining(), 1.0);
        b.spend(0.3).unwrap();
        b.spend(0.3).unwrap();
        assert!((b.spent() - 0.6).abs() < 1e-15);
        assert!((b.remaining() - 0.4).abs() < 1e-15);
        assert!((b.remaining_fraction() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn overspend_rejected() {
        let mut b = PrivacyBudget::new(0.5).unwrap();
        b.spend(0.4).unwrap();
        let err = b.spend(0.2).unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        // The failed spend must not change state.
        assert!((b.spent() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn exact_exhaustion_allowed() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        // Ten shares of 0.1 accumulate float error; the slack must absorb it.
        for _ in 0..10 {
            b.spend(0.1).unwrap();
        }
        assert!(b.remaining() < 1e-12);
        assert!(!b.can_spend(0.01));
    }

    #[test]
    fn can_spend_matches_spend() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.spend(0.75).unwrap();
        assert!(b.can_spend(0.25));
        assert!(!b.can_spend(0.26));
        assert!(!b.can_spend(-1.0));
        assert!(!b.can_spend(f64::NAN));
    }

    #[test]
    fn split_scales_remaining() {
        let mut b = PrivacyBudget::new(2.0).unwrap();
        b.spend(1.0).unwrap();
        let shares = b.split(&[0.5, 0.5]).unwrap();
        assert_eq!(shares, vec![0.5, 0.5]);
    }

    #[test]
    fn split_rejects_malformed_requests() {
        let b = PrivacyBudget::new(1.0).unwrap();
        for bad in [
            &[0.7, 0.7][..],      // oversubscribed
            &[][..],              // vacuously "valid" before: now rejected
            &[0.5, 0.0][..],      // non-positive
            &[0.5, -0.1][..],     // negative
            &[0.5, f64::NAN][..], // NaN
            &[f64::INFINITY][..], // non-finite
        ] {
            assert!(
                matches!(b.split(bad), Err(MechanismError::InvalidSplit { .. })),
                "accepted {bad:?}"
            );
        }
        // Exactly 1 (within slack) still passes.
        assert!(b.split(&[0.5, 0.5]).is_ok());
    }

    #[test]
    fn rejects_bad_total() {
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(f64::NAN).is_err());
    }

    #[test]
    fn try_debit_edge_cases() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        // Zero, negative and non-finite debits are typed InvalidEpsilon.
        for bad in [0.0, -0.1, f64::NAN, f64::INFINITY] {
            assert!(
                matches!(b.try_debit(bad), Err(MechanismError::InvalidEpsilon { .. })),
                "accepted {bad}"
            );
            assert_eq!(b.spent(), 0.0, "failed debit of {bad} mutated state");
        }
        // An over-debit reports both sides and leaves state unchanged.
        b.try_debit(0.9).unwrap();
        match b.try_debit(0.2) {
            Err(MechanismError::BudgetExhausted {
                requested,
                remaining,
            }) => {
                assert!((requested - 0.2).abs() < 1e-15);
                assert!((remaining - 0.1).abs() < 1e-12);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert!((b.spent() - 0.9).abs() < 1e-15);
    }

    #[test]
    fn release_returns_spent_budget() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.try_debit(0.6).unwrap();
        b.release(0.25).unwrap();
        assert!((b.spent() - 0.35).abs() < 1e-12);
        assert!((b.remaining() - 0.65).abs() < 1e-12);
        // The freed budget is spendable again.
        b.try_debit(0.65).unwrap();
        assert!(!b.can_spend(0.01));
    }

    #[test]
    fn release_edge_cases() {
        let mut b = PrivacyBudget::new(1.0).unwrap();
        b.try_debit(0.5).unwrap();
        // Zero is a no-op.
        b.release(0.0).unwrap();
        assert!((b.spent() - 0.5).abs() < 1e-15);
        // Negative / non-finite are typed InvalidEpsilon.
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.release(bad),
                Err(MechanismError::InvalidEpsilon { .. })
            ));
        }
        // Releasing more than was spent is a caller bug, and must not
        // mint budget.
        assert!(matches!(
            b.release(0.6),
            Err(MechanismError::InvalidSplit { .. })
        ));
        assert!((b.spent() - 0.5).abs() < 1e-15);
        // Releasing exactly what was spent returns to a fresh accountant.
        b.release(0.5).unwrap();
        assert_eq!(b.spent(), 0.0);
    }
}
