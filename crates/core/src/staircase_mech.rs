//! Staircase measurement mechanism — the §3.1 alternative to Laplace noise.
//!
//! Geng & Viswanath's staircase distribution is the variance-optimal
//! additive noise for ε-DP; the paper lists it (with Discrete Laplace) as a
//! drop-in replacement wherever the Laplace mechanism is used. This module
//! provides the measurement-mechanism counterpart of
//! [`crate::laplace_mech::LaplaceMechanism`] so the select-then-measure
//! pipelines can trade Laplace for staircase noise.
//!
//! A note on alignment: the staircase density is *piecewise constant*, so
//! its log-density ratio is not bounded by `|x - y|/α` pointwise (crossing
//! a stair edge by an inch costs a full `e^ε`) — only by
//! `ε·⌈|x - y|/Δ⌉`. The Definition-6 cost accounting of the alignment
//! framework therefore does not apply draw-for-draw, and this mechanism
//! deliberately does not implement `AlignedMechanism`; its privacy is the
//! classical per-measurement argument (each coordinate is an ε-DP additive
//! release, composed sequentially).

//! ## Execution paths
//!
//! The measurement loop exists once, generic over the
//! [`DrawProvider`] noise comes through (the
//! [`staircase_fill_offset`](DrawProvider::staircase_fill_offset) /
//! [`staircase_next`](DrawProvider::staircase_next) shapes, four uniforms
//! per draw):
//!
//! * `measure_split` — the dyn reference through [`SourceDraws`]: the
//!   source reconstructs the staircase distribution per draw (an `exp` and
//!   the stair-side normalization each time), the historical per-draw cost;
//! * `measure_split_with_scratch[_into]` — the batched fast path through
//!   [`ScratchDraws`]: the distribution is constructed once per batch, the
//!   four uniforms per draw come off the shared raw-uniform tape in blocked
//!   refills, and the output buffer is caller-owned;
//! * `measure_split_streaming[_with_scratch[_into]]` — the same loop over
//!   `impl IntoIterator<Item = f64>` with an explicit batch size (the
//!   budget divisor, which a lazy stream cannot supply).
//!
//! All paths are bit-identical on the same RNG stream
//! (`tests/scratch_equivalence.rs`).

use crate::draw::{DrawProvider, ScratchDraws, SourceDraws};
use crate::error::{require_epsilon, MechanismError};
use crate::scratch::SvtScratch;
use free_gap_alignment::{NoiseSource, SamplingSource};
use free_gap_noise::{ContinuousDistribution, Staircase};
use rand::rngs::StdRng;
use rand::Rng;

/// Vector measurement with variance-optimal staircase noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaircaseMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl StaircaseMechanism {
    /// Creates the mechanism with budget `epsilon` per sensitivity-1 query.
    pub fn new(epsilon: f64) -> Result<Self, MechanismError> {
        Ok(Self {
            epsilon: require_epsilon(epsilon)?,
            sensitivity: 1.0,
        })
    }

    /// The privacy budget `ε` one measurement batch costs.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Overrides the sensitivity `Δ`.
    pub fn with_sensitivity(mut self, sensitivity: f64) -> Result<Self, MechanismError> {
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(MechanismError::InvalidEpsilon { value: sensitivity });
        }
        self.sensitivity = sensitivity;
        Ok(self)
    }

    /// The noise distribution used per coordinate when the budget is split
    /// over `k` queries (optimal `γ*` split).
    pub fn noise_for_batch(&self, k: usize) -> Result<Staircase, MechanismError> {
        let per_query = self.epsilon / k.max(1) as f64;
        Staircase::optimal(per_query, self.sensitivity)
            .map_err(|_| MechanismError::InvalidEpsilon { value: per_query })
    }

    /// Per-coordinate noise variance under [`measure_split`](Self::measure_split).
    #[allow(clippy::expect_used)]
    pub fn split_variance(&self, k: usize) -> f64 {
        self.noise_for_batch(k)
            // lint:allow(panic-freedom): parameters were validated at construction; the batch distribution cannot fail
            .expect("validated at construction")
            .variance()
    }

    /// The single copy of the measurement loop (materialized shape):
    /// construct the batch's noise distribution once, then one staircase
    /// draw per answer in index order through the provider's batch shape.
    #[allow(clippy::expect_used)]
    pub(crate) fn measure_core<P: DrawProvider>(
        &self,
        answers: &[f64],
        provider: &mut P,
        out: &mut Vec<f64>,
    ) {
        provider.begin();
        let noise = self
            .noise_for_batch(answers.len())
            // lint:allow(panic-freedom): parameters were validated at construction; the batch distribution cannot fail
            .expect("validated at construction");
        provider.staircase_fill_offset(answers, &noise, out);
    }

    /// The measurement loop over a lazy answer stream. `count` is the
    /// sequential-composition divisor (the batch size a materialized call
    /// reads off `answers.len()`, which a stream cannot supply up front).
    #[allow(clippy::expect_used)]
    fn measure_streaming_core<P: DrawProvider, I: IntoIterator<Item = f64>>(
        &self,
        answers: I,
        count: usize,
        provider: &mut P,
        out: &mut Vec<f64>,
    ) {
        provider.begin();
        let noise = self
            .noise_for_batch(count)
            // lint:allow(panic-freedom): parameters were validated at construction; the batch distribution cannot fail
            .expect("validated at construction");
        out.clear();
        out.extend(
            answers
                .into_iter()
                .map(|a| a + provider.staircase_next(&noise)),
        );
    }

    /// Sequential-composition measurement: splits the budget evenly over
    /// the answers (the staircase counterpart of
    /// [`crate::laplace_mech::LaplaceMechanism::measure_split`]). The dyn
    /// reference path.
    pub fn measure_split(&self, answers: &[f64], rng: &mut StdRng) -> Vec<f64> {
        let mut source = SamplingSource::new(rng);
        self.measure_split_with_source(answers, &mut source)
    }

    /// [`measure_split`](Self::measure_split) against an explicit noise
    /// source (the alignment-style dyn path: one
    /// [`NoiseSource::staircase`] call — and one distribution
    /// reconstruction — per draw).
    pub fn measure_split_with_source(
        &self,
        answers: &[f64],
        source: &mut dyn NoiseSource,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.measure_core(answers, &mut SourceDraws::new(source), &mut out);
        out
    }

    /// Batched fast path of [`measure_split`](Self::measure_split): the
    /// same loop through [`ScratchDraws`] — the staircase distribution is
    /// constructed once per batch and the four uniforms per draw are served
    /// from the scratch's blocked raw-uniform tape. Bit-identical to
    /// [`measure_split`](Self::measure_split) on the same RNG stream.
    pub fn measure_split_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &[f64],
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.measure_split_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`measure_split_with_scratch`](Self::measure_split_with_scratch):
    /// writes into `out`, reusing its buffer across runs.
    pub fn measure_split_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &[f64],
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut Vec<f64>,
    ) {
        self.measure_core(answers, &mut ScratchDraws::new(scratch, rng), out);
    }

    /// Intra-run parallel path of [`measure_split`](Self::measure_split):
    /// the same measurement loop through a per-block provider
    /// ([`ParallelDraws`](crate::draw::ParallelDraws) or its sequential
    /// reference [`BlockSeqDraws`](crate::draw::BlockSeqDraws)) — the batch
    /// staircase fill split across the provider's threads, bit-identical
    /// for any thread count. The run is keyed by the provider's `run_seed`,
    /// a *different stream* from the single-RNG paths.
    pub fn measure_split_par<P: DrawProvider>(
        &self,
        answers: &[f64],
        provider: &mut P,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.measure_split_par_into(answers, provider, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`measure_split_par`](Self::measure_split_par).
    pub fn measure_split_par_into<P: DrawProvider>(
        &self,
        answers: &[f64],
        provider: &mut P,
        out: &mut Vec<f64>,
    ) {
        self.measure_core(answers, provider, out);
    }

    /// Streaming twin of [`measure_split`](Self::measure_split): measures a
    /// lazy answer stream without materializing it, splitting the budget by
    /// the caller-supplied `count`. Bit-identical to the materialized path
    /// on the same RNG stream when the stream yields `count` answers.
    pub fn measure_split_streaming<I: IntoIterator<Item = f64>>(
        &self,
        answers: I,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let mut source = SamplingSource::new(rng);
        let mut out = Vec::new();
        self.measure_streaming_core(answers, count, &mut SourceDraws::new(&mut source), &mut out);
        out
    }

    /// Streaming + scratch: lazy answers, tape-served noise.
    pub fn measure_split_streaming_with_scratch<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        answers: I,
        count: usize,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> Vec<f64> {
        let mut out = Vec::new();
        self.measure_split_streaming_with_scratch_into(answers, count, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`measure_split_streaming_with_scratch`](Self::measure_split_streaming_with_scratch).
    pub fn measure_split_streaming_with_scratch_into<
        R: Rng + ?Sized,
        I: IntoIterator<Item = f64>,
    >(
        &self,
        answers: I,
        count: usize,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut Vec<f64>,
    ) {
        self.measure_streaming_core(answers, count, &mut ScratchDraws::new(scratch, rng), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplace_mech::LaplaceMechanism;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;

    #[test]
    fn validation() {
        assert!(StaircaseMechanism::new(0.0).is_err());
        assert!(StaircaseMechanism::new(1.0)
            .unwrap()
            .with_sensitivity(-1.0)
            .is_err());
    }

    #[test]
    fn unbiased_with_advertised_variance() {
        let m = StaircaseMechanism::new(2.0).unwrap();
        let mut rng = rng_from_seed(1);
        let mut err = RunningMoments::new();
        for _ in 0..100_000 {
            let out = m.measure_split(&[50.0, 60.0], &mut rng);
            err.push(out[0] - 50.0);
        }
        assert!(err.mean().abs() < 0.05, "bias {}", err.mean());
        let expect = m.split_variance(2);
        assert!((err.variance() - expect).abs() / expect < 0.05);
    }

    #[test]
    fn beats_laplace_at_high_epsilon() {
        // Geng-Viswanath: staircase variance < Laplace variance, with the
        // advantage growing with ε.
        for (eps, k) in [(4.0, 1usize), (8.0, 2)] {
            let stair = StaircaseMechanism::new(eps).unwrap().split_variance(k);
            let lap = LaplaceMechanism::new(eps).unwrap().split_variance(k);
            assert!(
                stair < lap,
                "ε={eps}, k={k}: staircase {stair} vs laplace {lap}"
            );
        }
    }

    #[test]
    fn close_to_laplace_at_low_epsilon() {
        // As ε → 0 the two mechanisms' variances converge (ratio → 1).
        let stair = StaircaseMechanism::new(0.05).unwrap().split_variance(1);
        let lap = LaplaceMechanism::new(0.05).unwrap().split_variance(1);
        let ratio = stair / lap;
        assert!((0.9..=1.01).contains(&ratio), "ratio {ratio}");
    }
}
