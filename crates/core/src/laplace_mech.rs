//! The Laplace mechanism (paper Theorem 1) — the measurement workhorse.
//!
//! Given a sensitivity-`Δ` vector query and budget `ε`, adds independent
//! `Lap(Δ/ε)` noise to each coordinate. In the paper's select-then-measure
//! workflows (§5.2, §6.2), the *selected* queries are measured with the
//! second half of the budget split evenly: each of `k` queries gets `ε/k`,
//! i.e. noise `Lap(kΔ/ε)`.

use crate::answers::QueryAnswers;
use crate::error::{require_epsilon, MechanismError};
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;

/// Laplace mechanism over a vector of sensitivity-1 queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceMechanism {
    epsilon: f64,
    sensitivity: f64,
}

impl LaplaceMechanism {
    /// Creates the mechanism with budget `epsilon` for one sensitivity-1
    /// query (or a vector measured under *parallel* per-query budgets — see
    /// [`measure_each`](Self::measure_each)).
    pub fn new(epsilon: f64) -> Result<Self, MechanismError> {
        Ok(Self {
            epsilon: require_epsilon(epsilon)?,
            sensitivity: 1.0,
        })
    }

    /// Overrides the sensitivity (`Δ`) used for the noise scale.
    pub fn with_sensitivity(mut self, sensitivity: f64) -> Result<Self, MechanismError> {
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(MechanismError::InvalidEpsilon { value: sensitivity });
        }
        self.sensitivity = sensitivity;
        Ok(self)
    }

    /// The budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The noise scale `Δ/ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Noise variance per measurement, `2(Δ/ε)²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale() * self.scale()
    }

    /// Measures every answer with the *full* budget per query — correct when
    /// the queries are answered on disjoint data (parallel composition) or
    /// when `self.epsilon` is already the per-query share.
    pub fn measure_each(&self, answers: &[f64], source: &mut dyn NoiseSource) -> Vec<f64> {
        answers
            .iter()
            .map(|a| a + source.laplace(self.scale()))
            .collect()
    }

    /// Sequential-composition measurement: splits `self.epsilon` evenly over
    /// the `answers`, adding `Lap(kΔ/ε)` to each (the §5.2 protocol).
    pub fn measure_split(&self, answers: &[f64], source: &mut dyn NoiseSource) -> Vec<f64> {
        let k = answers.len().max(1) as f64;
        let scale = self.scale() * k;
        answers.iter().map(|a| a + source.laplace(scale)).collect()
    }

    /// Variance of each [`measure_split`](Self::measure_split) output for a
    /// batch of `k`: `2(kΔ/ε)²`.
    pub fn split_variance(&self, k: usize) -> f64 {
        let s = self.scale() * k.max(1) as f64;
        2.0 * s * s
    }

    /// Convenience wrapper over [`measure_split`](Self::measure_split) with a
    /// plain RNG.
    pub fn run(&self, answers: &[f64], rng: &mut StdRng) -> Vec<f64> {
        let mut source = SamplingSource::new(rng);
        self.measure_split(answers, &mut source)
    }
}

/// Alignment for the vector Laplace mechanism under sequential splitting:
/// the textbook `η'ᵢ = ηᵢ + qᵢ - q'ᵢ` (paper Example 1, generalized).
impl AlignedMechanism for LaplaceMechanism {
    type Input = QueryAnswers;
    type Output = Vec<f64>;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> Vec<f64> {
        self.measure_split(input.values(), source)
    }

    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        _output: &Vec<f64>,
    ) -> NoiseTape {
        tape.aligned_by(|i, _| input.values()[i] - neighbor.values()[i])
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn outputs_match(&self, a: &Vec<f64>, b: &Vec<f64>) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;

    #[test]
    fn construction_validation() {
        assert!(LaplaceMechanism::new(0.0).is_err());
        assert!(LaplaceMechanism::new(1.0)
            .unwrap()
            .with_sensitivity(-1.0)
            .is_err());
        let m = LaplaceMechanism::new(0.5)
            .unwrap()
            .with_sensitivity(2.0)
            .unwrap();
        assert_eq!(m.scale(), 4.0);
    }

    #[test]
    fn split_scale_is_k_times() {
        let m = LaplaceMechanism::new(1.0).unwrap();
        assert_eq!(m.split_variance(4), 2.0 * 16.0);
        assert_eq!(m.split_variance(0), m.variance()); // degenerate batch
    }

    #[test]
    fn measurement_is_unbiased_with_expected_variance() {
        let m = LaplaceMechanism::new(0.5).unwrap();
        let mut rng = rng_from_seed(42);
        let mut moments = RunningMoments::new();
        for _ in 0..100_000 {
            let out = m.run(&[10.0, 20.0], &mut rng);
            moments.push(out[0] - 10.0);
        }
        assert!(moments.mean().abs() < 0.1);
        let expect = m.split_variance(2);
        assert!((moments.variance() - expect).abs() / expect < 0.05);
    }

    #[test]
    fn alignment_cost_equals_total_displacement() {
        // With per-query scale k/ε and each |δᵢ| <= 1, the total cost is
        // Σ|δᵢ|·ε/k <= ε — sequential composition, verified concretely.
        let m = LaplaceMechanism::new(0.8).unwrap();
        let d = QueryAnswers::counting(vec![5.0, 9.0, 2.0]);
        let dp = d.perturbed(&[1.0, 1.0, 1.0]);
        let mut rng = rng_from_seed(7);
        let max = check_alignment_many(&m, &d, &dp, 100, &mut rng).unwrap();
        assert!((max - 0.8).abs() < 1e-9, "max cost = {max}");
    }

    #[test]
    fn alignment_rejects_sensitivity_violation() {
        let m = LaplaceMechanism::new(0.8).unwrap();
        let d = QueryAnswers::counting(vec![5.0, 9.0]);
        let dp = d.perturbed(&[1.0, 1.0]);
        // Manually construct a worse "neighbor": deltas (2, 1) cost
        // (2 + 1)·ε/2 = 1.5ε, clearly over budget. (A single delta of 2
        // would cost exactly ε here, which the checker rightly accepts.)
        let bad = QueryAnswers::counting(vec![7.0, 10.0]);
        let mut rng = rng_from_seed(7);
        assert!(check_alignment_many(&m, &d, &bad, 10, &mut rng).is_err());
        // sanity: the legal neighbor passes
        assert!(check_alignment_many(&m, &d, &dp, 10, &mut rng).is_ok());
    }
}
