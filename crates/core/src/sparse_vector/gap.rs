//! Sparse-Vector-with-Gap (Wang et al. [41], recovered from Algorithm 2 by
//! deleting the first branch / setting `σ = ∞`).
//!
//! Identical to [`ClassicSparseVector`] in noise, decisions, stopping rule
//! and privacy cost — but each `⊤` additionally releases the noisy gap
//! `qᵢ + νᵢ - T̃`, for free. `gap + T` is then a noisy estimate of `qᵢ(D)`
//! that §6.2 sharpens with measurements and confidence bounds.

use super::classic::{ClassicSparseVector, SvtStreamState};
use super::SvOutput;
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, SourceDraws};
use crate::error::MechanismError;
use crate::scratch::SvtScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// Sparse-Vector-with-Gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseVectorWithGap {
    inner: ClassicSparseVector,
}

impl SparseVectorWithGap {
    /// Creates the mechanism (parameters as in [`ClassicSparseVector::new`]).
    pub fn new(
        k: usize,
        epsilon: f64,
        threshold: f64,
        monotonic: bool,
    ) -> Result<Self, MechanismError> {
        Ok(Self {
            inner: ClassicSparseVector::new(k, epsilon, threshold, monotonic)?,
        })
    }

    /// Overrides the threshold/query budget split.
    pub fn with_threshold_share(mut self, share: f64) -> Result<Self, MechanismError> {
        self.inner = self.inner.with_threshold_share(share)?;
        Ok(self)
    }

    /// The answer cap `k`.
    pub fn k(&self) -> usize {
        self.inner.k()
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.inner.threshold()
    }

    /// The total privacy budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.inner.epsilon()
    }

    /// Threshold-noise budget `ε₁`.
    pub fn epsilon1(&self) -> f64 {
        self.inner.epsilon1()
    }

    /// Query-noise budget `ε₂`.
    pub fn epsilon2(&self) -> f64 {
        self.inner.epsilon2()
    }

    /// Variance of each released gap: threshold noise plus query noise.
    pub fn gap_variance(&self) -> f64 {
        let t = self.inner.threshold_scale();
        let q = self.inner.query_scale();
        2.0 * t * t + 2.0 * q * q
    }

    /// Runs with a plain RNG.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        self.inner.run_impl(answers, &mut source, true)
    }

    /// Runs against an explicit noise source.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> SvOutput {
        self.inner.run_impl(answers, source, true)
    }

    /// Gap-releasing selection through an arbitrary [`DrawProvider`] — the
    /// hook the select-then-measure pipeline core drives, so the pipeline
    /// logic also exists only once.
    pub(crate) fn run_provider<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.inner
            .run_core(answers.values().iter().copied(), provider, true, &mut out);
        out
    }

    /// Batched fast path with gap release; see [`crate::scratch`]. Output is
    /// bit-identical to [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch):
    /// writes into `out`, reusing its buffer across runs.
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.inner
            .run_scratch_core(answers.values().iter().copied(), rng, scratch, true, out);
    }

    /// Streaming twin of [`run`](Self::run): consumes `queries` lazily and
    /// stops pulling the moment the `k`-th `⊤` is answered — queries after
    /// the halt are never observed. Output is bit-identical to
    /// [`run`](Self::run) on the same RNG stream and query sequence.
    pub fn run_streaming<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut StdRng,
    ) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        let mut out = SvOutput { above: Vec::new() };
        self.inner
            .run_core(queries, &mut SourceDraws::new(&mut source), true, &mut out);
        out
    }

    /// Streaming twin of [`run_with_scratch`](Self::run_with_scratch); same
    /// laziness contract as [`run_streaming`](Self::run_streaming).
    pub fn run_streaming_with_scratch<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.inner
            .run_scratch_core(queries, rng, scratch, true, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`run_streaming_with_scratch`](Self::run_streaming_with_scratch).
    pub fn run_streaming_with_scratch_into<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.inner
            .run_scratch_core(queries, rng, scratch, true, out);
    }

    /// Gap-releasing selection over a plain answer slice through an
    /// arbitrary [`DrawProvider`] — the unified-API hook
    /// (`crate::api::Mechanism`) drives this so the decision loop still
    /// exists only once, in [`ClassicSparseVector`].
    pub(crate) fn run_values_core<P: DrawProvider>(
        &self,
        values: &[f64],
        provider: &mut P,
        out: &mut SvOutput,
    ) {
        self.inner
            .run_core(values.iter().copied(), provider, true, out);
    }

    /// Opens a resumable gap-releasing stream; contract as in
    /// [`ClassicSparseVector::stream_open`].
    pub fn stream_open<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvtStreamState {
        self.inner.stream_open(rng, scratch)
    }

    /// Feeds one query to an open stream: `None` once the run has halted
    /// (the query is never observed), otherwise the decision — `Some(gap)`
    /// for `⊤` with the free gap released, `None` for `⊥`.
    pub fn stream_feed<R: Rng + ?Sized>(
        &self,
        state: &mut SvtStreamState,
        query: f64,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> Option<Option<f64>> {
        self.inner.stream_step_core(
            state,
            query,
            &mut crate::draw::ScratchDraws::new(scratch, rng),
            true,
        )
    }
}

impl AlignedMechanism for SparseVectorWithGap {
    type Input = QueryAnswers;
    type Output = SvOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> SvOutput {
        self.inner.run_impl(input, source, true)
    }

    /// The same alignment as classic SVT: Wang et al.'s observation is that
    /// it *already* preserves the gap values exactly, so releasing them adds
    /// no cost. The checker verifies gap equality through
    /// [`outputs_match`](AlignedMechanism::outputs_match).
    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &SvOutput,
    ) -> NoiseTape {
        self.inner.align_impl(input, neighbor, tape, output)
    }

    fn epsilon(&self) -> f64 {
        AlignedMechanism::epsilon(&self.inner)
    }

    fn outputs_match(&self, a: &SvOutput, b: &SvOutput) -> bool {
        a.above.len() == b.above.len()
            && a.above.iter().zip(&b.above).all(|(x, y)| match (x, y) {
                (None, None) => true,
                (Some(gx), Some(gy)) => (gx - gy).abs() <= 1e-9 * gx.abs().max(gy.abs()).max(1.0),
                _ => false,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![100.0, 5.0, 90.0, 4.0, 95.0, 3.0, 85.0, 2.0])
    }

    #[test]
    fn decisions_match_classic_on_same_stream() {
        let gap = SparseVectorWithGap::new(3, 0.7, 60.0, true).unwrap();
        let classic = ClassicSparseVector::new(3, 0.7, 60.0, true).unwrap();
        for seed in 0..40 {
            let a = gap.run(&workload(), &mut rng_from_seed(seed));
            let b = classic.run(&workload(), &mut rng_from_seed(seed));
            assert_eq!(a.above_indices(), b.above_indices(), "seed {seed}");
        }
    }

    #[test]
    fn gaps_are_nonnegative_and_unbiased() {
        // gap + T is an unbiased estimate of q(D) for the answered queries
        // (conditioned on answering, bias exists; at huge margins it's tiny).
        let m = SparseVectorWithGap::new(2, 2.0, 50.0, true).unwrap();
        let mut rng = rng_from_seed(4);
        let mut est = RunningMoments::new();
        for _ in 0..20_000 {
            let out = m.run(&workload(), &mut rng);
            for (i, g) in out.gaps() {
                assert!(g >= 0.0);
                if i == 0 {
                    est.push(g + 50.0);
                }
            }
        }
        assert!(
            (est.mean() - 100.0).abs() < 1.0,
            "mean estimate = {}",
            est.mean()
        );
    }

    #[test]
    fn gap_variance_closed_form_matches_empirical() {
        let m = SparseVectorWithGap::new(1, 1.0, 20.0, true).unwrap();
        // Single far-above query: always answered, gap = q + ν - T - η.
        let answers = QueryAnswers::counting(vec![520.0]);
        let mut rng = rng_from_seed(9);
        let mut mo = RunningMoments::new();
        for _ in 0..150_000 {
            let out = m.run(&answers, &mut rng);
            if let Some((_, g)) = out.gaps().first() {
                mo.push(*g);
            }
        }
        let expect = m.gap_variance();
        let rel = (mo.variance() - expect).abs() / expect;
        assert!(
            rel < 0.05,
            "empirical {} vs closed form {expect}",
            mo.variance()
        );
    }

    #[test]
    fn alignment_preserves_gaps_within_budget() {
        let m = SparseVectorWithGap::new(2, 0.9, 60.0, true).unwrap();
        let d = workload();
        let mut rng = rng_from_seed(14);
        for model in [AdjacencyModel::MonotoneUp, AdjacencyModel::MonotoneDown] {
            for _ in 0..25 {
                let p = Perturbation::random(model, d.len(), &mut rng);
                let dp = d.perturbed(p.deltas());
                let max = check_alignment_many(&m, &d, &dp, 15, &mut rng).unwrap();
                assert!(max <= 0.9 + 1e-9, "cost {max}");
            }
        }
    }

    #[test]
    fn alignment_general_queries() {
        let m = SparseVectorWithGap::new(2, 0.9, 60.0, false).unwrap();
        let d = QueryAnswers::general(workload().values().to_vec());
        let mut rng = rng_from_seed(15);
        for _ in 0..40 {
            let p = Perturbation::random(AdjacencyModel::General, d.len(), &mut rng);
            let dp = d.perturbed(p.deltas());
            let max = check_alignment_many(&m, &d, &dp, 15, &mut rng).unwrap();
            assert!(max <= 0.9 + 1e-9, "cost {max}");
        }
    }
}
