//! Adaptive-Sparse-Vector-with-Gap — the paper's Algorithm 2.
//!
//! The insight: SVT pays the *same* per-answer budget whether a query barely
//! clears the threshold or towers over it. Algorithm 2 first tests each
//! query with *much more* noise (`Lap(2/ε₂)`, `ε₂ = ε₁/2`) against a safety
//! margin `σ`; only when that cheap test fails does it fall back to the
//! baseline test (`Lap(2/ε₁)`). Queries answered by the cheap branch cost
//! `ε₂ = ε₁/2` — so if every answer is far above the threshold, the same
//! total budget buys **twice** as many answers. Budget accounting is inner
//! and adaptive: the loop stops when the remaining budget cannot cover a
//! worst-case (`ε₁`) answer.
//!
//! Budget layout (line 2 of Algorithm 2), driven by the hyperparameter
//! `θ ∈ (0,1)`:
//!
//! ```text
//! ε₀ = θε                (threshold noise, Lap(1/ε₀))
//! ε₁ = (1-θ)ε / k        (baseline per-answer budget)
//! ε₂ = ε₁ / 2            (cheap per-answer budget)
//! σ  = 2·std(Lap(2/ε₂)) = 4√2/ε₂
//! ```
//!
//! For monotone workloads the query noises improve to `Lap(1/ε₂)`,
//! `Lap(1/ε₁)` (end of §6.1) and `σ = 2√2/ε₂`.

use super::{optimal_threshold_share, AdaptiveOutcome, AdaptiveSvOutput, Branch};
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, ScratchDraws, SourceDraws};
use crate::error::{require_epsilon, require_fraction, MechanismError};
use crate::scratch::SvtScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// Adaptive-Sparse-Vector-with-Gap (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSparseVector {
    k: usize,
    epsilon: f64,
    threshold: f64,
    theta: f64,
    monotonic: bool,
    sigma_multiplier: f64,
    answer_limit: Option<usize>,
}

impl AdaptiveSparseVector {
    /// Creates the mechanism: budget `epsilon`, public `threshold`, and `k`
    /// = the minimum number of above-threshold answers the budget is sized
    /// for (the mechanism may answer *more* when the cheap branch fires).
    ///
    /// `θ` defaults to the experiments' `1/(1 + k^{2/3})` (monotone) or
    /// `1/(1 + (2k)^{2/3})` (general).
    pub fn new(
        k: usize,
        epsilon: f64,
        threshold: f64,
        monotonic: bool,
    ) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            threshold,
            theta: optimal_threshold_share(k, monotonic),
            monotonic,
            sigma_multiplier: 2.0,
            answer_limit: None,
        })
    }

    /// Overrides the budget-allocation hyperparameter `θ ∈ (0, 1)`.
    pub fn with_theta(mut self, theta: f64) -> Result<Self, MechanismError> {
        self.theta = require_fraction("theta", theta)?;
        Ok(self)
    }

    /// Overrides the top-branch margin, expressed in standard deviations of
    /// the top-branch noise (the paper fixes 2). Used by the σ ablation.
    pub fn with_sigma_multiplier(mut self, m: f64) -> Result<Self, MechanismError> {
        if !(m.is_finite() && m >= 0.0) {
            return Err(MechanismError::InvalidEpsilon { value: m });
        }
        self.sigma_multiplier = m;
        Ok(self)
    }

    /// Stops the mechanism after it has produced `limit` above-threshold
    /// answers even if budget remains (the Figure-4 protocol, which then
    /// reads off [`AdaptiveSvOutput::remaining_fraction`]).
    pub fn with_answer_limit(mut self, limit: usize) -> Self {
        self.answer_limit = Some(limit);
        self
    }

    /// The sizing parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The total privacy budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Threshold budget `ε₀ = θε`.
    pub fn epsilon0(&self) -> f64 {
        self.theta * self.epsilon
    }

    /// Baseline per-answer budget `ε₁ = (1-θ)ε/k`.
    pub fn epsilon1(&self) -> f64 {
        (1.0 - self.theta) * self.epsilon / self.k as f64
    }

    /// Cheap per-answer budget `ε₂ = ε₁/2`.
    pub fn epsilon2(&self) -> f64 {
        self.epsilon1() / 2.0
    }

    /// Sensitivity factor in the query-noise scales: 2 general, 1 monotone.
    fn noise_factor(&self) -> f64 {
        if self.monotonic {
            1.0
        } else {
            2.0
        }
    }

    /// Laplace scale of the top-branch noise `ξᵢ`.
    pub fn top_scale(&self) -> f64 {
        self.noise_factor() / self.epsilon2()
    }

    /// Laplace scale of the middle-branch noise `ηᵢ`.
    pub fn middle_scale(&self) -> f64 {
        self.noise_factor() / self.epsilon1()
    }

    /// The top-branch margin `σ` (multiplier × std of `Lap(top_scale)`).
    pub fn sigma(&self) -> f64 {
        self.sigma_multiplier * std::f64::consts::SQRT_2 * self.top_scale()
    }

    /// The effective answer cap shared by every execution path
    /// (`usize::MAX` when no limit is configured). One definition — the
    /// dyn, scratch and streaming paths all stop via `answered <
    /// answer_cap()`, so the limit semantics cannot silently drift between
    /// them.
    fn answer_cap(&self) -> usize {
        self.answer_limit.unwrap_or(usize::MAX)
    }

    /// The single copy of Algorithm 2's branch and budget logic, generic
    /// over the [`DrawProvider`] noise comes through; every execution path
    /// (dyn, scratch, streaming, and their combinations) is this one
    /// function behind a thin provider-picking entry point.
    ///
    /// Consumes `queries` lazily: the next answer is pulled only while the
    /// adaptive budget still covers a worst-case (`ε₁`) answer and the
    /// answer limit is not reached — queries after the halt are never
    /// observed. Noise comes in whole `(ξ, η)` pair blocks
    /// ([`DrawProvider::peek_pairs`]), iterated with `chunks_exact(2)` so
    /// the hot loop carries no per-query cursor arithmetic on blocked
    /// providers; each block's first query is pulled *before* the peek, so
    /// draw-exact providers never sample noise for a query that does not
    /// exist. Draw order (ξᵢ then ηᵢ, query by query) is identical on every
    /// provider.
    pub(crate) fn run_core<P: DrawProvider, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        provider: &mut P,
        out: &mut AdaptiveSvOutput,
    ) {
        let eps1 = self.epsilon1();
        let eps2 = self.epsilon2();
        let sigma = self.sigma();
        let scales = [self.top_scale(), self.middle_scale()];
        let cap = self.answer_cap();
        // Line 16's stopping product, identical on every path.
        let budget_cap = self.epsilon * (1.0 + 1e-12);
        provider.begin();
        let mut queries = queries.into_iter();
        // One outcome per (ξ, η) draw pair: pre-size from the provider's
        // consumption prediction (capped by the stream's upper bound when it
        // knows one) to skip the realloc chain on long streams.
        let predicted = provider.predicted_draws();
        let capacity = (predicted / 2 + usize::from(predicted > 0))
            .min(queries.size_hint().1.unwrap_or(usize::MAX));
        let noisy_threshold = self.threshold + provider.next(1.0 / self.epsilon0());

        out.outcomes.clear();
        out.outcomes.reserve(capacity);
        let mut spent = self.epsilon0();
        let mut answered = 0usize;
        let mut done = false;
        while !done && answered < cap {
            // Pull the block's first query before peeking: a draw-exact
            // provider must not draw noise for a query that never arrives.
            let Some(first) = queries.next() else { break };
            let mut pending = Some(first);
            let mut taken = 0usize;
            let pairs = provider.peek_pairs(scales);
            for pair in pairs.chunks_exact(2) {
                let Some(q) = pending.take().or_else(|| queries.next()) else {
                    done = true;
                    break;
                };
                // Both noises drawn unconditionally, exactly like line 7 of
                // Algorithm 2: the draw structure must not depend on data.
                let xi = pair[0];
                let eta = pair[1];
                taken += 2;
                let top_gap = q + xi - noisy_threshold;
                let mid_gap = q + eta - noisy_threshold;
                let outcome = if top_gap >= sigma {
                    spent += eps2;
                    answered += 1;
                    AdaptiveOutcome::Above {
                        gap: top_gap,
                        branch: Branch::Top,
                        cost: eps2,
                    }
                } else if mid_gap >= 0.0 {
                    spent += eps1;
                    answered += 1;
                    AdaptiveOutcome::Above {
                        gap: mid_gap,
                        branch: Branch::Middle,
                        cost: eps1,
                    }
                } else {
                    AdaptiveOutcome::Below
                };
                out.outcomes.push(outcome);
                // Line 16 + answer limit: stop when a worst-case answer no
                // longer fits or the limit is reached — checked before the
                // next query pull, so no query is observed past the halt.
                if spent + eps1 > budget_cap || answered >= cap {
                    done = true;
                    break;
                }
            }
            provider.consume(taken);
        }
        out.spent = spent;
        out.epsilon = self.epsilon;
    }

    /// Empty output shell for the core to fill.
    fn empty_output(&self) -> AdaptiveSvOutput {
        AdaptiveSvOutput {
            outcomes: Vec::new(),
            spent: 0.0,
            epsilon: self.epsilon,
        }
    }

    /// Streaming run against a noise source: `run_core`
    /// through the [`SourceDraws`] adapter.
    pub fn run_streaming_with_source<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        source: &mut dyn NoiseSource,
    ) -> AdaptiveSvOutput {
        let mut out = self.empty_output();
        self.run_core(queries, &mut SourceDraws::new(source), &mut out);
        out
    }

    /// Runs the mechanism against a noise source.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> AdaptiveSvOutput {
        self.run_streaming_with_source(answers.values().iter().copied(), source)
    }

    /// Runs with a plain RNG.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> AdaptiveSvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Streaming twin of [`run`](Self::run); same laziness contract as
    /// [`run_streaming_with_source`](Self::run_streaming_with_source).
    pub fn run_streaming<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut StdRng,
    ) -> AdaptiveSvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_streaming_with_source(queries, &mut source)
    }

    /// Streaming, batched, monomorphic fast path:
    /// `run_core` through [`ScratchDraws`]; see
    /// [`crate::scratch`]. Output is bit-identical to [`run`](Self::run) on
    /// the same RNG stream and query sequence. The scratch buffers *noise*
    /// ahead of the stream, never query answers: no query is pulled after
    /// the mechanism halts.
    pub fn run_streaming_with_scratch<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> AdaptiveSvOutput {
        let mut out = self.empty_output();
        self.run_streaming_with_scratch_into(queries, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`run_streaming_with_scratch`](Self::run_streaming_with_scratch):
    /// writes into `out`, reusing its buffer across runs.
    pub fn run_streaming_with_scratch_into<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut AdaptiveSvOutput,
    ) {
        self.run_core(queries, &mut ScratchDraws::new(scratch, rng), out);
    }

    /// Batched, monomorphic fast path; see [`crate::scratch`]. Output is
    /// bit-identical to [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> AdaptiveSvOutput {
        let mut out = self.empty_output();
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch).
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut AdaptiveSvOutput,
    ) {
        self.run_streaming_with_scratch_into(answers.values().iter().copied(), rng, scratch, out);
    }
}

impl AlignedMechanism for AdaptiveSparseVector {
    type Input = QueryAnswers;
    type Output = AdaptiveSvOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> AdaptiveSvOutput {
        self.run_with_source(input, source)
    }

    /// Equation (3), with the footnote-6 monotone refinement: threshold up
    /// by 1 and the *winning* noise of each above answer shifted so its gap
    /// is exactly preserved; losing branches keep their noise and stay
    /// losing because the threshold rose.
    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &AdaptiveSvOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        let favorable = self.monotonic && q.iter().zip(qp).all(|(a, b)| a >= b);
        let threshold_shift = if favorable { 0.0 } else { 1.0 };
        tape.aligned_by(|draw_idx, _| {
            if draw_idx == 0 {
                return threshold_shift;
            }
            // Draws 1.. come in (ξᵢ, ηᵢ) pairs for query i.
            let qi = (draw_idx - 1) / 2;
            let is_xi = (draw_idx - 1) % 2 == 0;
            let shift = threshold_shift + q[qi] - qp[qi];
            match output.outcomes.get(qi) {
                Some(AdaptiveOutcome::Above {
                    branch: Branch::Top,
                    ..
                }) if is_xi => shift,
                Some(AdaptiveOutcome::Above {
                    branch: Branch::Middle,
                    ..
                }) if !is_xi => shift,
                _ => 0.0,
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn outputs_match(&self, a: &AdaptiveSvOutput, b: &AdaptiveSvOutput) -> bool {
        a.outcomes.len() == b.outcomes.len()
            && a.outcomes
                .iter()
                .zip(&b.outcomes)
                .all(|(x, y)| match (x, y) {
                    (AdaptiveOutcome::Below, AdaptiveOutcome::Below) => true,
                    (
                        AdaptiveOutcome::Above {
                            gap: gx,
                            branch: bx,
                            cost: cx,
                        },
                        AdaptiveOutcome::Above {
                            gap: gy,
                            branch: by,
                            cost: cy,
                        },
                    ) => {
                        bx == by
                            && cx == cy
                            && (gx - gy).abs() <= 1e-9 * gx.abs().max(gy.abs()).max(1.0)
                    }
                    _ => false,
                })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;

    fn mech(k: usize, eps: f64, t: f64) -> AdaptiveSparseVector {
        AdaptiveSparseVector::new(k, eps, t, true).unwrap()
    }

    #[test]
    fn budget_layout_matches_algorithm_2() {
        let m = mech(4, 0.7, 50.0).with_theta(0.2).unwrap();
        assert!((m.epsilon0() - 0.14).abs() < 1e-12);
        assert!((m.epsilon1() - 0.56 / 4.0).abs() < 1e-12);
        assert!((m.epsilon2() - 0.56 / 8.0).abs() < 1e-12);
        // σ = 2·√2·(1/ε₂) for monotone workloads.
        assert!((m.sigma() - 2.0 * std::f64::consts::SQRT_2 / m.epsilon2()).abs() < 1e-9);
        // general σ = 2·√2·(2/ε₂) = 4√2/ε₂, the paper's constant.
        let g = AdaptiveSparseVector::new(4, 0.7, 50.0, false)
            .unwrap()
            .with_theta(0.2)
            .unwrap();
        assert!((g.sigma() - 4.0 * std::f64::consts::SQRT_2 / g.epsilon2()).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(AdaptiveSparseVector::new(0, 1.0, 0.0, true).is_err());
        assert!(AdaptiveSparseVector::new(1, -1.0, 0.0, true).is_err());
        assert!(mech(1, 1.0, 0.0).with_theta(0.0).is_err());
        assert!(mech(1, 1.0, 0.0).with_sigma_multiplier(-1.0).is_err());
    }

    #[test]
    fn spends_at_most_epsilon() {
        let m = mech(3, 0.7, 10.0);
        let answers = QueryAnswers::counting(vec![15.0; 100]); // everything near T
        let mut rng = rng_from_seed(1);
        for _ in 0..200 {
            let out = m.run(&answers, &mut rng);
            assert!(out.spent <= 0.7 + 1e-9, "spent {}", out.spent);
        }
    }

    #[test]
    fn budget_guarantees_at_least_k_answers() {
        // With answers available, the sizing guarantees >= k ⊤s before stop.
        let m = mech(3, 0.7, 10.0);
        let answers = QueryAnswers::counting(vec![1000.0; 100]); // far above
        let mut rng = rng_from_seed(2);
        for _ in 0..100 {
            let out = m.run(&answers, &mut rng);
            assert!(out.answered() >= 3, "answered only {}", out.answered());
        }
    }

    #[test]
    fn far_above_queries_double_the_answers() {
        // All queries miles above T: the top branch fires, each costs ε₂ =
        // ε₁/2, so the mechanism answers ~2k before exhausting the budget.
        let m = mech(5, 0.7, 10.0);
        let answers = QueryAnswers::counting(vec![1e7; 100]);
        let mut rng = rng_from_seed(3);
        let out = m.run(&answers, &mut rng);
        assert_eq!(out.answered_via(Branch::Middle), 0);
        assert!(out.answered() >= 9, "answered {}", out.answered());
        assert!(out.answered() <= 11);
    }

    #[test]
    fn near_threshold_queries_use_middle_branch() {
        let m = mech(5, 0.7, 1000.0);
        // Queries just at the threshold: the σ margin blocks the top branch.
        let answers = QueryAnswers::counting(vec![1000.0; 100]);
        let mut rng = rng_from_seed(4);
        let mut top = 0;
        let mut middle = 0;
        for _ in 0..50 {
            let out = m.run(&answers, &mut rng);
            top += out.answered_via(Branch::Top);
            middle += out.answered_via(Branch::Middle);
        }
        assert!(middle > top * 5, "middle {middle} vs top {top}");
    }

    #[test]
    fn answer_limit_stops_early_leaving_budget() {
        let m = mech(10, 0.7, 10.0).with_answer_limit(10);
        let answers = QueryAnswers::counting(vec![1e7; 200]);
        let out = m.run(&answers, &mut rng_from_seed(5));
        assert_eq!(out.answered(), 10);
        // All answers via the cheap branch => ~half the query budget remains.
        assert!(
            out.remaining_fraction() > 0.3,
            "remaining fraction {}",
            out.remaining_fraction()
        );
    }

    #[test]
    fn recovers_sparse_vector_with_gap_when_sigma_huge() {
        // An effectively infinite σ disables the top branch: decisions then
        // follow the middle branch only, which is Wang et al.'s
        // Sparse-Vector-with-Gap (§6.1: "if we set σ = ∞, we recover ...").
        let m = mech(3, 0.7, 50.0).with_sigma_multiplier(1e12).unwrap();
        let answers = QueryAnswers::counting(vec![100.0, 5.0, 90.0, 4.0, 95.0]);
        let mut rng = rng_from_seed(6);
        for _ in 0..50 {
            let out = m.run(&answers, &mut rng);
            assert_eq!(out.answered_via(Branch::Top), 0);
        }
    }

    #[test]
    fn alignment_monotone_both_directions() {
        let m = mech(2, 0.8, 60.0);
        let d = QueryAnswers::counting(vec![100.0, 5.0, 90.0, 4.0, 95.0, 3.0]);
        let mut rng = rng_from_seed(7);
        for model in [AdjacencyModel::MonotoneUp, AdjacencyModel::MonotoneDown] {
            for _ in 0..25 {
                let p = Perturbation::random(model, d.len(), &mut rng);
                let dp = d.perturbed(p.deltas());
                let max = check_alignment_many(&m, &d, &dp, 15, &mut rng).unwrap();
                assert!(max <= 0.8 + 1e-9, "cost {max} under {model:?}");
            }
        }
    }

    #[test]
    fn alignment_general_queries() {
        let m = AdaptiveSparseVector::new(2, 0.8, 60.0, false).unwrap();
        let d = QueryAnswers::general(vec![100.0, 5.0, 90.0, 4.0, 95.0, 3.0]);
        let mut rng = rng_from_seed(8);
        for _ in 0..40 {
            let p = Perturbation::random(AdjacencyModel::General, d.len(), &mut rng);
            let dp = d.perturbed(p.deltas());
            let max = check_alignment_many(&m, &d, &dp, 15, &mut rng).unwrap();
            assert!(max <= 0.8 + 1e-9, "cost {max}");
        }
    }
}
