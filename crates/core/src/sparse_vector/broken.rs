//! ⚠️ The **variant zoo**: deliberately non-private Sparse Vector variants
//! from the literature — DO NOT USE on real data.
//!
//! The paper's §1 recalls that Sparse-Vector-with-Gap "was a surprising
//! result given the number of incorrect attempts at improving Sparse Vector
//! based on flawed manual proofs" (catalogued by Lyu et al., the paper's
//! reference \[31\], and analyzed again by Chen–Machanavajjhala, *On the
//! Privacy Properties of Variants on the Sparse Vector Technique*). This
//! module reproduces five of those catalogued mistakes so the workspace's
//! auditing layers — the alignment checker, the black-box empirical
//! auditor, and the `free-gap-attack` harness — can demonstrate that each
//! failure mode is detected:
//!
//! * [`NoisyValueSvt`] (**noisy-value reuse**; Roth's lecture-notes
//!   variant, Lyu's Alg. 3): releases the raw noisy value `qᵢ + νᵢ` for
//!   every `⊤`, reusing the compared noise with no extra budget. The
//!   candidate alignment that preserves the released value cannot
//!   simultaneously preserve the comparison, and the **alignment checker**
//!   reports the output mismatch. The contrast with the paper is surgical:
//!   releasing `qᵢ + νᵢ - T̃` (the gap) aligns perfectly; releasing
//!   `qᵢ + νᵢ` does not, because subtracting the noisy threshold is what
//!   lets the winner's noise shift absorb the threshold's shift.
//! * [`UnscaledNoiseSvt`] (**unscaled noise**; Lee–Clifton style, Lyu's
//!   Alg. 5): stops after `k` answers but adds per-query noise that does
//!   **not** scale with `k`. Its natural alignment is valid (outputs are
//!   preserved) but its Definition-6 **cost** reaches `ε₁ + k·ε₂ > ε`, and
//!   the checker reports the overrun — the proof obligation of Lemma 1(iv)
//!   fails exactly as Lyu et al. diagnosed.
//! * [`NoQueryNoiseSvt`] (**no query noise**; Stoddard et al. style, Lyu's
//!   Alg. 4): perturbs only the threshold and answers unboundedly. Given
//!   the single noise draw the output is a deterministic function of the
//!   data, so adjacent inputs produce **disjoint** output distributions;
//!   the black-box **empirical auditor** returns `ε̂ = ∞`.
//! * [`BudgetMisallocationSvt`] (**budget misallocation**): writes down the
//!   `ε₁ = ε₂ = ε/2` split in its (flawed) proof but calibrates both noise
//!   scales to the **full** `ε` — threshold `Lap(1/ε)` instead of
//!   `Lap(1/ε₁)`, queries `Lap(k/ε)` instead of `Lap(k/ε₂)`. Every draw is
//!   half as noisy as the accounting assumes, so the true cost is exactly
//!   `2ε` against a claimed `ε` — a *finite* overrun, which makes this the
//!   calibration case for empirical ε estimators (unlike the unbounded
//!   variants, a sound lower bound must land in `(ε, 2ε]`).
//! * [`UnboundedCountSvt`] (**unbounded ⊤ count**; Chen et al. style,
//!   Lyu's Alg. 6): uses the correct `k = 1` noise scales but never halts —
//!   every query is answered `⊤`/`⊥` with no cap on the number of `⊤`s.
//!   Each additional `⊤` spends another `ε₂`, so the true cost grows
//!   linearly in the number of above-threshold answers while the claim
//!   stays fixed: not `ε'`-DP for any finite `ε'` on long workloads.
//!
//! Every variant runs through the same [`DrawProvider`] substrate as the
//! correct mechanisms: `run` is the draw-exact dyn path (the alignment
//! checker interposes here) and `run_with_scratch[_into]` is the batched
//! fast path over [`SvtScratch`], bit-identical on the same RNG stream —
//! which is what lets the `free-gap-attack` Monte-Carlo harness hammer the
//! zoo at full scratch-path speed with deterministic derived sub-streams.

// lint:allow-file(taxonomy): the zoo's scratch paths are attack targets, deliberately broken — they
// must never join the equivalence suite or the bench grid as if they were serving mechanisms.
use super::SvOutput;
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, ScratchDraws, SourceDraws};
use crate::error::{require_epsilon, MechanismError};
use crate::scratch::SvtScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// Lyu Alg. 3 (Roth): SVT that releases `qᵢ + νᵢ` for `⊤` answers,
/// claiming the same ε as plain SVT. **Not ε-DP.**
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyValueSvt {
    k: usize,
    claimed_epsilon: f64,
    threshold: f64,
}

/// Output of [`NoisyValueSvt`]: per processed query, `Some(noisy value)`
/// above or `None` below.
pub type NoisyValueOutput = Vec<Option<f64>>;

impl NoisyValueSvt {
    /// Creates the (broken) mechanism with its claimed budget.
    pub fn new(k: usize, claimed_epsilon: f64, threshold: f64) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self {
            k,
            claimed_epsilon: require_epsilon(claimed_epsilon)?,
            threshold,
        })
    }

    /// The budget the flawed proof claims.
    pub fn claimed_epsilon(&self) -> f64 {
        self.claimed_epsilon
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The single copy of the decision loop, generic over the provider —
    /// same budget split and noise as a correct monotone SVT, but the
    /// released value re-exposes `νᵢ` without the noisy threshold folded
    /// in: that is the flaw.
    fn run_core<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        out: &mut NoisyValueOutput,
    ) {
        provider.begin();
        let eps1 = self.claimed_epsilon / 2.0;
        let eps2 = self.claimed_epsilon / 2.0;
        let noisy_threshold = self.threshold + provider.next(1.0 / eps1);
        let qscale = self.k as f64 / eps2;
        out.clear();
        let mut answered = 0usize;
        for &q in answers.values() {
            if answered == self.k {
                break;
            }
            let noisy = q + provider.next(qscale);
            if noisy >= noisy_threshold {
                out.push(Some(noisy));
                answered += 1;
            } else {
                out.push(None);
            }
        }
    }

    /// Runs the mechanism.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> NoisyValueOutput {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> NoisyValueOutput {
        let mut out = Vec::new();
        self.run_core(answers, &mut SourceDraws::new(source), &mut out);
        out
    }

    /// Batched fast path over [`SvtScratch`]; bit-identical to
    /// [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> NoisyValueOutput {
        let mut out = Vec::new();
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch).
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut NoisyValueOutput,
    ) {
        self.run_core(answers, &mut ScratchDraws::new(scratch, rng), out);
    }
}

/// The only alignment candidate that preserves the released values: shift
/// each winner's noise by `qᵢ - q'ᵢ` (value-preserving) and the threshold
/// by +1 (required for the `⊥` queries). The checker demonstrates these two
/// requirements collide — near-threshold wins flip to `⊥` on replay.
impl AlignedMechanism for NoisyValueSvt {
    type Input = QueryAnswers;
    type Output = NoisyValueOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> NoisyValueOutput {
        self.run_with_source(input, source)
    }

    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &NoisyValueOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        tape.aligned_by(|draw_idx, _| {
            if draw_idx == 0 {
                return 1.0;
            }
            let qi = draw_idx - 1;
            match output.get(qi) {
                Some(Some(_)) => q[qi] - qp[qi], // preserve the released value
                _ => 0.0,
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.claimed_epsilon
    }

    fn outputs_match(&self, a: &NoisyValueOutput, b: &NoisyValueOutput) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| match (x, y) {
                (None, None) => true,
                (Some(vx), Some(vy)) => (vx - vy).abs() <= 1e-9 * vx.abs().max(vy.abs()).max(1.0),
                _ => false,
            })
    }
}

/// Lyu Alg. 5 (Lee–Clifton style): per-query noise `Lap(2/ε₂)` independent
/// of `k`, stop after `k` answers, claiming `ε = ε₁ + ε₂`. **Only private
/// for k = 1.**
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnscaledNoiseSvt {
    k: usize,
    claimed_epsilon: f64,
    threshold: f64,
}

impl UnscaledNoiseSvt {
    /// Creates the (broken) mechanism with its claimed budget.
    pub fn new(k: usize, claimed_epsilon: f64, threshold: f64) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self {
            k,
            claimed_epsilon: require_epsilon(claimed_epsilon)?,
            threshold,
        })
    }

    /// The budget the flawed proof claims.
    pub fn claimed_epsilon(&self) -> f64 {
        self.claimed_epsilon
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The loss the natural alignment actually needs in the worst case:
    /// `ε₁ + k·ε₂` (per-answer cost `ε₂` instead of `ε₂/k`).
    pub fn worst_case_alignment_cost(&self) -> f64 {
        let eps1 = self.claimed_epsilon / 2.0;
        let eps2 = self.claimed_epsilon / 2.0;
        eps1 + self.k as f64 * eps2
    }

    fn run_core<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        out: &mut SvOutput,
    ) {
        provider.begin();
        let eps1 = self.claimed_epsilon / 2.0;
        let eps2 = self.claimed_epsilon / 2.0;
        let noisy_threshold = self.threshold + provider.next(1.0 / eps1);
        // The bug: scale 2/ε₂ no matter how many answers the run will emit.
        let qscale = 2.0 / eps2;
        out.above.clear();
        let mut answered = 0usize;
        for &q in answers.values() {
            if answered == self.k {
                break;
            }
            let noisy = q + provider.next(qscale);
            if noisy >= noisy_threshold {
                out.above.push(Some(0.0));
                answered += 1;
            } else {
                out.above.push(None);
            }
        }
    }

    fn run_with_source(&self, answers: &QueryAnswers, source: &mut dyn NoiseSource) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(answers, &mut SourceDraws::new(source), &mut out);
        out
    }

    /// Runs the mechanism.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Batched fast path over [`SvtScratch`]; bit-identical to
    /// [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch).
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.run_core(answers, &mut ScratchDraws::new(scratch, rng), out);
    }
}

/// The standard (valid) SVT alignment — outputs are preserved, but the
/// Definition-6 cost overruns the claimed ε whenever more than one answer
/// must be shifted: each costs `ε₂·|1 + qᵢ - q'ᵢ|/2 ≤ ε₂` instead of `ε₂/k`.
impl AlignedMechanism for UnscaledNoiseSvt {
    type Input = QueryAnswers;
    type Output = SvOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> SvOutput {
        self.run_with_source(input, source)
    }

    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &SvOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        tape.aligned_by(|draw_idx, _| {
            if draw_idx == 0 {
                return 1.0;
            }
            let qi = draw_idx - 1;
            match output.above.get(qi) {
                Some(Some(_)) => 1.0 + q[qi] - qp[qi],
                _ => 0.0,
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.claimed_epsilon
    }
}

/// Lyu Alg. 4 (Stoddard et al. style): threshold noise only, no per-query
/// noise, unbounded answers. **Not ε-DP for any finite ε.**
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoQueryNoiseSvt {
    claimed_epsilon: f64,
    threshold: f64,
}

impl NoQueryNoiseSvt {
    /// Creates the (broken) mechanism with its claimed budget.
    pub fn new(claimed_epsilon: f64, threshold: f64) -> Result<Self, MechanismError> {
        Ok(Self {
            claimed_epsilon: require_epsilon(claimed_epsilon)?,
            threshold,
        })
    }

    /// The budget the flawed proof claims.
    pub fn claimed_epsilon(&self) -> f64 {
        self.claimed_epsilon
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn run_core<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        out: &mut SvOutput,
    ) {
        provider.begin();
        let noisy_threshold = self.threshold + provider.next(1.0 / self.claimed_epsilon);
        out.above.clear();
        out.above.extend(answers.values().iter().map(|&q| {
            if q >= noisy_threshold {
                Some(0.0)
            } else {
                None
            }
        }));
    }

    /// Runs the mechanism.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(answers, &mut SourceDraws::new(&mut source), &mut out);
        out
    }

    /// Batched fast path over [`SvtScratch`]; bit-identical to
    /// [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch).
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.run_core(answers, &mut ScratchDraws::new(scratch, rng), out);
    }
}

/// Budget-misallocation SVT: the proof splits `ε₁ = ε₂ = ε/2`, the code
/// calibrates both noise scales to the full `ε`. True cost exactly `2ε`
/// against a claimed `ε`. **Not ε-DP** (it *is* `2ε`-DP — the finite-gap
/// case an empirical ε estimator must be able to resolve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetMisallocationSvt {
    k: usize,
    claimed_epsilon: f64,
    threshold: f64,
}

impl BudgetMisallocationSvt {
    /// Creates the (broken) mechanism with its claimed budget.
    pub fn new(k: usize, claimed_epsilon: f64, threshold: f64) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self {
            k,
            claimed_epsilon: require_epsilon(claimed_epsilon)?,
            threshold,
        })
    }

    /// The budget the flawed proof claims.
    pub fn claimed_epsilon(&self) -> f64 {
        self.claimed_epsilon
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The budget the noise scales actually spend: `2ε` (each half of the
    /// written-down `ε/2 + ε/2` split is under-noised by exactly 2×).
    pub fn true_epsilon(&self) -> f64 {
        2.0 * self.claimed_epsilon
    }

    fn run_core<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        out: &mut SvOutput,
    ) {
        provider.begin();
        // The bug: the proof says Lap(1/ε₁) and Lap(k/ε₂) with
        // ε₁ = ε₂ = ε/2; the scales below plug in the *total* ε instead.
        let noisy_threshold = self.threshold + provider.next(1.0 / self.claimed_epsilon);
        let qscale = self.k as f64 / self.claimed_epsilon;
        out.above.clear();
        let mut answered = 0usize;
        for &q in answers.values() {
            if answered == self.k {
                break;
            }
            let noisy = q + provider.next(qscale);
            if noisy >= noisy_threshold {
                out.above.push(Some(0.0));
                answered += 1;
            } else {
                out.above.push(None);
            }
        }
    }

    /// Runs the mechanism.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(answers, &mut SourceDraws::new(&mut source), &mut out);
        out
    }

    /// Batched fast path over [`SvtScratch`]; bit-identical to
    /// [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch).
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.run_core(answers, &mut ScratchDraws::new(scratch, rng), out);
    }
}

/// Chen et al. style (Lyu Alg. 6): correct `k = 1` noise scales
/// (`Lap(2/ε)` threshold, `Lap(4/ε)` queries, the general-query even
/// split), but **no cap on the number of `⊤`s** — every query is answered.
/// Each `⊤` spends another `ε₂ = ε/2`, so the true cost is
/// `ε/2 + (#⊤)·ε/2`, unbounded on long workloads. **Not ε'-DP for any
/// finite ε'.**
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnboundedCountSvt {
    claimed_epsilon: f64,
    threshold: f64,
}

impl UnboundedCountSvt {
    /// Creates the (broken) mechanism with its claimed budget.
    pub fn new(claimed_epsilon: f64, threshold: f64) -> Result<Self, MechanismError> {
        Ok(Self {
            claimed_epsilon: require_epsilon(claimed_epsilon)?,
            threshold,
        })
    }

    /// The budget the flawed proof claims.
    pub fn claimed_epsilon(&self) -> f64 {
        self.claimed_epsilon
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The budget a run actually spends when it answers `tops` queries
    /// above threshold: `ε₁ + tops·ε₂` with `ε₁ = ε₂ = ε/2`.
    pub fn true_epsilon_for(&self, tops: usize) -> f64 {
        0.5 * self.claimed_epsilon * (1.0 + tops as f64)
    }

    fn run_core<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
        out: &mut SvOutput,
    ) {
        provider.begin();
        let eps1 = self.claimed_epsilon / 2.0;
        let eps2 = self.claimed_epsilon / 2.0;
        let noisy_threshold = self.threshold + provider.next(1.0 / eps1);
        let qscale = 2.0 / eps2;
        out.above.clear();
        // The bug: no `answered == k` stop — the loop runs to the end of
        // the workload no matter how many ⊤s it has already emitted.
        for &q in answers.values() {
            let noisy = q + provider.next(qscale);
            if noisy >= noisy_threshold {
                out.above.push(Some(0.0));
            } else {
                out.above.push(None);
            }
        }
    }

    /// Runs the mechanism.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(answers, &mut SourceDraws::new(&mut source), &mut out);
        out
    }

    /// Batched fast path over [`SvtScratch`]; bit-identical to
    /// [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch).
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.run_core(answers, &mut ScratchDraws::new(scratch, rng), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_vector::{ClassicSparseVector, SparseVectorWithGap};
    use free_gap_alignment::checker::check_alignment;
    use free_gap_alignment::empirical::empirical_epsilon;
    use free_gap_alignment::AlignmentError;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn construction_validation() {
        assert!(NoisyValueSvt::new(0, 1.0, 0.0).is_err());
        assert!(UnscaledNoiseSvt::new(1, 0.0, 0.0).is_err());
        assert!(NoQueryNoiseSvt::new(f64::NAN, 0.0).is_err());
        assert!(BudgetMisallocationSvt::new(0, 1.0, 0.0).is_err());
        assert!(BudgetMisallocationSvt::new(2, -1.0, 0.0).is_err());
        assert!(UnboundedCountSvt::new(0.0, 0.0).is_err());
    }

    #[test]
    fn scratch_paths_are_bit_identical_to_run() {
        // Every zoo variant's scratch fast path must replay the dyn path's
        // exact outputs on the same RNG stream — the property the attack
        // harness's Monte-Carlo loops rely on.
        let answers = QueryAnswers::general(vec![10.5, 9.0, 10.0, 8.5, 11.0, 9.5, 10.2, 7.0]);
        let mut scratch = SvtScratch::new();
        for seed in 0..25u64 {
            let nv = NoisyValueSvt::new(2, 0.8, 10.0).unwrap();
            let a = nv.run(&answers, &mut rng_from_seed(seed));
            let b = nv.run_with_scratch(&answers, &mut rng_from_seed(seed), &mut scratch);
            assert_eq!(a, b, "NoisyValueSvt diverged at seed {seed}");

            let un = UnscaledNoiseSvt::new(3, 0.8, 10.0).unwrap();
            let a = un.run(&answers, &mut rng_from_seed(seed));
            let b = un.run_with_scratch(&answers, &mut rng_from_seed(seed), &mut scratch);
            assert_eq!(a, b, "UnscaledNoiseSvt diverged at seed {seed}");

            let nq = NoQueryNoiseSvt::new(0.8, 10.0).unwrap();
            let a = nq.run(&answers, &mut rng_from_seed(seed));
            let b = nq.run_with_scratch(&answers, &mut rng_from_seed(seed), &mut scratch);
            assert_eq!(a, b, "NoQueryNoiseSvt diverged at seed {seed}");

            let bm = BudgetMisallocationSvt::new(2, 0.8, 10.0).unwrap();
            let a = bm.run(&answers, &mut rng_from_seed(seed));
            let b = bm.run_with_scratch(&answers, &mut rng_from_seed(seed), &mut scratch);
            assert_eq!(a, b, "BudgetMisallocationSvt diverged at seed {seed}");

            let ub = UnboundedCountSvt::new(0.8, 10.0).unwrap();
            let a = ub.run(&answers, &mut rng_from_seed(seed));
            let b = ub.run_with_scratch(&answers, &mut rng_from_seed(seed), &mut scratch);
            assert_eq!(a, b, "UnboundedCountSvt diverged at seed {seed}");
        }
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let answers = QueryAnswers::general(vec![10.0, 9.0, 11.0]);
        let mut scratch = SvtScratch::new();
        let mut sv = SvOutput { above: Vec::new() };
        let mut nv: NoisyValueOutput = Vec::new();
        for seed in 0..5u64 {
            let m = BudgetMisallocationSvt::new(2, 1.0, 10.0).unwrap();
            m.run_with_scratch_into(&answers, &mut rng_from_seed(seed), &mut scratch, &mut sv);
            assert_eq!(sv, m.run(&answers, &mut rng_from_seed(seed)));
            let m = NoisyValueSvt::new(1, 1.0, 10.0).unwrap();
            m.run_with_scratch_into(&answers, &mut rng_from_seed(seed), &mut scratch, &mut nv);
            assert_eq!(nv, m.run(&answers, &mut rng_from_seed(seed)));
        }
    }

    #[test]
    fn unbounded_count_processes_everything() {
        // No stop condition: every query of a long workload is answered,
        // and with a high threshold noise draw pinned low the ⊤ count can
        // exceed any fixed k.
        let m = UnboundedCountSvt::new(100.0, 0.0).unwrap();
        let answers = QueryAnswers::general(vec![5.0; 200]);
        let out = m.run(&answers, &mut rng_from_seed(1));
        assert_eq!(out.processed(), 200);
        assert!(out.answered() > 100, "answered {}", out.answered());
        assert!((m.true_epsilon_for(out.answered())) > m.claimed_epsilon());
    }

    #[test]
    fn budget_misallocation_true_epsilon_is_double() {
        let m = BudgetMisallocationSvt::new(3, 0.7, 5.0).unwrap();
        assert!((m.true_epsilon() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn noisy_value_alignment_breaks_on_near_threshold_wins() {
        // Value-preserving alignment vs. the +1 threshold shift: any win
        // with gap < 1 flips to ⊥ on replay. The checker must observe
        // OutputMismatch within a few hundred trials.
        let mech = NoisyValueSvt::new(1, 1.0, 10.0).unwrap();
        let d = QueryAnswers::counting(vec![10.0, 10.0, 10.0]);
        let dp = d.perturbed(&[-1.0, -1.0, -1.0]);
        let mut rng = rng_from_seed(1);
        let mut mismatches = 0;
        for _ in 0..400 {
            match check_alignment(&mech, &d, &dp, &mut rng) {
                // A flipped win shows up either directly (different output)
                // or as control-flow divergence (the replayed run continues
                // past the original stopping point and overruns the tape).
                Err(AlignmentError::OutputMismatch { .. })
                | Err(AlignmentError::TapeOverrun { .. })
                | Err(AlignmentError::TapeNotDrained { .. }) => mismatches += 1,
                Err(other) => panic!("unexpected failure mode: {other}"),
                Ok(_) => {}
            }
        }
        assert!(mismatches > 0, "the broken proof was never caught");
    }

    #[test]
    fn gap_variant_aligns_where_noisy_value_variant_cannot() {
        // Control: identical setup, but releasing the *gap* instead of the
        // raw value — the paper's mechanism — aligns on every single run.
        let mech = SparseVectorWithGap::new(1, 1.0, 10.0, true).unwrap();
        let d = QueryAnswers::counting(vec![10.0, 10.0, 10.0]);
        let dp = d.perturbed(&[-1.0, -1.0, -1.0]);
        let mut rng = rng_from_seed(1);
        for _ in 0..400 {
            check_alignment(&mech, &d, &dp, &mut rng)
                .unwrap_or_else(|e| panic!("correct mechanism failed: {e}"));
        }
    }

    #[test]
    fn unscaled_noise_alignment_cost_overruns_claim() {
        // Adversarial monotone-down deltas (q' = q - 1) make every answered
        // query's shift |1 + q - q'| = 2, i.e. cost ε₂ apiece: at k = 3 the
        // total reaches ε₁ + 3·ε₂ = 2ε, over the claimed ε.
        let mech = UnscaledNoiseSvt::new(3, 0.6, 5.0).unwrap();
        assert!(mech.worst_case_alignment_cost() > mech.claimed_epsilon());
        let d = QueryAnswers::counting(vec![50.0, 50.0, 50.0]); // all answered
        let dp = d.perturbed(&[-1.0, -1.0, -1.0]);
        let mut rng = rng_from_seed(2);
        let mut overruns = 0;
        for _ in 0..50 {
            match check_alignment(&mech, &d, &dp, &mut rng) {
                Err(AlignmentError::CostExceeded { cost, epsilon }) => {
                    overruns += 1;
                    // ε₁·1 + 3·(ε₂/2)·|1+1| = 0.3 + 0.9 = 1.2 = 2ε.
                    assert!((cost - 1.2).abs() < 1e-9, "cost {cost}");
                    assert_eq!(epsilon, 0.6);
                }
                Err(other) => panic!("unexpected failure mode: {other}"),
                Ok(_) => {}
            }
        }
        assert_eq!(overruns, 50, "every run should overrun on this workload");
    }

    #[test]
    fn unscaled_noise_is_fine_at_k_1() {
        // The flaw needs k >= 2: a single answer at scale 2/ε₂ costs exactly
        // ε₂ and the total stays within the claim.
        let mech = UnscaledNoiseSvt::new(1, 0.6, 5.0).unwrap();
        let d = QueryAnswers::counting(vec![50.0, 1.0, 1.0]);
        let dp = d.perturbed(&[1.0, 1.0, 1.0]);
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            check_alignment(&mech, &d, &dp, &mut rng)
                .unwrap_or_else(|e| panic!("k = 1 should be private: {e}"));
        }
    }

    #[test]
    fn correctly_scaled_svt_aligns_on_the_adversarial_workload() {
        // Control for the cost-overrun test: classic SVT with k-scaled noise
        // passes the identical workload within the same claimed ε.
        let mech = ClassicSparseVector::new(3, 0.6, 5.0, true).unwrap();
        let d = QueryAnswers::counting(vec![50.0, 50.0, 50.0]);
        let dp = d.perturbed(&[1.0, 1.0, 1.0]);
        let mut rng = rng_from_seed(4);
        for _ in 0..50 {
            check_alignment(&mech, &d, &dp, &mut rng)
                .unwrap_or_else(|e| panic!("correct SVT failed: {e}"));
        }
    }

    #[test]
    fn no_query_noise_yields_infinite_empirical_epsilon() {
        // Sentinel queries pin the noisy threshold into a half-unit bucket;
        // the moving query's bit then separates the two output distributions
        // entirely on a frequent event → disjoint support → ε̂ = ∞.
        let mech = NoQueryNoiseSvt::new(1.0, 10.0).unwrap();
        let run = |answers: &[f64], rng: &mut StdRng| {
            mech.run(&QueryAnswers::general(answers.to_vec()), rng)
                .above
                .iter()
                .map(|o| o.is_some())
                .collect::<Vec<bool>>()
        };
        let mut d: Vec<f64> = (0..16).map(|i| 10.0 + (i as f64 - 8.0) * 0.5).collect();
        let mut dp = d.clone();
        d.push(10.25); // sits inside a sentinel bucket
        dp.push(10.75); // adjacent (|δ| = 0.5), lands in the same bucket
        let mut rng = rng_from_seed(5);
        let audit = empirical_epsilon(run, &d, &dp, 40_000, 100, &mut rng);
        assert!(
            audit.epsilon_hat.is_infinite(),
            "catastrophic leak not surfaced: ε̂ = {} via {}",
            audit.epsilon_hat,
            audit.witness
        );
        // The smoothed one-sided bound stays finite but still convicts.
        assert!(audit.epsilon_hat_smoothed.is_finite());
        assert!(audit.epsilon_hat_smoothed > mech.claimed_epsilon());
    }

    #[test]
    fn correct_svt_passes_the_pinning_workload() {
        // Control: classic SVT (with query noise) on the same sentinel
        // workload stays within its budget.
        let mech = ClassicSparseVector::new(4, 1.0, 10.0, false).unwrap();
        let run = |answers: &[f64], rng: &mut StdRng| {
            mech.run(&QueryAnswers::general(answers.to_vec()), rng)
                .above
                .iter()
                .map(|o| o.is_some())
                .collect::<Vec<bool>>()
        };
        let mut d: Vec<f64> = (0..6).map(|i| 10.0 + (i as f64 - 3.0) * 0.5).collect();
        let mut dp = d.clone();
        d.push(10.25);
        dp.push(10.75);
        let mut rng = rng_from_seed(6);
        let audit = empirical_epsilon(run, &d, &dp, 40_000, 100, &mut rng);
        assert!(
            audit.epsilon_hat <= 1.0 + 0.3,
            "ε̂ = {} via {}",
            audit.epsilon_hat,
            audit.witness
        );
    }
}
